//! Engine-agreement tests, driven entirely through the `MiningEngine` trait:
//! on the same input and thresholds,
//!
//! * E-STPM and APS-growth must produce *identical* frequent-pattern sets —
//!   they implement the same frequency definition with different search
//!   strategies (Section VI-A of the paper adapts PS-growth so that phase 1's
//!   `minSup`/`maxPer` constraints are necessary conditions of seasonality,
//!   and phase 2 applies the exact season checks), and
//! * A-STPM's output must be a *subset* of E-STPM's — it mines a projection
//!   of the database, so it can only miss patterns, never invent them.

use freqstpfts::core::{MiningEngine, MiningInput, StpmConfig, StpmMiner, Threshold};
use freqstpfts::prelude::*;
use std::collections::BTreeSet;

/// The engines under comparison, instantiated through the facade's `Engine`
/// selector so the test also covers that dispatch path.
fn engines() -> Vec<Box<dyn MiningEngine>> {
    vec![
        Engine::Exact.instantiate(),
        Engine::Approximate { mu: None }.instantiate(),
        Engine::ApsGrowth.instantiate(),
    ]
}

fn small_config(profile: DatasetProfile) -> StpmConfig {
    StpmConfig {
        max_period: Threshold::Fraction(0.02),
        min_density: Threshold::Fraction(0.01),
        dist_interval: profile.dist_interval(),
        min_season: 2,
        max_pattern_len: 2,
        ..StpmConfig::default()
    }
}

/// Runs every engine on one generated dataset and returns the rendered
/// pattern sets keyed by engine name.
fn pattern_sets(
    profile: DatasetProfile,
    seed: u64,
    config: &StpmConfig,
) -> Vec<(&'static str, BTreeSet<String>)> {
    let spec = DatasetSpec::real(profile).scaled_to(6, 200).with_seed(seed);
    let data = generate(&spec);
    let dseq = data.dseq().expect("generated data maps to sequences");
    let input = MiningInput::new(&data.dsyb, &dseq, data.mapping_factor);
    engines()
        .iter()
        .map(|engine| {
            let report = engine
                .mine_with(&input, config)
                .expect("valid configuration");
            (report.engine(), report.pattern_set())
        })
        .collect()
}

fn set_of<'a>(sets: &'a [(&'static str, BTreeSet<String>)], name: &str) -> &'a BTreeSet<String> {
    &sets
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("engine {name} missing"))
        .1
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: cross-engine mining runs
fn exact_and_baseline_produce_identical_pattern_sets() {
    for profile in [DatasetProfile::Influenza, DatasetProfile::SmartCity] {
        for seed in [1u64, 7, 23] {
            let config = small_config(profile);
            let sets = pattern_sets(profile, seed, &config);
            let exact = set_of(&sets, "E-STPM");
            let baseline = set_of(&sets, "APS-growth");
            assert!(
                !exact.is_empty(),
                "{profile:?} seed {seed}: the workload must contain seasonal patterns"
            );
            assert_eq!(
                exact, baseline,
                "{profile:?} seed {seed}: E-STPM and APS-growth must agree exactly"
            );
        }
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: cross-engine mining runs
fn approximate_output_is_a_subset_of_the_exact_output() {
    for profile in [DatasetProfile::Influenza, DatasetProfile::HandFootMouth] {
        for seed in [1u64, 7, 23] {
            let config = small_config(profile);
            let sets = pattern_sets(profile, seed, &config);
            let exact = set_of(&sets, "E-STPM");
            let approx = set_of(&sets, "A-STPM");
            assert!(
                approx.is_subset(exact),
                "{profile:?} seed {seed}: A-STPM invented patterns: {:?}",
                approx.difference(exact).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: cross-engine mining runs
fn zero_mu_approximate_engine_degenerates_to_exact() {
    let spec = DatasetSpec::real(DatasetProfile::RenewableEnergy)
        .scaled_to(6, 200)
        .with_seed(11);
    let data = generate(&spec);
    let dseq = data.dseq().unwrap();
    let input = MiningInput::new(&data.dsyb, &dseq, data.mapping_factor);
    let config = small_config(DatasetProfile::RenewableEnergy);

    let exact = StpmMiner.mine_with(&input, &config).unwrap();
    let degenerate = Engine::Approximate { mu: Some(0.0) }
        .instantiate()
        .mine_with(&input, &config)
        .unwrap();
    assert_eq!(exact.pattern_set(), degenerate.pattern_set());
    assert!((accuracy(&exact, &degenerate) - 100.0).abs() < 1e-9);
}
