//! Streaming/batch equivalence: the incremental [`StreamingMiner`] must
//! report, at every checkpoint, exactly what a from-scratch batch re-mine of
//! the same prefix reports — patterns, supports and seasons — for random
//! databases, random batch boundaries (empty batches and batches that split
//! a season at the tail included), absolute and fractional thresholds, and
//! any thread count.
//!
//! As elsewhere in the workspace, properties are checked over a
//! deterministic stream of pseudo-random cases drawn from the seedable RNG
//! (no crates.io access), with the case seed printed on failure.

use freqstpfts::core::canonical_result_set as canonical;
use freqstpfts::datagen::SeededRng;
use freqstpfts::prelude::*;
use freqstpfts::timeseries::SequenceDatabase;

/// Cuts `0..total` into random consecutive batches, with at least one empty
/// batch always present.
fn random_boundaries(rng: &mut SeededRng, total: usize) -> Vec<(usize, usize)> {
    let mut boundaries = Vec::new();
    let mut cursor = 0usize;
    while cursor < total {
        if rng.next_below(5) == 0 {
            boundaries.push((cursor, cursor)); // empty batch
        }
        let step = 1 + rng.next_below(40) as usize;
        let next = (cursor + step).min(total);
        boundaries.push((cursor, next));
        cursor = next;
    }
    if !boundaries.iter().any(|(from, to)| from == to) {
        let at = rng.next_below(boundaries.len() as u64) as usize;
        let position = boundaries[at].0;
        boundaries.insert(at, (position, position));
    }
    boundaries
}

/// Streams `dseq` through the miner along `boundaries`, asserting
/// batch-equivalence at every checkpoint.
fn assert_stream_equals_batch(
    dseq: &SequenceDatabase,
    config: &StpmConfig,
    boundaries: &[(usize, usize)],
    seed: u64,
) {
    let mut miner = StreamingMiner::new(config, dseq.registry()).unwrap();
    for &(from, to) in boundaries {
        miner.append_batch(&dseq.sequences()[from..to]).unwrap();
        if to == 0 {
            continue; // nothing absorbed yet: no checkpoint to compare
        }
        let report = miner.checkpoint().unwrap();
        let batch = StpmMiner::mine_sequences(&dseq.truncated(to), config).unwrap();
        assert_eq!(
            canonical(report.events(), report.patterns()),
            canonical(batch.events(), batch.patterns()),
            "seed {seed}: checkpoint at granule {to} diverged"
        );
    }
    assert_eq!(miner.num_granules(), dseq.num_granules());
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: repeated batch re-mines
fn streaming_matches_batch_on_random_databases_and_boundaries() {
    for case in 0..10u64 {
        let mut rng = SeededRng::seed_from_u64(case);
        let spec = DatasetSpec::real(DatasetProfile::Influenza)
            .scaled_to(5, 100 + rng.next_below(60))
            .with_seed(rng.next_below(1000));
        let data = generate(&spec);
        let dseq = data.dseq().unwrap();
        let config = StpmConfig {
            max_period: Threshold::Absolute(2 + rng.next_below(4)),
            min_density: Threshold::Absolute(2 + rng.next_below(3)),
            dist_interval: (2 + rng.next_below(4), 40 + rng.next_below(40)),
            min_season: 1 + rng.next_below(3),
            max_pattern_len: 2 + rng.next_below(2) as usize,
            ..StpmConfig::default()
        };
        let boundaries = random_boundaries(&mut rng, dseq.sequences().len());
        assert!(
            boundaries.iter().any(|(from, to)| from == to),
            "case {case}: the boundary generator should produce empty batches"
        );
        assert_stream_equals_batch(&dseq, &config, &boundaries, case);
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: repeated batch re-mines
fn streaming_matches_batch_under_fractional_thresholds() {
    // Fractional thresholds re-resolve as the prefix grows, forcing the
    // tracker-replay fallback at some checkpoints; exactness must survive.
    for case in 0..4u64 {
        let mut rng = SeededRng::seed_from_u64(1000 + case);
        let spec = DatasetSpec::real(DatasetProfile::SmartCity)
            .scaled_to(5, 140)
            .with_seed(rng.next_below(500));
        let data = generate(&spec);
        let dseq = data.dseq().unwrap();
        let config = StpmConfig {
            max_period: Threshold::Fraction(0.02 + 0.02 * (case as f64)),
            min_density: Threshold::Fraction(0.015),
            dist_interval: (2, 60),
            min_season: 2,
            max_pattern_len: 2,
            ..StpmConfig::default()
        };
        let boundaries = random_boundaries(&mut rng, dseq.sequences().len());
        assert_stream_equals_batch(&dseq, &config, &boundaries, 1000 + case);
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: repeated batch re-mines
fn a_batch_boundary_splitting_a_tail_season_is_absorbed_exactly() {
    // Two seasons of C:1·D:1 co-occurrence; the second season straddles the
    // append boundary (granules 8..10 arrive first, 11..12 later), so the
    // tail season must *grow* across appends, not be rebuilt or duplicated.
    let on = "111"; // one granule (m = 3) of the "1" event
    let off = "000";
    let season = [on, on, on];
    let gap = [off, off, off, off];
    let mut bits = String::new();
    for block in season.iter().chain(gap.iter()).chain(season.iter()) {
        bits.push_str(block);
    }
    bits.push_str(on); // a fourth granule extending the second season
    bits.push_str(off);
    let series: Vec<TimeSeries> = ["C", "D"]
        .iter()
        .map(|name| {
            TimeSeries::new(
                *name,
                bits.chars()
                    .map(|c| if c == '1' { 1.0 } else { 0.0 })
                    .collect::<Vec<f64>>(),
            )
        })
        .collect();
    let dsyb = SymbolicDatabase::from_series(&series, &ThresholdSymbolizer::binary(0.5, "0", "1"))
        .unwrap();
    let dseq = dsyb.to_sequence_database(3).unwrap();
    let config = StpmConfig {
        max_period: Threshold::Absolute(1),
        min_density: Threshold::Absolute(2),
        dist_interval: (2, 10),
        min_season: 2,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };
    let total = dseq.sequences().len();
    // Split mid-way through the second season (after its first granule).
    let split = 9;
    assert!(split < total);
    let boundaries = [(0, split), (split, total)];
    assert_stream_equals_batch(&dseq, &config, &boundaries, 9999);
    // Sanity: the data really is seasonal — the final batch mine finds the
    // C:1 ≽/≬/→ D:1 family with two seasons.
    let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();
    assert!(
        report.patterns().iter().any(|p| p.seasons().count() >= 2),
        "expected a two-season pattern"
    );
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: repeated batch re-mines
fn streaming_with_threads_is_byte_identical_to_sequential() {
    let data = generate(
        &DatasetSpec::real(DatasetProfile::RenewableEnergy)
            .scaled_to(6, 150)
            .with_seed(7),
    );
    let dseq = data.dseq().unwrap();
    let base = StpmConfig {
        max_period: Threshold::Absolute(3),
        min_density: Threshold::Absolute(2),
        dist_interval: (2, 60),
        min_season: 2,
        max_pattern_len: 3,
        ..StpmConfig::default()
    };
    let mut sequential = StreamingMiner::new(&base, dseq.registry()).unwrap();
    let mut checkpoints = Vec::new();
    for chunk in dseq.sequences().chunks(37) {
        sequential.append_batch(chunk).unwrap();
        checkpoints.push(sequential.checkpoint().unwrap());
    }
    for threads in [2, 5] {
        let config = base.clone().with_threads(threads);
        let mut miner = StreamingMiner::new(&config, dseq.registry()).unwrap();
        for (chunk, reference) in dseq.sequences().chunks(37).zip(&checkpoints) {
            miner.append_batch(chunk).unwrap();
            let report = miner.checkpoint().unwrap();
            // Byte-identical: same events, same patterns, same order, same
            // per-level stats.
            assert_eq!(report.events(), reference.events());
            assert_eq!(report.patterns(), reference.patterns());
            assert_eq!(report.stats().levels, reference.stats().levels);
            assert_eq!(report.memory_bytes(), reference.memory_bytes());
        }
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: repeated batch re-mines
fn streaming_pipeline_replays_arrival_batches_exactly() {
    // End-to-end through the facade: the datagen batched-arrival profile is
    // replayed through a StreamingPipeline; every checkpoint matches a batch
    // Pipeline run over the accumulated prefix.
    let data = generate(
        &DatasetSpec::real(DatasetProfile::Influenza)
            .scaled_to(5, 120)
            .with_seed(3),
    );
    let config = StpmConfig {
        max_period: Threshold::Absolute(3),
        min_density: Threshold::Absolute(2),
        dist_interval: (2, 50),
        min_season: 2,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };
    let m = data.mapping_factor;
    let mut stream = Pipeline::builder()
        .mapping_factor(m)
        .thresholds(config.clone())
        .into_streaming();
    let batch_pipeline = Pipeline::builder().mapping_factor(m).thresholds(config);
    let mut accumulated: Option<SymbolicDatabase> = None;
    for batch in data.arrival_batches(40, 25) {
        let report = stream.append_symbolic(&batch).unwrap();
        match &mut accumulated {
            Some(db) => db.append_batch(&batch).unwrap(),
            None => accumulated = Some(batch.clone()),
        }
        let outcome = batch_pipeline
            .run_symbolic(accumulated.as_ref().unwrap())
            .unwrap();
        assert_eq!(
            canonical(report.events(), report.patterns()),
            canonical(outcome.report.events(), outcome.report.patterns())
        );
    }
    assert_eq!(stream.num_granules(), 120);
}
