//! Property-based tests (proptest) on the core invariants of the system:
//! support-set algebra, season extraction, the anti-monotone `maxSeason`
//! bound, relation classification, information-theoretic quantities and the
//! end-to-end completeness of the pruning techniques.

use proptest::prelude::*;

use freqstpfts::core::season::{find_seasons, near_support_sets};
use freqstpfts::core::support::{insert_sorted, intersect, union};
use freqstpfts::core::{classify_relation, PruningMode, StpmConfig, StpmMiner, Threshold};
use freqstpfts::prelude::*;
use freqstpfts::timeseries::Interval;

/// Strategy for a sorted, deduplicated support set over small granule ids.
fn support_set() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::btree_set(1u64..200, 0..60).prop_map(|s| s.into_iter().collect())
}

fn resolved(max_period: u64, min_density: u64, dist: (u64, u64), min_season: u64) -> freqstpfts::core::ResolvedConfig {
    StpmConfig {
        max_period: Threshold::Absolute(max_period),
        min_density: Threshold::Absolute(min_density),
        dist_interval: dist,
        min_season,
        ..StpmConfig::default()
    }
    .resolve(200)
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn intersection_is_subset_of_both(a in support_set(), b in support_set()) {
        let i = intersect(&a, &b);
        prop_assert!(i.iter().all(|x| a.contains(x)));
        prop_assert!(i.iter().all(|x| b.contains(x)));
        prop_assert!(i.windows(2).all(|w| w[0] < w[1]));
        // Commutativity.
        prop_assert_eq!(i, intersect(&b, &a));
    }

    #[test]
    fn union_contains_both_inputs(a in support_set(), b in support_set()) {
        let u = union(&a, &b);
        prop_assert!(a.iter().all(|x| u.contains(x)));
        prop_assert!(b.iter().all(|x| u.contains(x)));
        prop_assert!(u.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(u.len() <= a.len() + b.len());
    }

    #[test]
    fn insert_sorted_preserves_invariants(a in support_set(), extra in proptest::collection::vec(1u64..200, 0..20)) {
        let mut set = a.clone();
        for g in &extra {
            insert_sorted(&mut set, *g);
        }
        prop_assert!(set.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(extra.iter().all(|g| set.contains(g)));
        prop_assert!(a.iter().all(|g| set.contains(g)));
    }

    #[test]
    fn near_support_sets_partition_the_support(support in support_set(), max_period in 1u64..10) {
        let sets = near_support_sets(&support, max_period);
        let flattened: Vec<u64> = sets.iter().flatten().copied().collect();
        prop_assert_eq!(flattened, support.clone());
        for set in &sets {
            prop_assert!(set.windows(2).all(|w| w[1] - w[0] <= max_period));
        }
        // Gaps between consecutive near sets exceed maxPeriod.
        for pair in sets.windows(2) {
            let last = *pair[0].last().unwrap();
            let first = *pair[1].first().unwrap();
            prop_assert!(first - last > max_period);
        }
    }

    #[test]
    fn seasons_respect_density_and_count_bounds(
        support in support_set(),
        max_period in 1u64..8,
        min_density in 1u64..6,
        min_season in 1u64..5,
    ) {
        let config = resolved(max_period, min_density, (2, 50), min_season);
        let seasons = find_seasons(&support, &config);
        // Every season is dense enough and is made of support granules.
        for season in seasons.seasons() {
            prop_assert!(season.len() as u64 >= min_density);
            prop_assert!(season.iter().all(|g| support.contains(g)));
        }
        // The seasonal-occurrence count is bounded by the number of seasons
        // and by the anti-monotone maxSeason bound of Equation (1).
        prop_assert!(seasons.count() as usize <= seasons.seasons().len());
        let max_season = support.len() as f64 / min_density as f64;
        prop_assert!((seasons.count() as f64) <= max_season + 1e-9);
    }

    #[test]
    fn max_season_is_anti_monotone_under_subsets(a in support_set(), b in support_set()) {
        // SUP(P) ⊆ SUP(P') implies maxSeason(P) <= maxSeason(P') (Lemma 1).
        let config = resolved(3, 2, (2, 50), 2);
        let sub = intersect(&a, &b);
        prop_assert!(config.max_season(sub.len()) <= config.max_season(a.len()) + 1e-9);
        prop_assert!(config.max_season(sub.len()) <= config.max_season(b.len()) + 1e-9);
    }

    #[test]
    fn relation_classification_is_deterministic_and_exclusive(
        s1 in 1u64..50, len1 in 0u64..10, s2 in 1u64..50, len2 in 0u64..10, eps in 0u64..3,
    ) {
        let a = Interval::new(s1, s1 + len1);
        let b = Interval::new(s2, s2 + len2);
        let (first, second) = if (a.start, std::cmp::Reverse(a.end)) <= (b.start, std::cmp::Reverse(b.end)) {
            (a, b)
        } else {
            (b, a)
        };
        let r1 = classify_relation(&first, &second, eps, 1);
        let r2 = classify_relation(&first, &second, eps, 1);
        prop_assert_eq!(r1, r2);
        // With d_o = 1 every ordered pair must classify into exactly one of
        // the three relations (the classifier is total for min_overlap = 1).
        prop_assert!(r1.is_some());
    }

    #[test]
    fn nmi_is_bounded_and_reflexive(bits in proptest::collection::vec(0u16..2, 16..128)) {
        use freqstpfts::approx::normalized_mi;
        use freqstpfts::timeseries::{Alphabet, SymbolicSeries};
        use freqstpfts::timeseries::SymbolId;
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let series = SymbolicSeries::new(
            "X".into(),
            bits.iter().map(|b| SymbolId(*b)).collect(),
            alphabet.clone(),
        );
        let shifted = SymbolicSeries::new(
            "Y".into(),
            bits.iter().rev().map(|b| SymbolId(*b)).collect(),
            alphabet,
        );
        let self_nmi = normalized_mi(&series, &series);
        let cross_nmi = normalized_mi(&series, &shifted);
        prop_assert!((0.0..=1.0).contains(&cross_nmi));
        // A non-constant series fully informs itself.
        if bits.iter().any(|b| *b == 0) && bits.iter().any(|b| *b == 1) {
            prop_assert!((self_nmi - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(self_nmi, 0.0);
        }
    }

    #[test]
    fn mu_threshold_is_monotone_in_event_probability(
        lambda1 in 0.05f64..0.95,
        min_season in 1u64..20,
        min_density in 1u64..10,
    ) {
        use freqstpfts::approx::mu_threshold;
        let mu_rare = mu_threshold(lambda1, 0.05, min_season, min_density, 1000);
        let mu_common = mu_threshold(lambda1, 0.6, min_season, min_density, 1000);
        prop_assert!((0.0..=1.0).contains(&mu_rare));
        prop_assert!((0.0..=1.0).contains(&mu_common));
        prop_assert!(mu_rare + 1e-9 >= mu_common);
    }
}

proptest! {
    // Mining whole random databases is more expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pruning_never_changes_the_mined_output(
        seed in 0u64..1000,
        min_season in 1u64..3,
        min_density in 2u64..4,
    ) {
        let spec = DatasetSpec::real(DatasetProfile::Influenza)
            .scaled_to(5, 120)
            .with_seed(seed);
        let data = generate(&spec);
        let dseq = data.dseq().unwrap();
        let config = StpmConfig {
            max_period: Threshold::Absolute(4),
            min_density: Threshold::Absolute(min_density),
            dist_interval: (3, 60),
            min_season,
            max_pattern_len: 2,
            ..StpmConfig::default()
        };
        let mut counts = Vec::new();
        for mode in PruningMode::all_modes() {
            let report = StpmMiner::new(&dseq, &config.clone().with_pruning(mode))
                .unwrap()
                .mine();
            counts.push((report.events().len(), report.patterns().len()));
        }
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "{:?}", counts);
    }

    #[test]
    fn every_reported_pattern_satisfies_the_seasonality_constraints(
        seed in 0u64..500,
    ) {
        let spec = DatasetSpec::real(DatasetProfile::SmartCity)
            .scaled_to(5, 104)
            .with_seed(seed);
        let data = generate(&spec);
        let dseq = data.dseq().unwrap();
        let config = StpmConfig {
            max_period: Threshold::Absolute(3),
            min_density: Threshold::Absolute(2),
            dist_interval: (2, 40),
            min_season: 2,
            max_pattern_len: 2,
            ..StpmConfig::default()
        };
        let resolved = config.resolve(dseq.num_granules()).unwrap();
        let report = StpmMiner::new(&dseq, &config).unwrap().mine();
        for pattern in report.patterns() {
            // Season count respects minSeason and every season is dense enough.
            prop_assert!(pattern.seasons().count() >= resolved.min_season);
            for season in pattern.seasons().seasons() {
                prop_assert!(season.len() as u64 >= resolved.min_density);
                prop_assert!(season.windows(2).all(|w| w[1] - w[0] <= resolved.max_period));
            }
            // The support set only references granules where every event of
            // the pattern occurs.
            for granule in pattern.support() {
                let sequence = dseq.sequence_at(*granule).unwrap();
                for event in pattern.pattern().events() {
                    prop_assert!(sequence.contains_event(*event));
                }
            }
        }
    }
}
