//! Property-based tests on the core invariants of the system: support-set
//! algebra, season extraction, the anti-monotone `maxSeason` bound, relation
//! classification, information-theoretic quantities and the end-to-end
//! completeness of the pruning techniques.
//!
//! The build container has no access to crates.io, so instead of `proptest`
//! each property is checked over a deterministic stream of pseudo-random
//! cases drawn from the workspace's own seedable RNG
//! ([`freqstpfts::datagen::SeededRng`]). Failures print the case seed so a
//! case can be replayed exactly.

use freqstpfts::core::hlh::{HlhK, RelationAdjacency};
use freqstpfts::core::pattern::encode_pattern_key;
use freqstpfts::core::season::{
    find_seasons, near_support_sets, seasons_count, support_is_frequent,
};
use freqstpfts::core::support::{
    insert_sorted, intersect, intersect_into, intersect_positions_into, intersect_rows_into,
    iter_set_bits, union,
};
use freqstpfts::core::{
    classify_relation, PruningMode, RelationKind, StpmConfig, StpmMiner, TemporalPattern, Threshold,
};
use freqstpfts::datagen::SeededRng;
use freqstpfts::prelude::*;
use freqstpfts::timeseries::{EventInstance, Interval, SeriesId, SymbolId};
use std::collections::BTreeSet;

/// Number of random cases per lightweight property.
const CASES: u64 = 128;

/// A sorted, deduplicated support set over small granule ids.
fn random_support_set(rng: &mut SeededRng) -> Vec<u64> {
    let len = rng.next_below(60);
    let set: BTreeSet<u64> = (0..len).map(|_| 1 + rng.next_below(199)).collect();
    set.into_iter().collect()
}

fn resolved(
    max_period: u64,
    min_density: u64,
    dist: (u64, u64),
    min_season: u64,
) -> freqstpfts::core::ResolvedConfig {
    StpmConfig {
        max_period: Threshold::Absolute(max_period),
        min_density: Threshold::Absolute(min_density),
        dist_interval: dist,
        min_season,
        ..StpmConfig::default()
    }
    .resolve(200)
    .unwrap()
}

#[test]
fn intersection_is_subset_of_both() {
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let a = random_support_set(&mut rng);
        let b = random_support_set(&mut rng);
        let i = intersect(&a, &b);
        assert!(i.iter().all(|x| a.contains(x)), "seed {seed}");
        assert!(i.iter().all(|x| b.contains(x)), "seed {seed}");
        assert!(i.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
        // Commutativity.
        assert_eq!(i, intersect(&b, &a), "seed {seed}");
    }
}

/// A short sorted set drawn partly *from* `long` (so intersections are
/// non-trivial) and partly from fresh values — the skewed-size regime that
/// makes `intersect_into` switch from the linear merge to galloping.
fn skewed_partner(rng: &mut SeededRng, long: &[u64]) -> Vec<u64> {
    let len = rng.next_below(6) as usize;
    let set: BTreeSet<u64> = (0..len)
        .map(|_| {
            if !long.is_empty() && rng.next_below(2) == 0 {
                long[rng.next_below(long.len() as u64) as usize]
            } else {
                1 + rng.next_below(40_000)
            }
        })
        .collect();
    set.into_iter().collect()
}

#[test]
fn intersect_into_agrees_with_btreeset_reference() {
    // One reused output buffer across every case: stale contents from a
    // previous case must never leak into the next result.
    let mut out = Vec::new();
    let (mut pos_a, mut pos_b) = (Vec::new(), Vec::new());
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        // Alternate between same-order-of-magnitude sets (linear merge) and
        // sets skewed far beyond the galloping threshold.
        let (a, b) = if seed % 2 == 0 {
            (random_support_set(&mut rng), random_support_set(&mut rng))
        } else {
            let long: Vec<u64> = {
                let stride = 1 + rng.next_below(4);
                let len = 1_500 + rng.next_below(2_500);
                (0..len).map(|i| 1 + i * stride).collect()
            };
            let short = skewed_partner(&mut rng, &long);
            if rng.next_below(2) == 0 {
                (long, short)
            } else {
                (short, long)
            }
        };
        let expected: Vec<u64> = {
            let sa: BTreeSet<u64> = a.iter().copied().collect();
            let sb: BTreeSet<u64> = b.iter().copied().collect();
            sa.intersection(&sb).copied().collect()
        };
        intersect_into(&mut out, &a, &b);
        assert_eq!(out, expected, "seed {seed}");
        assert_eq!(out, intersect(&a, &b), "seed {seed}");
        // The indexed variant finds the same granules, and every recorded
        // position points back at its match in both inputs.
        intersect_positions_into(&a, &b, &mut out, &mut pos_a, &mut pos_b);
        assert_eq!(out, expected, "seed {seed}");
        for (m, &g) in out.iter().enumerate() {
            assert_eq!(a[pos_a[m] as usize], g, "seed {seed}");
            assert_eq!(b[pos_b[m] as usize], g, "seed {seed}");
        }
    }
}

#[test]
fn union_agrees_with_btreeset_reference() {
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let a = random_support_set(&mut rng);
        let b = skewed_partner(&mut rng, &a);
        let expected: Vec<u64> = {
            let mut set: BTreeSet<u64> = a.iter().copied().collect();
            set.extend(b.iter().copied());
            set.into_iter().collect()
        };
        assert_eq!(union(&a, &b), expected, "seed {seed}");
        assert_eq!(union(&b, &a), expected, "seed {seed}");
    }
}

#[test]
fn union_contains_both_inputs() {
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let a = random_support_set(&mut rng);
        let b = random_support_set(&mut rng);
        let u = union(&a, &b);
        assert!(a.iter().all(|x| u.contains(x)), "seed {seed}");
        assert!(b.iter().all(|x| u.contains(x)), "seed {seed}");
        assert!(u.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
        assert!(u.len() <= a.len() + b.len(), "seed {seed}");
    }
}

#[test]
fn insert_sorted_preserves_invariants() {
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let a = random_support_set(&mut rng);
        let extra: Vec<u64> = (0..rng.next_below(20))
            .map(|_| 1 + rng.next_below(199))
            .collect();
        let mut set = a.clone();
        for g in &extra {
            insert_sorted(&mut set, *g);
        }
        assert!(set.windows(2).all(|w| w[0] < w[1]), "seed {seed}");
        assert!(extra.iter().all(|g| set.contains(g)), "seed {seed}");
        assert!(a.iter().all(|g| set.contains(g)), "seed {seed}");
    }
}

#[test]
fn near_support_sets_partition_the_support() {
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let support = random_support_set(&mut rng);
        let max_period = 1 + rng.next_below(9);
        let sets = near_support_sets(&support, max_period);
        let flattened: Vec<u64> = sets.iter().flatten().copied().collect();
        assert_eq!(flattened, support, "seed {seed}");
        for set in &sets {
            assert!(
                set.windows(2).all(|w| w[1] - w[0] <= max_period),
                "seed {seed}"
            );
        }
        // Gaps between consecutive near sets exceed maxPeriod.
        for pair in sets.windows(2) {
            let last = *pair[0].last().unwrap();
            let first = *pair[1].first().unwrap();
            assert!(first - last > max_period, "seed {seed}");
        }
    }
}

#[test]
fn seasons_respect_density_and_count_bounds() {
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let support = random_support_set(&mut rng);
        let max_period = 1 + rng.next_below(7);
        let min_density = 1 + rng.next_below(5);
        let min_season = 1 + rng.next_below(4);
        let config = resolved(max_period, min_density, (2, 50), min_season);
        let seasons = find_seasons(&support, &config);
        // Every season is dense enough and is made of support granules.
        for season in seasons.seasons() {
            assert!(season.len() as u64 >= min_density, "seed {seed}");
            assert!(season.iter().all(|g| support.contains(g)), "seed {seed}");
        }
        // The seasonal-occurrence count is bounded by the number of seasons
        // and by the anti-monotone maxSeason bound of Equation (1).
        assert!(
            seasons.count() as usize <= seasons.seasons().len(),
            "seed {seed}"
        );
        let max_season = support.len() as f64 / min_density as f64;
        assert!((seasons.count() as f64) <= max_season + 1e-9, "seed {seed}");
    }
}

/// The pre-span-representation season extraction, kept as the reference:
/// materialise the near support sets, trim each against the previously
/// accepted season, keep the dense ones, then scan the chain.
fn reference_find_seasons(
    support: &[u64],
    config: &freqstpfts::core::ResolvedConfig,
) -> (Vec<Vec<u64>>, u64) {
    let mut seasons: Vec<Vec<u64>> = Vec::new();
    for near in near_support_sets(support, config.max_period) {
        let mut granules = near;
        if let Some(prev) = seasons.last() {
            let prev_end = *prev.last().expect("seasons are non-empty");
            let keep_from = granules
                .iter()
                .position(|g| g.saturating_sub(prev_end) >= config.dist_min)
                .unwrap_or(granules.len());
            granules.drain(..keep_from);
        }
        if granules.len() as u64 >= config.min_density {
            seasons.push(granules);
        }
    }
    let chain = if seasons.is_empty() {
        0
    } else {
        let mut best = 1u64;
        let mut current = 1u64;
        for w in seasons.windows(2) {
            let dist = w[1].first().unwrap() - w[0].last().unwrap();
            if dist >= config.dist_min && dist <= config.dist_max {
                current += 1;
            } else {
                current = 1;
            }
            best = best.max(current);
        }
        best
    };
    (seasons, chain)
}

#[test]
fn span_based_seasons_match_the_reference_materializer() {
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let support = random_support_set(&mut rng);
        let max_period = 1 + rng.next_below(7);
        let min_density = 1 + rng.next_below(5);
        let min_season = 1 + rng.next_below(4);
        let dist_min = 1 + rng.next_below(8);
        let dist_max = dist_min + rng.next_below(40);
        let config = resolved(max_period, min_density, (dist_min, dist_max), min_season);

        let (ref_seasons, ref_chain) = reference_find_seasons(&support, &config);
        let seasons = find_seasons(&support, &config);
        let materialized: Vec<Vec<u64>> = seasons.seasons().map(<[u64]>::to_vec).collect();
        assert_eq!(materialized, ref_seasons, "seed {seed}");
        assert_eq!(seasons.count(), ref_chain, "seed {seed}");
        assert_eq!(
            seasons.densities().collect::<Vec<_>>(),
            ref_seasons
                .iter()
                .map(|s| s.len() as u64)
                .collect::<Vec<_>>(),
            "seed {seed}"
        );
        assert_eq!(
            seasons.distances().collect::<Vec<_>>(),
            ref_seasons
                .windows(2)
                .map(|w| w[1].first().unwrap() - w[0].last().unwrap())
                .collect::<Vec<_>>(),
            "seed {seed}"
        );
        // The allocation-free fast paths agree with the materialiser.
        assert_eq!(seasons_count(&support, &config), ref_chain, "seed {seed}");
        assert_eq!(
            support_is_frequent(&support, &config),
            ref_chain >= min_season,
            "seed {seed}"
        );
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: dataset-scale loop
fn season_tracker_matches_the_batch_walker_on_every_prefix() {
    // The streaming miner's per-pattern season state must agree with the
    // batch season extraction at *every* prefix of an append-only support
    // set — this is the invariant streaming/batch exactness rests on.
    use freqstpfts::core::season::SeasonTracker;
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let support = random_support_set(&mut rng);
        let max_period = 1 + rng.next_below(7);
        let min_density = 1 + rng.next_below(5);
        let min_season = 1 + rng.next_below(4);
        let dist_min = 1 + rng.next_below(8);
        let dist_max = dist_min + rng.next_below(40);
        let config = resolved(max_period, min_density, (dist_min, dist_max), min_season);
        let mut tracker = SeasonTracker::default();
        for (idx, &granule) in support.iter().enumerate() {
            tracker.push(idx, granule, &config);
            let prefix = &support[..=idx];
            assert_eq!(
                tracker.snapshot(prefix, &config),
                find_seasons(prefix, &config),
                "seed {seed}, prefix {prefix:?}"
            );
            assert_eq!(
                tracker.count(prefix.len(), &config),
                seasons_count(prefix, &config),
                "seed {seed}"
            );
            assert_eq!(
                tracker.is_frequent(prefix.len(), &config),
                support_is_frequent(prefix, &config),
                "seed {seed}"
            );
        }
        // Rebuilding from the full support reproduces the incremental state.
        assert_eq!(
            SeasonTracker::rebuild(&support, &config),
            tracker,
            "seed {seed}"
        );
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: dataset-scale loop
fn adjacency_bitset_enumeration_matches_the_naive_f1_scan() {
    let label_at = |i: usize| EventLabel::new(SeriesId(i as u32), SymbolId(0));
    for seed in 0..CASES / 2 {
        let mut rng = SeededRng::seed_from_u64(seed);
        // Universes beyond 64 labels exercise multi-word rows.
        let n = 4 + rng.next_below(90) as usize;
        let labels: Vec<EventLabel> = (0..n).map(label_at).collect();
        let mut hlh2 = HlhK::new(2);
        for i in 0..n {
            for j in i + 1..n {
                let roll = rng.next_below(6);
                if roll == 0 {
                    // A related pair: group plus one candidate pattern.
                    let group = hlh2.insert_group(vec![labels[i], labels[j]], vec![1]);
                    let pattern =
                        TemporalPattern::pair([labels[i], labels[j]], RelationKind::Follows, false);
                    let key = encode_pattern_key(&pattern);
                    let binding = [
                        EventInstance::new(labels[i], Interval::new(1, 1)),
                        EventInstance::new(labels[j], Interval::new(2, 2)),
                    ];
                    hlh2.add_pattern_occurrence(
                        group,
                        &key,
                        || pattern.clone(),
                        1,
                        &binding[..1],
                        binding[1],
                    );
                } else if roll == 1 {
                    // A co-occurring pair that never classified: registered
                    // group, empty pattern list — must contribute no edge.
                    hlh2.insert_group(vec![labels[i], labels[j]], vec![1]);
                }
            }
        }
        let adjacency = RelationAdjacency::build(&hlh2, &labels);
        // Pairwise agreement with the hash-probe lookup.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert_eq!(
                    adjacency.has_relation_between(i, j),
                    hlh2.has_relation_between(labels[i], labels[j]),
                    "seed {seed}, pair ({i}, {j})"
                );
            }
        }
        // Extension enumeration: the AND of the member rows walked beyond
        // the last member equals the naive filter over the sorted labels.
        let mut row = Vec::new();
        for _ in 0..8 {
            let member_count = 1 + rng.next_below(3) as usize;
            let members: BTreeSet<usize> = (0..member_count)
                .map(|_| rng.next_below(n as u64) as usize)
                .collect();
            let last = *members.iter().next_back().unwrap();
            let naive: Vec<EventLabel> = labels
                .iter()
                .copied()
                .filter(|&e| {
                    e > labels[last]
                        && members
                            .iter()
                            .all(|&m| hlh2.has_relation_between(labels[m], e))
                })
                .collect();
            let member_rows: Vec<&[u64]> = members.iter().map(|&m| adjacency.row(m)).collect();
            intersect_rows_into(&mut row, &member_rows);
            let enumerated: Vec<EventLabel> = iter_set_bits(&row, last + 1)
                .map(|id| adjacency.label(id))
                .collect();
            assert_eq!(enumerated, naive, "seed {seed}, members {members:?}");
        }
    }
}

#[test]
fn max_season_is_anti_monotone_under_subsets() {
    // SUP(P) ⊆ SUP(P') implies maxSeason(P) <= maxSeason(P') (Lemma 1).
    let config = resolved(3, 2, (2, 50), 2);
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let a = random_support_set(&mut rng);
        let b = random_support_set(&mut rng);
        let sub = intersect(&a, &b);
        assert!(
            config.max_season(sub.len()) <= config.max_season(a.len()) + 1e-9,
            "seed {seed}"
        );
        assert!(
            config.max_season(sub.len()) <= config.max_season(b.len()) + 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn relation_classification_is_deterministic_and_exclusive() {
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let s1 = 1 + rng.next_below(49);
        let len1 = rng.next_below(10);
        let s2 = 1 + rng.next_below(49);
        let len2 = rng.next_below(10);
        let eps = rng.next_below(3);
        let a = Interval::new(s1, s1 + len1);
        let b = Interval::new(s2, s2 + len2);
        let (first, second) =
            if (a.start, std::cmp::Reverse(a.end)) <= (b.start, std::cmp::Reverse(b.end)) {
                (a, b)
            } else {
                (b, a)
            };
        let r1 = classify_relation(&first, &second, eps, 1);
        let r2 = classify_relation(&first, &second, eps, 1);
        assert_eq!(r1, r2, "seed {seed}");
        // With d_o = 1 every ordered pair must classify into exactly one of
        // the three relations (the classifier is total for min_overlap = 1).
        assert!(r1.is_some(), "seed {seed}");
    }
}

#[test]
fn nmi_is_bounded_and_reflexive() {
    use freqstpfts::approx::normalized_mi;
    use freqstpfts::timeseries::SymbolId;
    use freqstpfts::timeseries::{Alphabet, SymbolicSeries};
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let len = 16 + rng.next_below(112) as usize;
        let bits: Vec<u16> = (0..len).map(|_| rng.next_below(2) as u16).collect();
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let series = SymbolicSeries::new(
            "X".into(),
            bits.iter().map(|b| SymbolId(*b)).collect(),
            alphabet.clone(),
        );
        let shifted = SymbolicSeries::new(
            "Y".into(),
            bits.iter().rev().map(|b| SymbolId(*b)).collect(),
            alphabet,
        );
        let self_nmi = normalized_mi(&series, &series);
        let cross_nmi = normalized_mi(&series, &shifted);
        assert!((0.0..=1.0).contains(&cross_nmi), "seed {seed}");
        // A non-constant series fully informs itself.
        if bits.contains(&0) && bits.contains(&1) {
            assert!((self_nmi - 1.0).abs() < 1e-9, "seed {seed}");
        } else {
            assert_eq!(self_nmi, 0.0, "seed {seed}");
        }
    }
}

#[test]
fn mu_threshold_is_monotone_in_event_probability() {
    use freqstpfts::approx::mu_threshold;
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let lambda1 = 0.05 + 0.9 * rng.next_f64();
        let min_season = 1 + rng.next_below(19);
        let min_density = 1 + rng.next_below(9);
        let mu_rare = mu_threshold(lambda1, 0.05, min_season, min_density, 1000);
        let mu_common = mu_threshold(lambda1, 0.6, min_season, min_density, 1000);
        assert!((0.0..=1.0).contains(&mu_rare), "seed {seed}");
        assert!((0.0..=1.0).contains(&mu_common), "seed {seed}");
        assert!(mu_rare + 1e-9 >= mu_common, "seed {seed}");
    }
}

// Mining whole random databases is more expensive; fewer cases.

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: dataset-scale loop
fn pruning_never_changes_the_mined_output() {
    for case in 0..12u64 {
        let mut rng = SeededRng::seed_from_u64(case);
        let seed = rng.next_below(1000);
        let min_season = 1 + rng.next_below(2);
        let min_density = 2 + rng.next_below(2);
        let spec = DatasetSpec::real(DatasetProfile::Influenza)
            .scaled_to(5, 120)
            .with_seed(seed);
        let data = generate(&spec);
        let dseq = data.dseq().unwrap();
        let config = StpmConfig {
            max_period: Threshold::Absolute(4),
            min_density: Threshold::Absolute(min_density),
            dist_interval: (3, 60),
            min_season,
            max_pattern_len: 2,
            ..StpmConfig::default()
        };
        let mut counts = Vec::new();
        for mode in PruningMode::all_modes() {
            let report =
                StpmMiner::mine_sequences(&dseq, &config.clone().with_pruning(mode)).unwrap();
            counts.push((report.events().len(), report.patterns().len()));
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "case {case}: {counts:?}"
        );
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: dataset-scale loop
fn every_reported_pattern_satisfies_the_seasonality_constraints() {
    for case in 0..12u64 {
        let mut rng = SeededRng::seed_from_u64(case);
        let seed = rng.next_below(500);
        let spec = DatasetSpec::real(DatasetProfile::SmartCity)
            .scaled_to(5, 104)
            .with_seed(seed);
        let data = generate(&spec);
        let dseq = data.dseq().unwrap();
        let config = StpmConfig {
            max_period: Threshold::Absolute(3),
            min_density: Threshold::Absolute(2),
            dist_interval: (2, 40),
            min_season: 2,
            max_pattern_len: 2,
            ..StpmConfig::default()
        };
        let resolved = config.resolve(dseq.num_granules()).unwrap();
        let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();
        for pattern in report.patterns() {
            // Season count respects minSeason and every season is dense
            // enough.
            assert!(
                pattern.seasons().count() >= resolved.min_season,
                "case {case}"
            );
            for season in pattern.seasons().seasons() {
                assert!(season.len() as u64 >= resolved.min_density, "case {case}");
                assert!(
                    season
                        .windows(2)
                        .all(|w| w[1] - w[0] <= resolved.max_period),
                    "case {case}"
                );
            }
            // The support set only references granules where every event of
            // the pattern occurs.
            for granule in pattern.support() {
                let sequence = dseq.sequence_at(*granule).unwrap();
                for event in pattern.pattern().events() {
                    assert!(sequence.contains_event(*event), "case {case}");
                }
            }
        }
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: dataset-scale loop
fn structural_validators_accept_randomized_mining_state() {
    // The `invariants` validators must accept every state the miners
    // actually construct: batch HLH_1 tables, materialised seasons,
    // incrementally-pushed season trackers, and streaming state after
    // arbitrary batch splits. (The gated call sites inside the miners run
    // the same checks under debug_assertions; calling them here keeps the
    // validators exercised even in release property runs.)
    use freqstpfts::core::season::SeasonTracker;
    use freqstpfts::core::{Hlh1, StreamingMiner};
    for case in 0..8u64 {
        let mut rng = SeededRng::seed_from_u64(case);
        let spec = DatasetSpec::real(DatasetProfile::Influenza)
            .scaled_to(4, 90)
            .with_seed(rng.next_below(1000));
        let data = generate(&spec);
        let dseq = data.dseq().unwrap();
        let config = StpmConfig {
            max_period: Threshold::Absolute(3 + rng.next_below(3)),
            min_density: Threshold::Absolute(2),
            dist_interval: (2, 50),
            min_season: 1 + rng.next_below(2),
            max_pattern_len: 3,
            ..StpmConfig::default()
        };
        let resolved = config.resolve(dseq.num_granules()).unwrap();

        let hlh1 = Hlh1::build(&dseq, &resolved, true);
        hlh1.validate()
            .unwrap_or_else(|violation| panic!("case {case}: {violation}"));
        for &label in hlh1.labels() {
            let entry = hlh1.entry(label).unwrap();
            find_seasons(&entry.support, &resolved)
                .validate()
                .unwrap_or_else(|violation| panic!("case {case}: {violation}"));
            let tracker = SeasonTracker::rebuild(&entry.support, &resolved);
            tracker
                .validate(&entry.support, &resolved)
                .unwrap_or_else(|violation| panic!("case {case}: {violation}"));
        }

        // Streaming state stays valid across every batch boundary.
        let mut miner = StreamingMiner::new(&config, dseq.registry()).unwrap();
        let mut from = 0usize;
        while from < dseq.sequences().len() {
            let to = (from + 1 + rng.next_below(9) as usize).min(dseq.sequences().len());
            miner.append_batch(&dseq.sequences()[from..to]).unwrap();
            miner
                .validate()
                .unwrap_or_else(|violation| panic!("case {case}: {violation}"));
            from = to;
        }
        miner.checkpoint().unwrap();
    }
}

#[test]
fn validators_reject_a_corrupted_tracker() {
    // Sanity: the cross-check actually detects divergence, it does not
    // vacuously accept. A tracker replayed over a *different* support must
    // be rejected by the replay cross-check.
    use freqstpfts::core::season::SeasonTracker;
    let config = resolved(3, 2, (2, 40), 1);
    let support: Vec<u64> = vec![1, 2, 3, 10, 11, 12];
    let tracker = SeasonTracker::rebuild(&support, &config);
    tracker.validate(&support, &config).unwrap();
    let other: Vec<u64> = vec![1, 2, 3, 4, 5, 6];
    assert!(
        tracker.validate(&other, &config).is_err(),
        "tracker accepted a support it was never fed"
    );
}

// ---------------------------------------------------------------------------
// SIMD kernel parity: every tier the host CPU supports (scalar, and on
// x86_64 SSE2/AVX2 where detected) must be byte-identical to the scalar
// reference on every kernel, over adversarial inputs — empty sets, single
// elements, lane-straddling lengths, the galloping skew regime, and
// all-match / no-match rows. These tests carry the `simd_` prefix so the CI
// sanitizer smoke step can select exactly this suite.
// ---------------------------------------------------------------------------

use freqstpfts::core::simd;

/// Strictly increasing set of exactly `len` elements with gap profile drawn
/// from `rng`: dense (gap 1–2) half the time to force many vector-lane
/// matches, sparse otherwise.
fn increasing_set(rng: &mut SeededRng, len: usize) -> Vec<u64> {
    let dense = rng.next_below(2) == 0;
    let mut next = rng.next_below(16);
    let mut set = Vec::with_capacity(len);
    for _ in 0..len {
        set.push(next);
        let gap = if dense {
            1 + rng.next_below(2)
        } else {
            1 + rng.next_below(50)
        };
        next += gap;
    }
    set
}

/// Lengths that straddle every vector-lane boundary the kernels use
/// (2/4-wide u64 lanes, 16/32-wide byte lanes), plus empty and single.
const LANE_STRADDLING_LENS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64];

#[test]
fn simd_intersect_parity_across_tiers() {
    let tiers = simd::tiers();
    assert_eq!(tiers[0].name(), "scalar");
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        for &len_a in LANE_STRADDLING_LENS {
            let len_b =
                LANE_STRADDLING_LENS[rng.next_below(LANE_STRADDLING_LENS.len() as u64) as usize];
            let a = increasing_set(&mut rng, len_a);
            // Half the time, share a tail with `a` so matches actually occur.
            let b = if rng.next_below(2) == 0 && !a.is_empty() {
                let mut b: BTreeSet<u64> = increasing_set(&mut rng, len_b).into_iter().collect();
                for _ in 0..len_b {
                    b.insert(a[rng.next_below(a.len() as u64) as usize]);
                }
                b.into_iter().take(len_b).collect()
            } else {
                increasing_set(&mut rng, len_b)
            };
            let mut expect = Vec::new();
            tiers[0].intersect(&a, &b, &mut expect);
            let (mut evals, mut epa, mut epb) = (Vec::new(), Vec::new(), Vec::new());
            tiers[0].intersect_positions(&a, &b, &mut evals, &mut epa, &mut epb);
            assert_eq!(evals, expect, "seed {seed}: scalar variants disagree");
            for tier in &tiers[1..] {
                let mut got = Vec::new();
                tier.intersect(&a, &b, &mut got);
                assert_eq!(got, expect, "seed {seed} tier {}", tier.name());
                let (mut vals, mut pa, mut pb) = (Vec::new(), Vec::new(), Vec::new());
                tier.intersect_positions(&a, &b, &mut vals, &mut pa, &mut pb);
                assert_eq!(vals, expect, "seed {seed} tier {}", tier.name());
                assert_eq!(pa, epa, "seed {seed} tier {}", tier.name());
                assert_eq!(pb, epb, "seed {seed} tier {}", tier.name());
            }
        }
    }
}

#[test]
fn simd_intersect_parity_in_the_galloping_skew_regime() {
    // The public `intersect_into` keeps galloping scalar above the >= 32x
    // skew ratio, but the kernels themselves must stay correct on skewed
    // inputs too — CI runs this with and without STPM_FORCE_SCALAR=1.
    let tiers = simd::tiers();
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let long_len = 1 + rng.next_below(400) as usize * 2;
        let long = increasing_set(&mut rng, long_len);
        let short_len = (long.len() / 32).min(4);
        let short = skewed_partner(&mut rng, &long);
        let short: Vec<u64> = short.into_iter().take(short_len.max(1)).collect();
        let mut expect = Vec::new();
        tiers[0].intersect(&short, &long, &mut expect);
        for tier in &tiers[1..] {
            for (x, y) in [(&short, &long), (&long, &short)] {
                let mut got = Vec::new();
                tier.intersect(x, y, &mut got);
                assert_eq!(got, expect, "seed {seed} tier {}", tier.name());
            }
        }
        // And the public entry point (whatever its regime choice) agrees
        // with the scalar kernel.
        let mut via_public = Vec::new();
        intersect_into(&mut via_public, &short, &long);
        assert_eq!(via_public, expect, "seed {seed}");
    }
}

#[test]
fn simd_and_words_parity_across_tiers() {
    let tiers = simd::tiers();
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        for &len in LANE_STRADDLING_LENS {
            let mode = rng.next_below(3);
            let acc_init: Vec<u64> = (0..len)
                .map(|_| match mode {
                    0 => u64::MAX, // all-match rows
                    1 => 0,        // no-match rows
                    _ => rng.next_below(u64::MAX),
                })
                .collect();
            let row: Vec<u64> = (0..len)
                .map(|_| match mode {
                    0 => u64::MAX,
                    1 => rng.next_below(u64::MAX),
                    _ => rng.next_below(u64::MAX),
                })
                .collect();
            let mut expect = acc_init.clone();
            tiers[0].and_words(&mut expect, &row);
            for tier in &tiers[1..] {
                let mut got = acc_init.clone();
                tier.and_words(&mut got, &row);
                assert_eq!(got, expect, "seed {seed} len {len} tier {}", tier.name());
            }
        }
    }
}

#[test]
fn simd_verdict_scan_parity_across_tiers() {
    let tiers = simd::tiers();
    for &len in LANE_STRADDLING_LENS {
        let zeros = vec![0u8; len];
        for tier in &tiers {
            assert!(!tier.verdict_any(&zeros), "len {len} tier {}", tier.name());
        }
        // A single relation byte at every offset must be found by every
        // tier, wherever it lands relative to the 16/32-byte chunks.
        let mut block = zeros;
        for hot in 0..len {
            block[hot] = 3;
            for tier in &tiers {
                assert!(
                    tier.verdict_any(&block),
                    "len {len} hot {hot} tier {}",
                    tier.name()
                );
            }
            block[hot] = 0;
        }
    }
}

#[test]
fn simd_run_end_parity_across_tiers() {
    let tiers = simd::tiers();
    for seed in 0..CASES {
        let mut rng = SeededRng::seed_from_u64(seed);
        let len = 1 + rng.next_below(80) as usize;
        let support = increasing_set(&mut rng, len);
        let max_period = 1 + rng.next_below(40);
        for start in 0..support.len() {
            let expect = tiers[0].run_end(&support, start, max_period);
            assert!(expect > start && expect <= support.len(), "seed {seed}");
            for tier in &tiers[1..] {
                assert_eq!(
                    tier.run_end(&support, start, max_period),
                    expect,
                    "seed {seed} start {start} tier {}",
                    tier.name()
                );
            }
        }
    }
}

#[test]
fn simd_force_scalar_selects_the_scalar_table() {
    // The pure selection step must route to scalar when forced...
    assert_eq!(simd::select(true).name(), "scalar");
    // ...and the env-driven cached choice must agree with the cached env
    // snapshot. In the STPM_FORCE_SCALAR=1 CI leg this pins the scalar
    // route through the public entry point; in the default leg it pins
    // detection.
    assert_eq!(
        simd::kernels().name(),
        simd::select(simd::force_scalar_requested()).name()
    );
    if simd::force_scalar_requested() {
        assert_eq!(simd::kernels().name(), "scalar");
    } else {
        assert_eq!(simd::kernels().name(), simd::detected().name());
    }
}
