//! Cross-crate integration tests: the full pipeline from raw time series to
//! frequent seasonal temporal patterns, exercised through the facade crate,
//! with the three miners compared on the same data.

use freqstpfts::prelude::*;

/// The paper's running example (Table II) as raw energy readings.
fn paper_series() -> Vec<TimeSeries> {
    let rows: &[(&str, &str)] = &[
        ("C", "110100110000000000111111000000100110000110"),
        ("D", "100100110110000000111111000000100100110110"),
        ("F", "001011001001111000000000111111001001001001"),
        ("M", "111100111110111111000111111111111000111000"),
        ("N", "110111111110111111000000111111111111111000"),
    ];
    rows.iter()
        .map(|(name, bits)| {
            TimeSeries::new(
                *name,
                bits.chars()
                    .map(|c| if c == '1' { 1.5 } else { 0.0 })
                    .collect(),
            )
        })
        .collect()
}

fn paper_config() -> StpmConfig {
    StpmConfig {
        max_period: Threshold::Absolute(2),
        min_density: Threshold::Absolute(2),
        dist_interval: (3, 10),
        min_season: 2,
        max_pattern_len: 3,
        ..StpmConfig::default()
    }
}

#[test]
fn full_pipeline_reproduces_the_paper_running_example() {
    let outcome = freqstpfts::mine_seasonal_patterns(
        &paper_series(),
        &ThresholdSymbolizer::binary(0.1, "0", "1"),
        3,
        &paper_config(),
    )
    .expect("the running example is valid");

    assert_eq!(outcome.dsyb.num_series(), 5);
    assert_eq!(outcome.dseq.num_granules(), 14);

    // The headline pattern of the paper: C:1 contains D:1, with support
    // {H1,H2,H3,H7,H8,H11,H12,H14}.
    let c1 = outcome.dseq.registry().label("C", "1").unwrap();
    let d1 = outcome.dseq.registry().label("D", "1").unwrap();
    let target = TemporalPattern::pair([c1, d1], RelationKind::Contains, false);
    let found = outcome
        .report
        .patterns()
        .iter()
        .find(|p| p.pattern() == &target)
        .expect("C:1 ≽ D:1 must be frequent");
    assert_eq!(found.support(), &[1, 2, 3, 7, 8, 11, 12, 14]);
}

#[test]
fn exact_and_baseline_agree_on_strongly_seasonal_patterns() {
    let outcome = freqstpfts::mine_seasonal_patterns(
        &paper_series(),
        &ThresholdSymbolizer::binary(0.1, "0", "1"),
        3,
        &paper_config(),
    )
    .unwrap();
    let baseline = ApsGrowth::new(&outcome.dseq, &paper_config())
        .unwrap()
        .mine();

    // Everything the baseline reports must also be reported by E-STPM.
    for pattern in baseline.report.patterns() {
        assert!(outcome.report.contains_pattern(pattern.pattern()));
    }
    // And the baseline does find the headline pattern here.
    assert!(baseline.report.total_patterns() > 0);
}

#[test]
fn approximate_miner_matches_exact_when_nothing_is_pruned() {
    let dsyb = SymbolicDatabase::from_series(
        &paper_series(),
        &ThresholdSymbolizer::binary(0.1, "0", "1"),
    )
    .unwrap();
    let dseq = dsyb.to_sequence_database(3).unwrap();
    let exact = StpmMiner::new(&dseq, &paper_config()).unwrap().mine();

    let approx = AStpmMiner::new(&dsyb, 3, &AStpmConfig::new(paper_config()).with_mu(0.0))
        .unwrap()
        .mine()
        .unwrap();
    let acc = accuracy(&exact, dsyb.registry(), approx.report(), approx.registry());
    assert!((acc - 100.0).abs() < 1e-9);
}

#[test]
fn generated_datasets_flow_through_all_three_miners() {
    let spec = DatasetSpec::real(DatasetProfile::HandFootMouth)
        .scaled_to(8, 240)
        .with_seed(5);
    let data = generate(&spec);
    let dseq = data.dseq().unwrap();
    let config = StpmConfig {
        max_period: Threshold::Fraction(0.01),
        min_density: Threshold::Fraction(0.0075),
        dist_interval: DatasetProfile::HandFootMouth.dist_interval(),
        min_season: 2,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };

    let exact = StpmMiner::new(&dseq, &config).unwrap().mine();
    let approx = AStpmMiner::new(&data.dsyb, data.mapping_factor, &AStpmConfig::new(config.clone()))
        .unwrap()
        .mine()
        .unwrap();
    let baseline = ApsGrowth::new(&dseq, &config).unwrap().mine();

    // The exact miner dominates both others in recall on the same thresholds.
    assert!(exact.total_patterns() >= approx.report().total_patterns());
    for p in baseline.report.patterns() {
        assert!(exact.contains_pattern(p.pattern()));
    }
    // The generated workload is genuinely seasonal: patterns exist.
    assert!(exact.total_patterns() > 0);
}

#[test]
fn pruning_modes_are_output_equivalent_on_generated_data() {
    let spec = DatasetSpec::real(DatasetProfile::SmartCity)
        .scaled_to(7, 208)
        .with_seed(3);
    let data = generate(&spec);
    let dseq = data.dseq().unwrap();
    let base = StpmConfig {
        max_period: Threshold::Fraction(0.01),
        min_density: Threshold::Fraction(0.01),
        dist_interval: DatasetProfile::SmartCity.dist_interval(),
        min_season: 2,
        max_pattern_len: 3,
        ..StpmConfig::default()
    };
    let mut totals = Vec::new();
    for mode in PruningMode::all_modes() {
        let report = StpmMiner::new(&dseq, &base.clone().with_pruning(mode))
            .unwrap()
            .mine();
        totals.push(report.total_patterns());
    }
    assert!(totals.windows(2).all(|w| w[0] == w[1]), "{totals:?}");
}

#[test]
fn mining_at_different_granularities_is_consistent() {
    // Definition 3.11: different sequence mappings give different D_SEQ; the
    // miner must work at every granularity and coarser granularities cannot
    // have more granules.
    let series = paper_series();
    let symbolizer = ThresholdSymbolizer::binary(0.1, "0", "1");
    let dsyb = SymbolicDatabase::from_series(&series, &symbolizer).unwrap();
    let mut previous_granules = u64::MAX;
    for m in [1u64, 2, 3, 6] {
        let dseq = dsyb.to_sequence_database(m).unwrap();
        assert!(dseq.num_granules() <= previous_granules);
        previous_granules = dseq.num_granules();
        let config = StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (1, 20),
            min_season: 1,
            max_pattern_len: 2,
            ..StpmConfig::default()
        };
        let report = StpmMiner::new(&dseq, &config).unwrap().mine();
        assert!(report.stats().num_granules == dseq.num_granules());
    }
}
