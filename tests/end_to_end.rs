//! Cross-crate integration tests: the full pipeline from raw time series to
//! frequent seasonal temporal patterns, exercised through the facade crate's
//! `Pipeline` builder, with the three engines compared on the same data.

use freqstpfts::prelude::*;

/// The paper's running example (Table II) as raw energy readings.
fn paper_series() -> Vec<TimeSeries> {
    let rows: &[(&str, &str)] = &[
        ("C", "110100110000000000111111000000100110000110"),
        ("D", "100100110110000000111111000000100100110110"),
        ("F", "001011001001111000000000111111001001001001"),
        ("M", "111100111110111111000111111111111000111000"),
        ("N", "110111111110111111000000111111111111111000"),
    ];
    rows.iter()
        .map(|(name, bits)| {
            TimeSeries::new(
                *name,
                bits.chars()
                    .map(|c| if c == '1' { 1.5 } else { 0.0 })
                    .collect(),
            )
        })
        .collect()
}

fn paper_config() -> StpmConfig {
    StpmConfig {
        max_period: Threshold::Absolute(2),
        min_density: Threshold::Absolute(2),
        dist_interval: (3, 10),
        min_season: 2,
        max_pattern_len: 3,
        ..StpmConfig::default()
    }
}

fn paper_pipeline(engine: Engine) -> Pipeline {
    Pipeline::builder()
        .symbolizer(ThresholdSymbolizer::binary(0.1, "0", "1"))
        .mapping_factor(3)
        .engine(engine)
        .thresholds(paper_config())
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: full pipeline runs
fn full_pipeline_reproduces_the_paper_running_example() {
    let outcome = paper_pipeline(Engine::Exact)
        .run(&paper_series())
        .expect("the running example is valid");

    let dsyb = outcome.dsyb.as_ref().expect("run() builds D_SYB");
    assert_eq!(dsyb.num_series(), 5);
    assert_eq!(outcome.dseq.num_granules(), 14);

    // The headline pattern of the paper: C:1 contains D:1, with support
    // {H1,H2,H3,H7,H8,H11,H12,H14}.
    let c1 = outcome.report.registry().label("C", "1").unwrap();
    let d1 = outcome.report.registry().label("D", "1").unwrap();
    let target = TemporalPattern::pair([c1, d1], RelationKind::Contains, false);
    let found = outcome
        .report
        .patterns()
        .iter()
        .find(|p| p.pattern() == &target)
        .expect("C:1 ≽ D:1 must be frequent");
    assert_eq!(found.support(), &[1, 2, 3, 7, 8, 11, 12, 14]);
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: full pipeline runs
fn exact_and_baseline_agree_on_strongly_seasonal_patterns() {
    let exact = paper_pipeline(Engine::Exact).run(&paper_series()).unwrap();
    let baseline = paper_pipeline(Engine::ApsGrowth)
        .run(&paper_series())
        .unwrap();

    // Everything the baseline reports must also be reported by E-STPM.
    for pattern in baseline.report.patterns() {
        assert!(exact.report.contains_pattern(pattern.pattern()));
    }
    // And the baseline does find the headline pattern here.
    assert!(baseline.report.total_patterns() > 0);
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: full pipeline runs
fn approximate_engine_matches_exact_when_nothing_is_pruned() {
    let exact = paper_pipeline(Engine::Exact).run(&paper_series()).unwrap();
    let approx = paper_pipeline(Engine::Approximate { mu: Some(0.0) })
        .run(&paper_series())
        .unwrap();
    let acc = accuracy(&exact.report, &approx.report);
    assert!((acc - 100.0).abs() < 1e-9);
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: full pipeline runs
fn generated_datasets_flow_through_all_three_engines() {
    let spec = DatasetSpec::real(DatasetProfile::HandFootMouth)
        .scaled_to(8, 240)
        .with_seed(5);
    let data = generate(&spec);
    let config = StpmConfig {
        max_period: Threshold::Fraction(0.01),
        min_density: Threshold::Fraction(0.0075),
        dist_interval: DatasetProfile::HandFootMouth.dist_interval(),
        min_season: 2,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };

    let run = |engine: Engine| {
        Pipeline::builder()
            .mapping_factor(data.mapping_factor)
            .engine(engine)
            .thresholds(config.clone())
            .run_symbolic(&data.dsyb)
            .expect("generated data is valid")
            .report
    };
    let exact = run(Engine::Exact);
    let approx = run(Engine::Approximate { mu: None });
    let baseline = run(Engine::ApsGrowth);

    // The exact miner dominates both others in recall on the same thresholds.
    assert!(exact.total_patterns() >= approx.total_patterns());
    for p in baseline.patterns() {
        assert!(exact.contains_pattern(p.pattern()));
    }
    // The generated workload is genuinely seasonal: patterns exist.
    assert!(exact.total_patterns() > 0);
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: full pipeline runs
fn pruning_modes_are_output_equivalent_on_generated_data() {
    let spec = DatasetSpec::real(DatasetProfile::SmartCity)
        .scaled_to(7, 208)
        .with_seed(3);
    let data = generate(&spec);
    let base = StpmConfig {
        max_period: Threshold::Fraction(0.01),
        min_density: Threshold::Fraction(0.01),
        dist_interval: DatasetProfile::SmartCity.dist_interval(),
        min_season: 2,
        max_pattern_len: 3,
        ..StpmConfig::default()
    };
    let mut totals = Vec::new();
    for mode in PruningMode::all_modes() {
        let outcome = Pipeline::builder()
            .mapping_factor(data.mapping_factor)
            .thresholds(base.clone().with_pruning(mode))
            .run_symbolic(&data.dsyb)
            .unwrap();
        totals.push(outcome.report.total_patterns());
    }
    assert!(totals.windows(2).all(|w| w[0] == w[1]), "{totals:?}");
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: full pipeline runs
fn mining_at_different_granularities_is_consistent() {
    // Definition 3.11: different sequence mappings give different D_SEQ; the
    // miner must work at every granularity and coarser granularities cannot
    // have more granules.
    let series = paper_series();
    let config = StpmConfig {
        max_period: Threshold::Absolute(2),
        min_density: Threshold::Absolute(2),
        dist_interval: (1, 20),
        min_season: 1,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };
    let mut previous_granules = u64::MAX;
    for m in [1u64, 2, 3, 6] {
        let outcome = Pipeline::builder()
            .symbolizer(ThresholdSymbolizer::binary(0.1, "0", "1"))
            .mapping_factor(m)
            .thresholds(config.clone())
            .run(&series)
            .unwrap();
        assert!(outcome.dseq.num_granules() <= previous_granules);
        previous_granules = outcome.dseq.num_granules();
        assert_eq!(
            outcome.report.stats().num_granules,
            outcome.dseq.num_granules()
        );
    }
}
