//! Snapshot persistence and crash recovery: restoring a [`StreamingMiner`]
//! or [`StreamingPipeline`] from durable bytes must be *exact* — byte-for-
//! byte identical to never having stopped — and feeding either one corrupt
//! bytes must produce a typed error, never a panic.
//!
//! As elsewhere in the workspace, properties are checked over a
//! deterministic stream of pseudo-random cases drawn from the seedable RNG
//! (no crates.io access), with the case seed printed on failure.

use freqstpfts::core::canonical_result_set as canonical;
use freqstpfts::core::snapshot;
use freqstpfts::datagen::SeededRng;
use freqstpfts::prelude::*;
use std::path::PathBuf;

fn snapshot_bytes(miner: &mut StreamingMiner) -> Vec<u8> {
    let mut bytes = Vec::new();
    miner.snapshot(&mut bytes).unwrap();
    bytes
}

/// A fresh scratch directory under the system temp dir, wiped on entry so
/// reruns never see stale files.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "stpm_snapshot_recovery_{}_{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Cuts `0..total` into random consecutive non-empty batches.
fn random_boundaries(rng: &mut SeededRng, total: usize) -> Vec<(usize, usize)> {
    let mut boundaries = Vec::new();
    let mut cursor = 0usize;
    while cursor < total {
        let step = 1 + rng.next_below(30) as usize;
        let next = (cursor + step).min(total);
        boundaries.push((cursor, next));
        cursor = next;
    }
    boundaries
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn snapshot_restore_append_is_byte_identical_at_every_checkpoint() {
    // The uninterrupted run snapshots at every batch boundary; then, for
    // every checkpoint k, a second miner is restored from snapshot k and
    // replays the remaining batches, snapshotting at the same boundaries.
    // Every one of its snapshots must be byte-identical to the
    // uninterrupted run's — over random databases, random snapshot points,
    // absolute and fractional thresholds, and thread counts.
    for case in 0..6u64 {
        let mut rng = SeededRng::seed_from_u64(4200 + case);
        let profile = if case % 2 == 0 {
            DatasetProfile::Influenza
        } else {
            DatasetProfile::SmartCity
        };
        let spec = profile_spec(profile, &mut rng);
        let data = generate(&spec);
        let dseq = data.dseq().unwrap();
        let fractional = case % 3 == 0;
        let config = StpmConfig {
            max_period: if fractional {
                Threshold::Fraction(0.03 + 0.01 * (case as f64))
            } else {
                Threshold::Absolute(2 + rng.next_below(3))
            },
            min_density: if fractional {
                Threshold::Fraction(0.02)
            } else {
                Threshold::Absolute(2)
            },
            dist_interval: (2 + rng.next_below(3), 40 + rng.next_below(30)),
            min_season: 1 + rng.next_below(2),
            max_pattern_len: 2 + (case % 2) as usize,
            ..StpmConfig::default()
        }
        .with_threads(if case % 2 == 0 { 1 } else { 3 });
        let boundaries = random_boundaries(&mut rng, dseq.sequences().len());

        let mut uninterrupted = StreamingMiner::new(&config, dseq.registry()).unwrap();
        let mut checkpoints = Vec::new();
        for &(from, to) in &boundaries {
            uninterrupted
                .append_batch(&dseq.sequences()[from..to])
                .unwrap();
            checkpoints.push(snapshot_bytes(&mut uninterrupted));
        }

        for (k, bytes) in checkpoints.iter().enumerate() {
            let mut resumed = StreamingMiner::restore(&mut &bytes[..]).unwrap();
            for (later, &(from, to)) in boundaries.iter().enumerate().skip(k + 1) {
                resumed.append_batch(&dseq.sequences()[from..to]).unwrap();
                assert_eq!(
                    snapshot_bytes(&mut resumed),
                    checkpoints[later],
                    "case {case}: restore at checkpoint {k} diverged at checkpoint {later}"
                );
            }
        }

        // And the final state is exactly what a batch mine reports.
        let report = uninterrupted.checkpoint().unwrap();
        let batch = StpmMiner::mine_sequences(&dseq, &config).unwrap();
        assert_eq!(
            canonical(report.events(), report.patterns()),
            canonical(batch.events(), batch.patterns()),
            "case {case}: final checkpoint diverged from the batch mine"
        );
    }
}

fn profile_spec(profile: DatasetProfile, rng: &mut SeededRng) -> DatasetSpec {
    DatasetSpec::real(profile)
        .scaled_to(4 + rng.next_below(2) as usize, 80 + rng.next_below(40))
        .with_seed(rng.next_below(1000))
}

fn sample_series(samples: usize) -> Vec<TimeSeries> {
    // Deterministic pseudo-seasonal on/off series, long enough to split into
    // many raw-sample batches.
    let mut rng = SeededRng::seed_from_u64(99);
    ["Cooker", "Dishes", "Heater"]
        .iter()
        .map(|name| {
            let values = (0..samples)
                .map(|i| {
                    let seasonal = (i / 6) % 3 == 0;
                    if seasonal || rng.next_below(8) == 0 {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            TimeSeries::new(*name, values)
        })
        .collect()
}

fn chunk(series: &[TimeSeries], from: usize, to: usize) -> Vec<TimeSeries> {
    series
        .iter()
        .map(|s| TimeSeries::new(s.name(), s.values()[from..to].to_vec()))
        .collect()
}

fn stream_builder() -> Pipeline {
    Pipeline::builder()
        .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
        .mapping_factor(3)
        .thresholds(StpmConfig {
            max_period: Threshold::Absolute(3),
            min_density: Threshold::Absolute(2),
            dist_interval: (2, 40),
            min_season: 1,
            max_pattern_len: 2,
            ..StpmConfig::default()
        })
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn pipeline_snapshot_round_trips_and_resumes_exactly() {
    let series = sample_series(90);
    let mut original = stream_builder().into_streaming();
    original.append(&chunk(&series, 0, 45)).unwrap();

    let mut bytes = Vec::new();
    original.snapshot_to_writer(&mut bytes).unwrap();
    assert_eq!(original.pending_granules(), 0);
    assert_eq!(original.checkpoint_meta().checkpoint_id, 1);

    let mut resumed = stream_builder().into_streaming();
    resumed.restore_from(&mut &bytes[..]).unwrap();
    assert_eq!(resumed.num_granules(), original.num_granules());
    assert_eq!(resumed.dseq().unwrap(), original.dseq().unwrap());
    assert_eq!(resumed.checkpoint_meta(), original.checkpoint_meta());

    // Both sides absorb the same tail — reports and databases stay equal.
    let a = original.append(&chunk(&series, 45, 90)).unwrap();
    let b = resumed.append(&chunk(&series, 45, 90)).unwrap();
    assert_eq!(a.events(), b.events());
    assert_eq!(a.patterns(), b.patterns());
    assert_eq!(original.dseq().unwrap(), resumed.dseq().unwrap());
    assert_eq!(original.pending_granules(), resumed.pending_granules());
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn empty_pipeline_snapshot_round_trips() {
    let mut empty = stream_builder().into_streaming();
    let mut bytes = Vec::new();
    empty.snapshot_to_writer(&mut bytes).unwrap();
    let mut restored = stream_builder().into_streaming();
    restored.restore_from(&mut &bytes[..]).unwrap();
    assert_eq!(restored.num_granules(), 0);
    assert_eq!(restored.checkpoint_meta().granules_absorbed, 0);
    let series = sample_series(9);
    restored.append(&chunk(&series, 0, 9)).unwrap();
    assert_eq!(restored.num_granules(), 3);
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn crash_between_snapshots_loses_nothing_with_a_wal() {
    let dir = scratch_dir("wal_recovery");
    let snap_path = dir.join("state.snap");
    let wal_path = dir.join("state.wal");
    let series = sample_series(90);

    // Session one: snapshot after the first batch, then two more logged
    // appends, then "crash" (drop without snapshotting).
    let mut session_one = stream_builder().into_streaming();
    session_one.attach_wal(&wal_path).unwrap();
    session_one.append(&chunk(&series, 0, 30)).unwrap();
    session_one.snapshot_to(&snap_path).unwrap();
    session_one.append(&chunk(&series, 30, 60)).unwrap();
    session_one.append(&chunk(&series, 60, 90)).unwrap();
    let final_report = session_one.checkpoint().unwrap();
    assert_eq!(session_one.pending_granules(), 20);
    drop(session_one);

    // Session two: recover = restore snapshot + replay the two WAL records.
    let mut session_two = stream_builder().into_streaming();
    let recovery = session_two.recover(Some(&snap_path), &wal_path).unwrap();
    assert_eq!(recovery.restored_granules, 10);
    assert_eq!(recovery.replayed_records, 2);
    assert!(recovery.wal_was_clean);
    assert_eq!(session_two.num_granules(), 30);
    let recovered_report = session_two.checkpoint().unwrap();
    assert_eq!(recovered_report.events(), final_report.events());
    assert_eq!(recovered_report.patterns(), final_report.patterns());

    // The recovered session keeps logging: a third session recovers its
    // post-recovery appends too.
    let more = sample_series(108);
    session_two.append(&chunk(&more, 90, 108)).unwrap();
    let expected = session_two.checkpoint().unwrap();
    drop(session_two);
    let mut session_three = stream_builder().into_streaming();
    let recovery = session_three.recover(Some(&snap_path), &wal_path).unwrap();
    // Replayed records are not re-logged (the WAL already holds them), so
    // the log now holds the two pre-crash batches plus the new one.
    assert_eq!(recovery.replayed_records, 3);
    assert_eq!(session_three.num_granules(), 36);
    let report = session_three.checkpoint().unwrap();
    assert_eq!(report.patterns(), expected.patterns());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn a_torn_wal_tail_is_dropped_and_the_durable_prefix_recovers() {
    let dir = scratch_dir("torn_tail");
    let wal_path = dir.join("state.wal");
    let series = sample_series(90);

    let mut writer = stream_builder().into_streaming();
    writer.attach_wal(&wal_path).unwrap();
    writer.append(&chunk(&series, 0, 30)).unwrap();
    writer.append(&chunk(&series, 30, 60)).unwrap();
    writer.append(&chunk(&series, 60, 90)).unwrap();
    drop(writer);

    // Simulate a crash mid-append: chop bytes off the last record.
    let full = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &full[..full.len() - 7]).unwrap();

    let mut recovered = stream_builder().into_streaming();
    let recovery = recovered.recover(None, &wal_path).unwrap();
    assert!(!recovery.wal_was_clean);
    assert_eq!(recovery.restored_granules, 0);
    assert_eq!(recovery.replayed_records, 2);
    assert_eq!(recovered.num_granules(), 20);

    // The durable prefix is exactly the first two batches.
    let mut direct = stream_builder().into_streaming();
    direct.append(&chunk(&series, 0, 60)).unwrap();
    let a = recovered.checkpoint().unwrap();
    let b = direct.checkpoint().unwrap();
    assert_eq!(a.events(), b.events());
    assert_eq!(a.patterns(), b.patterns());

    // The torn tail was truncated away: a re-recovery sees a clean log, and
    // new appends extend it.
    recovered.append(&chunk(&series, 60, 90)).unwrap();
    let mut again = stream_builder().into_streaming();
    let recovery = again.recover(None, &wal_path).unwrap();
    assert!(recovery.wal_was_clean);
    assert_eq!(again.num_granules(), 30);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn attach_wal_truncates_a_torn_tail_before_new_appends() {
    // A crash mid-append leaves a torn record; a session that reconstructs
    // the durable prefix itself and then attaches the WAL directly must not
    // append after the torn bytes — records there would be unreachable to
    // every later recovery.
    let dir = scratch_dir("attach_torn");
    let wal_path = dir.join("state.wal");
    let series = sample_series(60);
    let mut writer = stream_builder().into_streaming();
    writer.attach_wal(&wal_path).unwrap();
    writer.append(&chunk(&series, 0, 30)).unwrap();
    writer.append(&chunk(&series, 30, 60)).unwrap();
    drop(writer);
    let full = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &full[..full.len() - 5]).unwrap();

    let mut session = stream_builder().into_streaming();
    session.append(&chunk(&series, 0, 30)).unwrap();
    session.attach_wal(&wal_path).unwrap();
    session.append(&chunk(&series, 30, 60)).unwrap();
    drop(session);

    // Both batches are reachable: the torn record was cut before the append.
    let mut recovered = stream_builder().into_streaming();
    let recovery = recovered.recover(None, &wal_path).unwrap();
    assert!(recovery.wal_was_clean);
    assert_eq!(recovery.replayed_records, 2);
    assert_eq!(recovered.num_granules(), 20);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn attach_wal_rejects_a_file_that_is_not_a_wal() {
    let dir = scratch_dir("attach_foreign");
    let path = dir.join("not_a_wal.bin");
    std::fs::write(&path, b"definitely not a WAL header").unwrap();
    let mut pipeline = stream_builder().into_streaming();
    let err = pipeline.attach_wal(&path).unwrap_err();
    assert!(matches!(err, PipelineError::Persistence(_)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn a_failed_snapshot_to_keeps_the_wal_and_the_pending_accounting() {
    let dir = scratch_dir("failed_snapshot");
    let wal_path = dir.join("state.wal");
    let series = sample_series(60);
    let mut stream = stream_builder().into_streaming();
    stream.attach_wal(&wal_path).unwrap();
    stream.append(&chunk(&series, 0, 30)).unwrap();
    stream.append(&chunk(&series, 30, 60)).unwrap();
    let before = stream.checkpoint_meta();
    assert_eq!(before.pending_granules, 20);

    // The target's parent directory does not exist: nothing can become
    // durable, so nothing may claim to be.
    let missing = dir.join("no_such_dir").join("state.snap");
    let err = stream.snapshot_to(&missing).unwrap_err();
    assert!(matches!(err, PipelineError::Persistence(_)));
    assert_eq!(stream.checkpoint_meta(), before);
    drop(stream);

    // The WAL was not truncated: a recovery still replays every batch.
    let mut recovered = stream_builder().into_streaming();
    let recovery = recovered.recover(None, &wal_path).unwrap();
    assert_eq!(recovery.replayed_records, 2);
    assert_eq!(recovered.num_granules(), 20);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn snapshot_to_leaves_no_temp_file_and_truncates_the_wal() {
    let dir = scratch_dir("atomic_snapshot");
    let snap_path = dir.join("state.snap");
    let wal_path = dir.join("state.wal");
    let series = sample_series(30);
    let mut stream = stream_builder().into_streaming();
    stream.attach_wal(&wal_path).unwrap();
    stream.append(&chunk(&series, 0, 30)).unwrap();
    let header_len = snapshot::wal_header().len() as u64;
    assert!(std::fs::metadata(&wal_path).unwrap().len() > header_len);
    stream.snapshot_to(&snap_path).unwrap();
    assert_eq!(stream.pending_granules(), 0);
    assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), header_len);
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .filter(|n| n.to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    let mut restored = stream_builder().into_streaming();
    restored
        .restore_from(&mut std::fs::File::open(&snap_path).unwrap())
        .unwrap();
    assert_eq!(restored.num_granules(), 10);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn recovery_from_nothing_starts_empty_and_creates_the_wal() {
    let dir = scratch_dir("from_nothing");
    let mut pipeline = stream_builder().into_streaming();
    let recovery = pipeline
        .recover(Some(&dir.join("missing.snap")), &dir.join("fresh.wal"))
        .unwrap();
    assert_eq!(
        recovery,
        RecoveryReport {
            restored_granules: 0,
            replayed_records: 0,
            wal_was_clean: true,
            io_retries: 0,
        }
    );
    let series = sample_series(30);
    pipeline.append(&chunk(&series, 0, 30)).unwrap();
    assert!(dir.join("fresh.wal").is_file());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn every_pipeline_snapshot_truncation_is_a_typed_error() {
    let series = sample_series(45);
    let mut original = stream_builder().into_streaming();
    original.append(&chunk(&series, 0, 45)).unwrap();
    let mut bytes = Vec::new();
    original.snapshot_to_writer(&mut bytes).unwrap();

    for len in 0..bytes.len() {
        let mut target = stream_builder().into_streaming();
        let err = target
            .restore_from(&mut &bytes[..len])
            .expect_err("truncated snapshot must not restore");
        assert!(
            matches!(err, PipelineError::Persistence(_)),
            "truncation to {len} bytes produced {err:?}"
        );
    }
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn random_bit_flips_in_a_pipeline_snapshot_never_panic() {
    let series = sample_series(45);
    let mut original = stream_builder().into_streaming();
    original.append(&chunk(&series, 0, 45)).unwrap();
    let mut bytes = Vec::new();
    original.snapshot_to_writer(&mut bytes).unwrap();

    let mut rng = SeededRng::seed_from_u64(77);
    for flip in 0..300 {
        let offset = rng.next_below(bytes.len() as u64) as usize;
        let bit = rng.next_below(8) as u8;
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 1 << bit;
        let mut target = stream_builder().into_streaming();
        let result = target.restore_from(&mut &corrupt[..]);
        assert!(
            result.is_err(),
            "flip {flip}: bit {bit} of byte {offset} went undetected"
        );
    }
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn wal_bit_flips_recover_the_durable_prefix_or_error_but_never_panic() {
    let dir = scratch_dir("wal_flips");
    let wal_path = dir.join("state.wal");
    let series = sample_series(60);
    let mut writer = stream_builder().into_streaming();
    writer.attach_wal(&wal_path).unwrap();
    writer.append(&chunk(&series, 0, 30)).unwrap();
    writer.append(&chunk(&series, 30, 60)).unwrap();
    drop(writer);
    let pristine = std::fs::read(&wal_path).unwrap();

    let mut rng = SeededRng::seed_from_u64(78);
    for _ in 0..150 {
        let offset = rng.next_below(pristine.len() as u64) as usize;
        let mut corrupt = pristine.clone();
        corrupt[offset] ^= 1 << (offset % 8);
        std::fs::write(&wal_path, &corrupt).unwrap();
        let mut pipeline = stream_builder().into_streaming();
        // Either the header is damaged (typed error) or a record is dropped
        // (clean recovery of the prefix); both are acceptable — panicking or
        // silently absorbing corrupt data is not.
        match pipeline.recover(None, &wal_path) {
            Ok(recovery) => assert!(recovery.replayed_records <= 2),
            Err(err) => assert!(matches!(err, PipelineError::Persistence(_))),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn config_mismatches_surface_as_typed_errors() {
    let series = sample_series(45);
    let mut original = stream_builder().into_streaming();
    original.append(&chunk(&series, 0, 45)).unwrap();
    let mut bytes = Vec::new();
    original.snapshot_to_writer(&mut bytes).unwrap();

    // A different mapping factor re-shapes every granule: rejected.
    let mut other_m = Pipeline::builder()
        .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
        .mapping_factor(5)
        .thresholds(StpmConfig {
            max_period: Threshold::Absolute(3),
            min_density: Threshold::Absolute(2),
            dist_interval: (2, 40),
            min_season: 1,
            max_pattern_len: 2,
            ..StpmConfig::default()
        })
        .into_streaming();
    let err = other_m.restore_from(&mut &bytes[..]).unwrap_err();
    assert!(matches!(
        err,
        PipelineError::Persistence(freqstpfts::core::Error::SnapshotConfigMismatch {
            parameter: "mappingFactor",
            ..
        })
    ));

    // A different ε re-shapes the interned relations: rejected.
    let mut config = StpmConfig {
        max_period: Threshold::Absolute(3),
        min_density: Threshold::Absolute(2),
        dist_interval: (2, 40),
        min_season: 1,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };
    config.epsilon += 1;
    let mut other_eps = Pipeline::builder()
        .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
        .mapping_factor(3)
        .thresholds(config)
        .into_streaming();
    let err = other_eps.restore_from(&mut &bytes[..]).unwrap_err();
    assert!(matches!(
        err,
        PipelineError::Persistence(freqstpfts::core::Error::SnapshotConfigMismatch {
            parameter: "epsilon",
            ..
        })
    ));
}

#[test]
fn recovery_with_mismatched_config_is_typed_under_injected_faults() {
    // The restore_with config check must hold even when the bytes arrive
    // through a faulty storage backend: a transient read fault is retried
    // away, and what surfaces is still the typed mismatch — not an I/O
    // error, and never a panic.
    let fs = FaultyFs::new();
    let snap = std::path::Path::new("mismatch/state.snap");
    let wal = std::path::Path::new("mismatch/state.wal");
    let series = sample_series(18);
    let mut writer = stream_builder().into_streaming();
    writer.set_storage(fs.clone());
    writer.attach_wal(wal).unwrap();
    writer.append(&chunk(&series, 0, 18)).unwrap();
    writer.snapshot_to(snap).unwrap();
    drop(writer);
    fs.crash(); // only fsync-committed state survives

    fs.transient_nth(failpoints::RECOVER_READ_SNAPSHOT, 1, 1);
    let mut mismatched = Pipeline::builder()
        .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
        .mapping_factor(3)
        .thresholds(StpmConfig {
            max_period: Threshold::Absolute(3),
            min_density: Threshold::Absolute(2),
            dist_interval: (2, 40),
            min_season: 1,
            max_pattern_len: 3, // shapes absorbed state: mismatch
            ..StpmConfig::default()
        })
        .into_streaming();
    mismatched.set_storage(fs.clone());
    mismatched.set_retry_policy(RetryPolicy::immediate(3));
    let err = mismatched.recover(Some(snap), wal).unwrap_err();
    assert!(
        matches!(
            err,
            PipelineError::Persistence(freqstpfts::core::Error::SnapshotConfigMismatch {
                parameter: "maxPatternLen",
                ..
            })
        ),
        "{err:?}"
    );
    // The retry really happened before the typed error surfaced.
    assert_eq!(mismatched.io_retries(), 1);

    // A matching pipeline recovers the same bytes without complaint.
    let mut matching = stream_builder().into_streaming();
    matching.set_storage(fs.clone());
    matching.recover(Some(snap), wal).unwrap();
    assert_eq!(matching.num_granules(), 6);
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn seasonal_threshold_changes_replay_trackers_on_restore() {
    // Restoring under relaxed seasonality thresholds is legal — the restored
    // state must equal a fresh run entirely under the new thresholds.
    let mut rng = SeededRng::seed_from_u64(4321);
    let spec = profile_spec(DatasetProfile::RenewableEnergy, &mut rng);
    let data = generate(&spec);
    let dseq = data.dseq().unwrap();
    let strict = StpmConfig {
        max_period: Threshold::Absolute(2),
        min_density: Threshold::Absolute(3),
        dist_interval: (3, 50),
        min_season: 2,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };
    let mut miner = StreamingMiner::new(&strict, dseq.registry()).unwrap();
    miner.append_batch(dseq.sequences()).unwrap();
    let bytes = snapshot_bytes(&mut miner);

    let relaxed = StpmConfig {
        max_period: Threshold::Absolute(4),
        min_density: Threshold::Absolute(2),
        dist_interval: (2, 70),
        min_season: 1,
        ..strict.clone()
    };
    let restored = StreamingMiner::restore_with(&relaxed, &mut &bytes[..]).unwrap();
    let report = restored.checkpoint().unwrap();
    let batch = StpmMiner::mine_sequences(&dseq, &relaxed).unwrap();
    assert_eq!(
        canonical(report.events(), report.patterns()),
        canonical(batch.events(), batch.patterns())
    );
}

#[test]
#[cfg_attr(miri, ignore)] // filesystem-heavy: real snapshot/WAL files
fn future_format_versions_are_rejected_with_the_version_error() {
    let series = sample_series(45);
    let mut original = stream_builder().into_streaming();
    original.append(&chunk(&series, 0, 45)).unwrap();
    let mut bytes = Vec::new();
    original.snapshot_to_writer(&mut bytes).unwrap();
    bytes[8..12].copy_from_slice(&2025u32.to_le_bytes());
    let mut target = stream_builder().into_streaming();
    assert!(matches!(
        target.restore_from(&mut &bytes[..]),
        Err(PipelineError::Persistence(
            freqstpfts::core::Error::SnapshotVersion { found: 2025, .. }
        ))
    ));
    // Same contract for the WAL.
    let mut wal = snapshot::wal_header().to_vec();
    wal[8..12].copy_from_slice(&2025u32.to_le_bytes());
    assert!(matches!(
        snapshot::wal_read(&wal),
        Err(freqstpfts::core::Error::SnapshotVersion { found: 2025, .. })
    ));
}
