//! Chaos harness: deterministic fault injection over the whole persistence
//! stack. A scripted streaming workload (appends interleaved with
//! snapshots) is run once fault-free, then re-run with a crash scheduled at
//! *every* operation of *every* registered failpoint. Each faulty run must
//! converge — crash, recover, resume — to a final snapshot byte-identical
//! to the fault-free run's, with zero acknowledged-granule loss (a batch
//! whose append returned `Ok` is never missing after recovery).
//!
//! All storage is the in-memory [`FaultyFs`], whose crash semantics mirror
//! a real kernel's: bytes become durable on `sync_all`, names become
//! durable on directory sync, and `crash()` discards everything volatile.
//! No real files are touched, so every run is exactly reproducible.

use freqstpfts::prelude::*;
use std::path::Path;

const SNAP: &str = "chaos/state.snap";
const WAL: &str = "chaos/state.wal";
const SPILL: &str = "chaos/miner.spill";
const TOTAL_SAMPLES: usize = 90;

/// The scripted workload: batch boundaries are multiples of the mapping
/// factor (3), so granule counts map back to sample positions exactly.
#[derive(Clone, Copy)]
enum Step {
    Append(usize, usize),
    Snapshot,
}

const SCRIPT: &[Step] = &[
    Step::Append(0, 18),
    Step::Append(18, 36),
    Step::Snapshot,
    Step::Append(36, 54),
    Step::Append(54, 72),
    Step::Snapshot,
    Step::Append(72, 90),
];

fn sample_series(samples: usize) -> Vec<TimeSeries> {
    let mut rng = freqstpfts::datagen::SeededRng::seed_from_u64(99);
    ["Cooker", "Dishes", "Heater"]
        .iter()
        .map(|name| {
            let values = (0..samples)
                .map(|i| {
                    let seasonal = (i / 6) % 3 == 0;
                    if seasonal || rng.next_below(8) == 0 {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            TimeSeries::new(*name, values)
        })
        .collect()
}

fn chunk(series: &[TimeSeries], from: usize, to: usize) -> Vec<TimeSeries> {
    series
        .iter()
        .map(|s| TimeSeries::new(s.name(), s.values()[from..to].to_vec()))
        .collect()
}

fn stream_builder() -> Pipeline {
    Pipeline::builder()
        .symbolizer(ThresholdSymbolizer::binary(0.5, "0", "1"))
        .mapping_factor(3)
        .thresholds(StpmConfig {
            max_period: Threshold::Absolute(3),
            min_density: Threshold::Absolute(2),
            dist_interval: (2, 40),
            min_season: 1,
            max_pattern_len: 2,
            ..StpmConfig::default()
        })
}

/// Boots a pipeline against `fs` and recovers until recovery itself
/// succeeds — a recovery that dies mid-flight is just another crash.
fn recover_fresh(
    fs: &FaultyFs,
    configure: &dyn Fn(&mut StreamingPipeline),
    crashes: &mut u32,
) -> StreamingPipeline {
    loop {
        assert!(*crashes < 32, "fault schedule never drained");
        let mut pipeline = stream_builder().into_streaming();
        pipeline.set_storage(fs.clone());
        configure(&mut pipeline);
        match pipeline.recover(Some(Path::new(SNAP)), Path::new(WAL)) {
            Ok(_) => return pipeline,
            Err(_) => {
                drop(pipeline);
                fs.crash();
                fs.clear_faults();
                *crashes += 1;
            }
        }
    }
}

/// Runs the scripted workload to completion over `fs`, crashing and
/// recovering on every surfaced error, then crashes one final time and
/// extracts the durable state. Returns the final snapshot bytes, the final
/// checkpoint report, and how many crashes it survived.
fn run_script_with(
    fs: &FaultyFs,
    series: &[TimeSeries],
    configure: &dyn Fn(&mut StreamingPipeline),
) -> (Vec<u8>, EngineReport, u32) {
    let mut crashes = 0u32;
    let mut acked_samples = 0usize;
    let mut pipeline = recover_fresh(fs, configure, &mut crashes);
    let mut i = 0;
    while i < SCRIPT.len() {
        let pos = pipeline.num_granules() as usize * 3;
        let result = match SCRIPT[i] {
            Step::Append(from, to) => {
                if to <= pos {
                    // Durable (and possibly unacknowledged) before the
                    // crash — replayed from the WAL, nothing to redo.
                    i += 1;
                    continue;
                }
                assert_eq!(pos, from, "recovered state must end on a batch boundary");
                pipeline.append(&chunk(series, from, to)).map(|_| ())
            }
            Step::Snapshot => {
                if pipeline.pending_granules() == 0 {
                    // The snapshot file became durable before the crash
                    // (recovery restored it), so redoing the step would
                    // fork the checkpoint-id history.
                    i += 1;
                    continue;
                }
                pipeline.snapshot_to(Path::new(SNAP))
            }
        };
        match result {
            Ok(()) => {
                if let Step::Append(_, to) = SCRIPT[i] {
                    acked_samples = to;
                }
                i += 1;
            }
            Err(_) => {
                drop(pipeline);
                fs.crash();
                fs.clear_faults();
                crashes += 1;
                pipeline = recover_fresh(fs, configure, &mut crashes);
                assert!(
                    pipeline.num_granules() as usize * 3 >= acked_samples,
                    "acknowledged granules lost after crash {crashes}"
                );
            }
        }
    }
    // Final crash: only fsync-committed state may count towards the result.
    drop(pipeline);
    fs.crash();
    fs.clear_faults();
    let mut survivor = recover_fresh(fs, configure, &mut crashes);
    assert_eq!(
        survivor.num_granules() as usize * 3,
        TOTAL_SAMPLES,
        "acknowledged granules lost at final recovery"
    );
    let bytes = loop {
        let mut bytes = Vec::new();
        match survivor.snapshot_to_writer(&mut bytes) {
            Ok(()) => break bytes,
            Err(_) => {
                drop(survivor);
                fs.crash();
                fs.clear_faults();
                crashes += 1;
                survivor = recover_fresh(fs, configure, &mut crashes);
            }
        }
    };
    let report = survivor.checkpoint().expect("final checkpoint mines");
    (bytes, report, crashes)
}

fn run_script(fs: &FaultyFs, series: &[TimeSeries]) -> (Vec<u8>, EngineReport, u32) {
    run_script_with(fs, series, &|_| {})
}

#[test]
#[cfg_attr(miri, ignore = "exhaustive failpoint sweep is too slow under miri")]
fn a_crash_at_every_failpoint_recovers_byte_identically() {
    let series = sample_series(TOTAL_SAMPLES);
    let baseline_fs = FaultyFs::with_seed(1);
    let (baseline_bytes, baseline_report, baseline_crashes) = run_script(&baseline_fs, &series);
    assert_eq!(baseline_crashes, 0, "the fault-free run must not crash");
    let baseline_ops: Vec<(&str, u64)> = failpoints::ALL
        .iter()
        .map(|fp| (*fp, baseline_fs.op_count(fp)))
        .collect();

    let mut total_crashes = 0u32;
    for &(fp, count) in &baseline_ops {
        for nth in 1..=count {
            let fs = FaultyFs::with_seed(1);
            fs.fail_nth(fp, nth);
            let (bytes, report, crashes) = run_script(&fs, &series);
            assert_eq!(
                bytes, baseline_bytes,
                "failpoint {fp} op #{nth}: final snapshot diverged from the fault-free run"
            );
            assert_eq!(
                report.events(),
                baseline_report.events(),
                "failpoint {fp} op #{nth}: recovered events diverged"
            );
            assert_eq!(
                report.patterns(),
                baseline_report.patterns(),
                "failpoint {fp} op #{nth}: recovered patterns diverged"
            );
            total_crashes += crashes;
        }
    }
    assert!(
        total_crashes > 0,
        "the sweep never actually crashed — the failpoints are not wired in"
    );
}

#[test]
#[cfg_attr(miri, ignore = "budget sweep mines repeatedly; too slow under miri")]
fn budget_constrained_runs_match_unconstrained_byte_for_byte() {
    let series = sample_series(TOTAL_SAMPLES);
    let fs_free = FaultyFs::with_seed(11);
    let (free_bytes, free_report, _) = run_script(&fs_free, &series);

    // A one-byte budget forces a spill after every append and a rehydrate
    // before the next — maximal churn through the cold path.
    let with_budget = |p: &mut StreamingPipeline| {
        p.set_memory_budget(MemoryBudget::bytes(1), SPILL);
    };
    let fs_budget = FaultyFs::with_seed(11);
    let (budget_bytes, budget_report, _) = run_script_with(&fs_budget, &series, &with_budget);
    assert!(
        fs_budget.op_count(failpoints::BUDGET_SPILL_WRITE) > 0,
        "the budget run never spilled"
    );
    assert!(
        fs_budget.op_count(failpoints::BUDGET_REHYDRATE_READ) > 0,
        "the budget run never rehydrated"
    );
    assert_eq!(
        budget_bytes, free_bytes,
        "budget-constrained snapshots must be byte-identical to unconstrained"
    );
    assert_eq!(budget_report.events(), free_report.events());
    assert_eq!(budget_report.patterns(), free_report.patterns());
}

#[test]
fn a_failed_spill_is_typed_and_does_not_lose_the_absorbed_batch() {
    let series = sample_series(54);
    let fs = FaultyFs::with_seed(13);
    let mut crashes = 0;
    let with_budget = |p: &mut StreamingPipeline| {
        p.set_memory_budget(MemoryBudget::bytes(1), SPILL);
    };
    let mut pipeline = recover_fresh(&fs, &with_budget, &mut crashes);

    // Spill failure: the append is absorbed and WAL-durable; only the
    // eviction failed, surfaced as the dedicated budget variant.
    fs.fail_nth(failpoints::BUDGET_SPILL_WRITE, 1);
    let err = pipeline.append(&chunk(&series, 0, 18)).unwrap_err();
    assert!(
        matches!(
            err,
            PipelineError::Persistence(freqstpfts::core::Error::BudgetExceeded { .. })
        ),
        "{err:?}"
    );
    assert_eq!(pipeline.num_granules(), 6, "the batch itself must survive");
    // The miner stayed live, and the next append spills successfully.
    pipeline.append(&chunk(&series, 18, 36)).unwrap();
    assert_eq!(pipeline.num_granules(), 12);

    // Rehydrate failure: the next append cannot reload the spilled miner —
    // typed error, then crash + recover rebuilds everything from the WAL.
    fs.fail_nth(
        failpoints::BUDGET_REHYDRATE_READ,
        fs.op_count(failpoints::BUDGET_REHYDRATE_READ) + 1,
    );
    let err = pipeline.append(&chunk(&series, 36, 54)).unwrap_err();
    assert!(matches!(err, PipelineError::Persistence(_)), "{err:?}");
    drop(pipeline);
    fs.crash();
    fs.clear_faults();
    let mut recovered = recover_fresh(&fs, &with_budget, &mut crashes);
    assert_eq!(recovered.num_granules(), 12, "acknowledged granules lost");
    recovered.append(&chunk(&series, 36, 54)).unwrap();
    assert_eq!(recovered.num_granules(), 18);
}

#[test]
fn a_torn_wal_tail_under_injected_faults_recovers_the_durable_prefix() {
    let fs = FaultyFs::with_seed(7);
    let series = sample_series(36);
    let mut crashes = 0;
    let mut writer = recover_fresh(&fs, &|_| {}, &mut crashes);
    writer.append(&chunk(&series, 0, 18)).unwrap();
    writer.append(&chunk(&series, 18, 36)).unwrap();
    drop(writer);

    // Rebuild the WAL with its tail record torn mid-payload, made durable
    // through the backend so it survives the crashes below.
    let wal_bytes = fs.peek(Path::new(WAL)).unwrap();
    let torn_path = Path::new("chaos/torn.wal");
    let mut torn = fs.create("test.setup", torn_path).unwrap();
    torn.write_all("test.setup", &wal_bytes[..wal_bytes.len() - 3])
        .unwrap();
    torn.sync_all("test.setup").unwrap();
    drop(torn);
    fs.sync_dir("test.setup", Path::new("chaos")).unwrap();

    // Attaching must truncate the torn tail; a fault injected into that
    // truncation surfaces as a typed error, never a panic.
    fs.fail_nth(failpoints::WAL_TRUNCATE_TAIL, 1);
    let mut victim = stream_builder().into_streaming();
    victim.set_storage(fs.clone());
    let err = victim.recover(None, torn_path).unwrap_err();
    assert!(matches!(err, PipelineError::Persistence(_)), "{err:?}");
    drop(victim);
    fs.crash();
    fs.clear_faults();

    // With the fault cleared, recovery drops the torn record and replays
    // exactly the durable prefix.
    let mut survivor = stream_builder().into_streaming();
    survivor.set_storage(fs.clone());
    let report = survivor.recover(None, torn_path).unwrap();
    assert!(!report.wal_was_clean);
    assert_eq!(report.replayed_records, 1);
    assert_eq!(survivor.num_granules(), 6);
    // The truncated log accepts new appends where the tear was.
    survivor.append(&chunk(&series, 18, 36)).unwrap();
    assert_eq!(survivor.num_granules(), 12);
}

#[test]
fn a_lying_fsync_is_detected_as_acknowledged_granule_loss() {
    // Negative control for the harness itself: if the storage *lies* about
    // durability, acknowledged granules really are lost across a crash —
    // which is exactly the condition the sweep asserts never happens with
    // an honest fsync.
    let fs = FaultyFs::with_seed(3);
    let series = sample_series(36);
    let mut crashes = 0;
    let mut pipeline = recover_fresh(&fs, &|_| {}, &mut crashes);
    pipeline.append(&chunk(&series, 0, 18)).unwrap();
    fs.lie_on_sync_nth(failpoints::WAL_APPEND_SYNC, 2);
    pipeline.append(&chunk(&series, 18, 36)).unwrap();
    let acked = pipeline.num_granules();
    assert_eq!(acked, 12);
    drop(pipeline);
    fs.crash();
    fs.clear_faults();
    let mut recovered = stream_builder().into_streaming();
    recovered.set_storage(fs.clone());
    recovered
        .recover(Some(Path::new(SNAP)), Path::new(WAL))
        .unwrap();
    assert!(
        recovered.num_granules() < acked,
        "a lying fsync must be observable as loss"
    );
    assert_eq!(recovered.num_granules(), 6);
}

#[test]
fn transient_faults_are_retried_and_surface_in_retry_counters() {
    let fs = FaultyFs::with_seed(5);
    let series = sample_series(18);
    let mut crashes = 0;
    let immediate = |p: &mut StreamingPipeline| {
        p.set_retry_policy(RetryPolicy::immediate(4));
    };
    let mut pipeline = recover_fresh(&fs, &immediate, &mut crashes);

    // Two consecutive EAGAIN-style failures on the WAL append path: the
    // bounded retry absorbs both and the counters record them.
    fs.transient_nth(failpoints::WAL_APPEND, 1, 2);
    pipeline.append(&chunk(&series, 0, 18)).unwrap();
    assert_eq!(pipeline.io_retries(), 2);
    assert_eq!(pipeline.checkpoint_meta().io_retries, 2);

    // A transient snapshot-write failure is retried the same way.
    fs.transient_nth(
        failpoints::SNAPSHOT_WRITE,
        fs.op_count(failpoints::SNAPSHOT_WRITE) + 1,
        1,
    );
    pipeline.snapshot_to(Path::new(SNAP)).unwrap();
    assert_eq!(pipeline.io_retries(), 3);
    drop(pipeline);

    // Recovery counts its own retries in the report it returns.
    fs.crash();
    fs.clear_faults();
    fs.transient_nth(failpoints::RECOVER_READ_WAL, 1, 1);
    let mut recovered = stream_builder().into_streaming();
    recovered.set_storage(fs.clone());
    recovered.set_retry_policy(RetryPolicy::immediate(4));
    let report = recovered
        .recover(Some(Path::new(SNAP)), Path::new(WAL))
        .unwrap();
    assert_eq!(report.io_retries, 1);
    assert_eq!(recovered.io_retries(), 1);

    // With retries disabled, the same transient fault is surfaced raw.
    fs.transient_nth(
        failpoints::WAL_APPEND,
        fs.op_count(failpoints::WAL_APPEND) + 1,
        1,
    );
    recovered.set_retry_policy(RetryPolicy::none());
    let err = recovered.append(&chunk(&series, 0, 18)).unwrap_err();
    assert!(matches!(err, PipelineError::Persistence(_)), "{err:?}");
}

#[test]
fn a_failed_then_retried_snapshot_leaves_exactly_one_file() {
    let fs = FaultyFs::with_seed(9);
    let series = sample_series(18);
    let mut crashes = 0;
    let mut pipeline = recover_fresh(&fs, &|_| {}, &mut crashes);
    pipeline.append(&chunk(&series, 0, 18)).unwrap();

    fs.fail_nth(failpoints::SNAPSHOT_RENAME, 1);
    let err = pipeline.snapshot_to(Path::new(SNAP)).unwrap_err();
    assert!(matches!(err, PipelineError::Persistence(_)), "{err:?}");
    // The error path must remove the tmp sibling: a retry loop around a
    // failing snapshot may not accumulate orphan files.
    assert_eq!(
        fs.live_paths(),
        vec![std::path::PathBuf::from(WAL)],
        "the failed snapshot left debris behind"
    );

    fs.clear_faults();
    pipeline.snapshot_to(Path::new(SNAP)).unwrap();
    assert_eq!(
        fs.live_paths(),
        vec![
            std::path::PathBuf::from(SNAP),
            std::path::PathBuf::from(WAL)
        ],
        "exactly the snapshot and the WAL must remain"
    );
    assert_eq!(pipeline.pending_granules(), 0);
}

#[test]
#[cfg_attr(miri, ignore = "runs several full scripted workloads")]
fn the_chaos_suite_exercises_every_registered_failpoint() {
    // The sweep only proves recovery at failpoints the workload reaches;
    // this meta-test proves the suite's scenarios reach *all* of them, so a
    // newly registered failpoint cannot silently escape chaos coverage.
    let series = sample_series(TOTAL_SAMPLES);
    let mut covered: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    let mut absorb = |fs: &FaultyFs| {
        covered.extend(
            failpoints::ALL
                .iter()
                .copied()
                .filter(|fp| fs.op_count(fp) > 0),
        );
    };

    // Scripted run with a failing rename: exercises the tmp-removal path
    // on top of the whole happy path.
    let fs = FaultyFs::with_seed(1);
    fs.fail_nth(failpoints::SNAPSHOT_RENAME, 1);
    run_script(&fs, &series);
    absorb(&fs);

    // Budget-constrained run: exercises spill and rehydrate.
    let fs = FaultyFs::with_seed(1);
    run_script_with(&fs, &series, &|p| {
        p.set_memory_budget(MemoryBudget::bytes(1), SPILL);
    });
    absorb(&fs);

    // Torn-tail attach: exercises the WAL tail truncation.
    let fs = FaultyFs::with_seed(1);
    let mut crashes = 0;
    let mut writer = recover_fresh(&fs, &|_| {}, &mut crashes);
    writer.append(&chunk(&series, 0, 18)).unwrap();
    drop(writer);
    let wal_bytes = fs.peek(Path::new(WAL)).unwrap();
    let torn_path = Path::new("chaos/torn.wal");
    let mut torn = fs.create("test.setup", torn_path).unwrap();
    torn.write_all("test.setup", &wal_bytes[..wal_bytes.len() - 3])
        .unwrap();
    torn.sync_all("test.setup").unwrap();
    drop(torn);
    fs.sync_dir("test.setup", Path::new("chaos")).unwrap();
    let mut survivor = stream_builder().into_streaming();
    survivor.set_storage(fs.clone());
    survivor.recover(None, torn_path).unwrap();
    absorb(&fs);

    let all: std::collections::BTreeSet<&str> = failpoints::ALL.iter().copied().collect();
    let missed: Vec<&str> = all.difference(&covered).copied().collect();
    assert!(
        missed.is_empty(),
        "failpoints never exercised by any chaos scenario: {missed:?}"
    );
}
