//! Parallel mining must be indistinguishable from sequential mining: the
//! sharded level miners partition the candidate space and merge the
//! per-shard results in shard order, so for every thread count the engines
//! must produce *identical* reports — same patterns, same order, same
//! supports — on the paper's running example and on seeded random databases.

use freqstpfts::prelude::*;

/// The paper's running example (Table II / Table IV): five appliance series
/// at 5-minute granularity, mapped to 14 granules of 15 minutes.
fn paper_dsyb() -> SymbolicDatabase {
    let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
    let rows: &[(&str, &str)] = &[
        ("C", "110100110000000000111111000000100110000110"),
        ("D", "100100110110000000111111000000100100110110"),
        ("F", "001011001001111000000000111111001001001001"),
        ("M", "111100111110111111000111111111111000111000"),
        ("N", "110111111110111111000000111111111111111000"),
    ];
    let series: Vec<SymbolicSeries> = rows
        .iter()
        .map(|(name, bits)| {
            let labels: Vec<&str> = bits
                .chars()
                .map(|c| if c == '1' { "1" } else { "0" })
                .collect();
            SymbolicSeries::from_labels(name, &labels, alphabet.clone()).unwrap()
        })
        .collect();
    SymbolicDatabase::new(series).unwrap()
}

fn paper_config() -> StpmConfig {
    StpmConfig {
        max_period: Threshold::Absolute(2),
        min_density: Threshold::Absolute(2),
        dist_interval: (3, 10),
        min_season: 2,
        max_pattern_len: 3,
        ..StpmConfig::default()
    }
}

fn mine_exact(dsyb: &SymbolicDatabase, config: &StpmConfig, threads: usize) -> MiningReport {
    let dseq = dsyb.to_sequence_database(3).unwrap();
    let input = MiningInput::new(dsyb, &dseq, 3);
    StpmMiner
        .mine_with(&input, &config.clone().with_threads(threads))
        .unwrap()
        .into_report()
}

/// Asserts full report identity: events, patterns (order included), supports
/// and per-level statistics.
fn assert_identical(sequential: &MiningReport, parallel: &MiningReport, context: &str) {
    assert_eq!(
        parallel.events(),
        sequential.events(),
        "events diverged: {context}"
    );
    assert_eq!(
        parallel.patterns(),
        sequential.patterns(),
        "patterns diverged: {context}"
    );
    assert_eq!(
        parallel.stats().levels,
        sequential.stats().levels,
        "level stats diverged: {context}"
    );
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: multi-thread mining runs
fn parallel_equals_sequential_on_the_paper_example() {
    let dsyb = paper_dsyb();
    let config = paper_config();
    let sequential = mine_exact(&dsyb, &config, 1);
    assert!(sequential.total_patterns() > 0, "example must yield output");
    for threads in [2, 3, 4, 8] {
        let parallel = mine_exact(&dsyb, &config, threads);
        assert_identical(&sequential, &parallel, &format!("{threads} threads"));
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: multi-thread mining runs
fn parallel_equals_sequential_on_seeded_random_databases() {
    for seed in [7, 42, 1234] {
        let spec = DatasetSpec::real(DatasetProfile::RenewableEnergy)
            .scaled_to(6, 240)
            .with_seed(seed);
        let data = generate(&spec);
        let dseq = data.dseq().expect("generated data maps to sequences");
        let input = MiningInput::new(&data.dsyb, &dseq, data.mapping_factor);
        let config = StpmConfig {
            max_period: Threshold::Fraction(0.02),
            min_density: Threshold::Fraction(0.01),
            dist_interval: DatasetProfile::RenewableEnergy.dist_interval(),
            min_season: 2,
            max_pattern_len: 3,
            ..StpmConfig::default()
        };
        let sequential = StpmMiner.mine_with(&input, &config).unwrap();
        for threads in [2, 4] {
            let parallel = StpmMiner
                .mine_with(&input, &config.clone().with_threads(threads))
                .unwrap();
            assert_eq!(
                parallel.pattern_set(),
                sequential.pattern_set(),
                "pattern sets diverged with {threads} threads on seed {seed}"
            );
            assert_identical(
                sequential.report(),
                parallel.report(),
                &format!("seed {seed}, {threads} threads"),
            );
        }
    }
}

#[test]
#[cfg_attr(miri, ignore)] // interpreter-slow: multi-thread mining runs
fn parallel_engines_agree_through_the_pipeline() {
    // The facade's threads knob reaches all engines that mine levels; the
    // pattern sets must match the sequential run for each of them.
    let dsyb = paper_dsyb();
    for engine in [Engine::Exact, Engine::Approximate { mu: None }] {
        let run = |threads: usize| {
            Pipeline::builder()
                .mapping_factor(3)
                .engine(engine)
                .thresholds(paper_config())
                .threads(threads)
                .run_symbolic(&dsyb)
                .unwrap()
                .report
        };
        let sequential = run(1);
        let parallel = run(4);
        assert_eq!(parallel.pattern_set(), sequential.pattern_set());
        assert_eq!(parallel.patterns(), sequential.patterns());
    }
}
