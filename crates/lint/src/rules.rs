//! The rule engine: project-invariant checks over the token stream.
//!
//! Six named rules are enforced (see the README "Correctness tooling"
//! section for the policy):
//!
//! * `hot-path-alloc` — no allocating constructs inside functions marked
//!   `// lint: hot-path`.
//! * `no-panic-decode` — no panicking constructs or raw indexing inside the
//!   decode functions of `snapshot.rs`-shaped files.
//! * `determinism` — no direct iteration over hash maps/sets in
//!   output-producing modules, and no wall-clock reads in wire-format code.
//! * `wire-format-freeze` — the snapshot wire-format constants must match
//!   the committed `snapshot_format.lock`; tag changes require a version
//!   bump, version bumps require a lock refresh.
//! * `durable-io` — inside functions marked `// lint: durable`, every
//!   write must reach an `sync_all`/`sync_data` before the file is renamed
//!   into place or truncated, and before a `checkpoint` acknowledges the
//!   data as durable — or, in the service tier, before a `.send(…)` /
//!   `.respond(…)` acknowledges it to a client.
//! * `unsafe-scope` — the `unsafe` keyword is only permitted under
//!   `crates/core/src/simd/` (the vectorized kernel twins, each with a
//!   property-tested scalar reference). Everywhere else the pre-SIMD
//!   `forbid(unsafe_code)` guarantee is enforced both by this rule and by
//!   the workspace-level `deny(unsafe_code)` rustc lint.
//!
//! Any diagnostic can be suppressed with a justified
//! `// lint:allow(rule): <why>` comment on the offending line or the line
//! above it. Suppressions without a justification, and suppressions that
//! never fire, are themselves errors — so the allow-list can only shrink.
//!
//! The engine is lexical by design (the workspace is dependency-free, so
//! there is no `syn` to build an AST with). Where a check is a heuristic —
//! e.g. hash-map identifiers are recognised from their declared types in
//! the same file — the heuristic errs towards flagging, and the suppression
//! mechanism documents the sites that are deliberate.

use crate::lexer::{lex, Comment, LexOutput, Token, TokenKind};
use std::collections::BTreeMap;
use std::fmt;

/// Base names of the modules whose hot paths carry `// lint: hot-path`
/// markers. The `hot-path-alloc` rule fires in any marked function, but a
/// marker outside these files is reported so the list stays deliberate.
const HOT_PATH_FILES: &[&str] = &[
    "hlh.rs",
    "support.rs",
    "season.rs",
    "miner.rs",
    "streaming.rs",
    // The SIMD kernel twins: crates/core/src/simd/{scalar,x86}.rs.
    "scalar.rs",
    "x86.rs",
];

/// Base names of the wire-format modules: `no-panic-decode` and the
/// wall-clock half of `determinism` apply here. `protocol.rs` is the
/// service tier's request/response codec — it decodes untrusted network
/// bytes, so the same panic-free contract applies.
const WIRE_FORMAT_FILES: &[&str] = &["snapshot.rs", "protocol.rs"];

/// Base names of output-producing modules: anything iterated here can leak
/// hash-map ordering into mining results, so `determinism` applies.
const OUTPUT_MODULE_FILES: &[&str] = &[
    "hlh.rs",
    "season.rs",
    "miner.rs",
    "streaming.rs",
    "snapshot.rs",
    "report.rs",
];

/// Base names of the modules whose durable-write paths carry
/// `// lint: durable` markers: the facade persistence layer in
/// `src/lib.rs` and the service tier's tenant/flush paths
/// (`crates/service/src/{tenant,service}.rs`). As with hot-path markers,
/// a marker elsewhere is reported so the list stays deliberate.
const DURABLE_FILES: &[&str] = &["lib.rs", "tenant.rs", "service.rs"];

/// The one path fragment under which the `unsafe` keyword is sanctioned:
/// the SIMD kernel module, where every intrinsic path has a property-tested
/// scalar twin and no `unsafe` escapes the module boundary (see the module
/// doc of `stpm_core::simd`). The `unsafe-scope` rule flags `unsafe`
/// anywhere else — a full-path check, not a base-name one, so a stray
/// `x86.rs` elsewhere in the tree gets no exemption.
const UNSAFE_SCOPE_DIR: &str = "crates/core/src/simd/";

/// Function-name shapes that make a `snapshot.rs` function a *decode*
/// function (it consumes untrusted bytes and must return typed errors).
const DECODE_PREFIXES: &[&str] = &["decode", "read", "parse", "take"];
const DECODE_EXACT: &[&str] = &[
    "wal_read",
    "restore",
    "restore_with",
    "finish",
    "capped",
    "fail",
    "effective_config",
];

/// Method names whose receiver allocates on the hot path.
const ALLOC_METHODS: &[&str] = &[
    "collect",
    "to_vec",
    "clone",
    "cloned",
    "to_owned",
    "to_string",
];
/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["format", "vec"];
/// Macros that panic.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];
/// Hash-map/-set iteration methods that observe nondeterministic order.
const MAP_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// One finding, pointing at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path the finding was produced for (as given to the engine).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule identifier (e.g. `hot-path-alloc`).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A parsed `// lint:allow(rule, …): justification` comment.
#[derive(Debug)]
struct Suppression {
    line: u32,
    rules: Vec<String>,
    justified: bool,
    used: bool,
}

/// A parsed `// lint: hot-path` or `// lint: durable` marker awaiting its
/// function.
#[derive(Debug)]
struct HotMarker {
    line: u32,
    consumed: bool,
}

/// Context for one function body found by the brace tracker.
#[derive(Debug, Clone)]
struct FnFrame {
    name: String,
    hot: bool,
    decode: bool,
    durable: bool,
    /// `durable-io` write-state: `true` between a `write`/`write_all` call
    /// and the `sync_all`/`sync_data` that commits it.
    dirty: bool,
}

/// What the brace stack holds: a function body or an anonymous block
/// (closures, match arms, loop bodies keep the enclosing function's frame).
#[derive(Debug, Clone)]
enum Scope {
    Function(FnFrame),
    Block,
}

/// Lints one source file. `file` is only used for reporting and for the
/// base-name rule scoping; `source` is the file contents.
#[must_use]
pub fn lint_source(file: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    Engine::new(file, &lexed).run()
}

fn base_name(file: &str) -> &str {
    file.rsplit(['/', '\\']).next().unwrap_or(file)
}

struct Engine<'a> {
    file: &'a str,
    base: &'a str,
    tokens: &'a [Token],
    comments: &'a [Comment],
    suppressions: Vec<Suppression>,
    hot_markers: Vec<HotMarker>,
    durable_markers: Vec<HotMarker>,
    skipped: Vec<(usize, usize)>,
    map_idents: Vec<String>,
    diags: Vec<Diagnostic>,
}

impl<'a> Engine<'a> {
    fn new(file: &'a str, lexed: &'a LexOutput) -> Self {
        Engine {
            file,
            base: base_name(file),
            tokens: &lexed.tokens,
            comments: &lexed.comments,
            suppressions: Vec::new(),
            hot_markers: Vec::new(),
            durable_markers: Vec::new(),
            skipped: Vec::new(),
            map_idents: Vec::new(),
            diags: Vec::new(),
        }
    }

    fn run(mut self) -> Vec<Diagnostic> {
        self.parse_comments();
        self.find_test_regions();
        self.collect_map_idents();
        self.walk();
        self.finish_markers_and_suppressions();
        self.apply_suppressions()
    }

    fn emit(&mut self, token: &Token, rule: &'static str, message: String) {
        self.diags.push(Diagnostic {
            file: self.file.to_string(),
            line: token.line,
            col: token.col,
            rule,
            message,
        });
    }

    // ---- comment directives -------------------------------------------

    fn parse_comments(&mut self) {
        for c in self.comments {
            let text = c.text.trim();
            if let Some(rest) = text.strip_prefix("lint:allow(") {
                let Some(close) = rest.find(')') else {
                    self.diags.push(Diagnostic {
                        file: self.file.to_string(),
                        line: c.line,
                        col: 1,
                        rule: "suppression-syntax",
                        message: "malformed `lint:allow` — missing `)`".into(),
                    });
                    continue;
                };
                let rules: Vec<String> = rest[..close]
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                let tail = rest[close + 1..].trim_start();
                let justified = tail.strip_prefix(':').is_some_and(|j| !j.trim().is_empty());
                if !justified {
                    self.diags.push(Diagnostic {
                        file: self.file.to_string(),
                        line: c.line,
                        col: 1,
                        rule: "suppression-syntax",
                        message: "`lint:allow` requires a justification: \
                                  `// lint:allow(rule): <why this is sound>`"
                            .into(),
                    });
                }
                self.suppressions.push(Suppression {
                    line: c.line,
                    rules,
                    justified,
                    used: false,
                });
            } else if text == "lint: hot-path" {
                self.hot_markers.push(HotMarker {
                    line: c.line,
                    consumed: false,
                });
                if !HOT_PATH_FILES.contains(&self.base) && !self.base.starts_with("fixture_") {
                    self.diags.push(Diagnostic {
                        file: self.file.to_string(),
                        line: c.line,
                        col: 1,
                        rule: "hot-path-alloc",
                        message: format!(
                            "`lint: hot-path` marker in `{}`, which is not a registered \
                             hot-path module — extend HOT_PATH_FILES in stpm-lint deliberately",
                            self.base
                        ),
                    });
                }
            } else if text == "lint: durable" {
                self.durable_markers.push(HotMarker {
                    line: c.line,
                    consumed: false,
                });
                if !DURABLE_FILES.contains(&self.base) && !self.base.starts_with("fixture_") {
                    self.diags.push(Diagnostic {
                        file: self.file.to_string(),
                        line: c.line,
                        col: 1,
                        rule: "durable-io",
                        message: format!(
                            "`lint: durable` marker in `{}`, which is not a registered \
                             durable-write module — extend DURABLE_FILES in stpm-lint \
                             deliberately",
                            self.base
                        ),
                    });
                }
            } else if text.starts_with("lint:") || text.starts_with("lint ") {
                self.diags.push(Diagnostic {
                    file: self.file.to_string(),
                    line: c.line,
                    col: 1,
                    rule: "suppression-syntax",
                    message: format!("unrecognised lint directive: `//{}`", c.text),
                });
            }
        }
    }

    // ---- #[cfg(test)] regions -----------------------------------------

    /// Records token ranges covered by `#[cfg(test)]` items so test code
    /// (which unwraps and indexes freely, on purpose) is not linted.
    fn find_test_regions(&mut self) {
        let t = self.tokens;
        let mut i = 0;
        while i + 6 < t.len() {
            let is_cfg_test = t[i].is_punct('#')
                && t[i + 1].is_punct('[')
                && t[i + 2].is_ident("cfg")
                && t[i + 3].is_punct('(')
                && t[i + 4].is_ident("test")
                && t[i + 5].is_punct(')')
                && t[i + 6].is_punct(']');
            if !is_cfg_test {
                i += 1;
                continue;
            }
            let mut j = i + 7;
            // Skip any further attributes on the same item.
            while j < t.len() && t[j].is_punct('#') {
                let mut depth = 0usize;
                j += 1; // past `#`
                while j < t.len() {
                    if t[j].is_punct('[') {
                        depth += 1;
                    } else if t[j].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // Skip to the end of the item: the matching `}` of its first
            // top-level `{`, or a terminating `;` (e.g. `use` under cfg).
            let mut depth = 0usize;
            while j < t.len() {
                if t[j].is_punct('{') {
                    depth += 1;
                } else if t[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t[j].is_punct(';') && depth == 0 {
                    break;
                }
                j += 1;
            }
            self.skipped.push((i, j));
            i = j + 1;
        }
    }

    fn in_skipped(&self, idx: usize) -> bool {
        self.skipped.iter().any(|&(s, e)| idx >= s && idx <= e)
    }

    // ---- hash-map identifier collection -------------------------------

    /// Collects identifiers declared (field or binding) with a hash-map or
    /// hash-set type in this file. Purely lexical: looks for
    /// `name : … HashMap <` / `name = FxHashMap :: default` shapes.
    fn collect_map_idents(&mut self) {
        let t = self.tokens;
        for (i, tok) in t.iter().enumerate() {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let is_map_type = matches!(
                tok.text.as_str(),
                "HashMap" | "HashSet" | "FxHashMap" | "FxHashSet"
            );
            if !is_map_type {
                continue;
            }
            // Walk backwards over a path (`std :: collections ::` etc.).
            let mut j = i;
            while j >= 2 && t[j - 1].is_punct(':') && t[j - 2].is_punct(':') {
                j -= 3; // skip `ident ::`
            }
            // Skip reference/mutability sigils so `m: &FxHashMap<…>` params
            // register `m` as a map identifier too.
            while j >= 1
                && (t[j - 1].is_punct('&')
                    || t[j - 1].is_ident("mut")
                    || t[j - 1].kind == TokenKind::Lifetime)
            {
                j -= 1;
            }
            if j == 0 {
                continue;
            }
            // `name : Path` (field or typed binding) …
            if t[j - 1].is_punct(':') && j >= 2 && t[j - 2].kind == TokenKind::Ident {
                self.map_idents.push(t[j - 2].text.clone());
            }
            // … or `let [mut] name = Path::default()`.
            if t[j - 1].is_punct('=') && j >= 2 && t[j - 2].kind == TokenKind::Ident {
                self.map_idents.push(t[j - 2].text.clone());
            }
        }
        self.map_idents.sort();
        self.map_idents.dedup();
    }

    // ---- main walk ----------------------------------------------------

    fn walk(&mut self) {
        let t = self.tokens;
        let wire_file = WIRE_FORMAT_FILES.contains(&self.base);
        let output_file = OUTPUT_MODULE_FILES.contains(&self.base);
        let unsafe_sanctioned = self.file.replace('\\', "/").contains(UNSAFE_SCOPE_DIR);

        let mut stack: Vec<Scope> = Vec::new();
        let mut pending_fn: Option<FnFrame> = None;
        // Bracket depth inside a pending `fn` signature, so the `;` of an
        // array type in the parameter list (`[u8; 4]`) is not mistaken for
        // the end of a bodyless trait-method declaration.
        let mut sig_depth = 0usize;

        for i in 0..t.len() {
            if self.in_skipped(i) {
                continue;
            }
            let tok = &t[i];

            // --- function tracking ---
            if tok.is_ident("fn") && i + 1 < t.len() && t[i + 1].kind == TokenKind::Ident {
                let name = t[i + 1].text.clone();
                let hot = self.take_hot_marker(tok.line);
                let durable = self.take_durable_marker(tok.line);
                let decode = wire_file && Self::is_decode_fn(&name);
                pending_fn = Some(FnFrame {
                    name,
                    hot,
                    decode,
                    durable,
                    dirty: false,
                });
                sig_depth = 0;
            } else if tok.is_punct('{') {
                match pending_fn.take() {
                    Some(frame) => stack.push(Scope::Function(frame)),
                    None => stack.push(Scope::Block),
                }
            } else if tok.is_punct('}') {
                stack.pop();
            } else if pending_fn.is_some() {
                if tok.is_punct('(') || tok.is_punct('[') {
                    sig_depth += 1;
                } else if tok.is_punct(')') || tok.is_punct(']') {
                    sig_depth = sig_depth.saturating_sub(1);
                } else if tok.is_punct(';') && sig_depth == 0 {
                    // A trait-method declaration ends without a body.
                    pending_fn = None;
                }
            }

            let frame = stack.iter().rev().find_map(|s| match s {
                Scope::Function(f) => Some(f),
                Scope::Block => None,
            });

            // --- unsafe-scope: `unsafe` only under crates/core/src/simd/ ---
            if !unsafe_sanctioned && tok.is_ident("unsafe") {
                self.emit(
                    &t[i],
                    "unsafe-scope",
                    format!(
                        "`unsafe` outside `{UNSAFE_SCOPE_DIR}` — vectorized kernel twins \
                         are the only sanctioned unsafe code; add a scalar-twinned kernel \
                         there instead of widening the unsafe surface"
                    ),
                );
            }

            // --- hot-path-alloc ---
            if frame.is_some_and(|f| f.hot) {
                self.check_hot_alloc(i);
            }

            // --- no-panic-decode ---
            if let Some(f) = frame {
                if f.decode {
                    let fn_name = f.name.clone();
                    self.check_panic_free(i, &fn_name);
                }
            }

            // --- determinism: map iteration in output modules ---
            if output_file && frame.is_some() {
                self.check_map_iteration(i);
            }

            // --- durable-io: fsync-before-publish in marked functions ---
            self.check_durable_io(i, &mut stack);

            // --- determinism: wall clock in wire-format code ---
            if wire_file
                && tok.kind == TokenKind::Ident
                && (tok.text == "Instant" || tok.text == "SystemTime")
            {
                let text = tok.text.clone();
                self.emit(
                    &t[i],
                    "determinism",
                    format!(
                        "`{text}` in wire-format code — snapshot/WAL bytes must not \
                         depend on wall-clock reads"
                    ),
                );
            }
        }
    }

    fn take_hot_marker(&mut self, fn_line: u32) -> bool {
        for m in &mut self.hot_markers {
            if !m.consumed && m.line < fn_line {
                m.consumed = true;
                return true;
            }
        }
        false
    }

    fn take_durable_marker(&mut self, fn_line: u32) -> bool {
        for m in &mut self.durable_markers {
            if !m.consumed && m.line < fn_line {
                m.consumed = true;
                return true;
            }
        }
        false
    }

    /// The `durable-io` state machine, applied to the innermost enclosing
    /// `// lint: durable` function (closures and blocks inherit it, matching
    /// how retry closures wrap the actual I/O). A `write`/`write_all` marks
    /// the frame dirty; `sync_all`/`sync_data` commits it; while dirty, a
    /// `rename` (publish), `set_len` (truncate), `checkpoint`
    /// (acknowledgment) or `send`/`respond` (client acknowledgment in the
    /// service tier) is flagged. The walk is lexical, so branch-local
    /// syncs satisfy later branches — the rule is a tripwire for reordered
    /// I/O, not a path-sensitive prover; suppress with a justification where
    /// control flow makes a lexically-dirty publish sound.
    fn check_durable_io(&mut self, i: usize, stack: &mut [Scope]) {
        let t = self.tokens;
        let tok = &t[i];
        if tok.kind != TokenKind::Ident || !t.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            return;
        }
        let Some(frame) = stack.iter_mut().rev().find_map(|s| match s {
            Scope::Function(f) if f.durable => Some(f),
            _ => None,
        }) else {
            return;
        };
        let method = i >= 1 && t[i - 1].is_punct('.');
        match tok.text.as_str() {
            "write" | "write_all" if method => frame.dirty = true,
            "sync_all" | "sync_data" if method => frame.dirty = false,
            "rename" if frame.dirty => {
                self.emit(
                    tok,
                    "durable-io",
                    "`rename` publishes bytes that were never synced — a `lint: durable` \
                     function must `sync_all` every write before renaming the file into place"
                        .into(),
                );
            }
            "set_len" if method && frame.dirty => {
                self.emit(
                    tok,
                    "durable-io",
                    "`set_len` truncates over an unsynced write — a `lint: durable` function \
                     must `sync_all` every write before truncating"
                        .into(),
                );
            }
            "checkpoint" if method && frame.dirty => {
                self.emit(
                    tok,
                    "durable-io",
                    "`checkpoint` acknowledges granules whose write-ahead-log append was \
                     never synced — a `lint: durable` function must `sync_all` the WAL \
                     before acknowledging the batch"
                        .into(),
                );
            }
            "send" | "respond" if method && frame.dirty => {
                let verb = tok.text.clone();
                self.emit(
                    tok,
                    "durable-io",
                    format!(
                        "`.{verb}(…)` acknowledges an append to the client over a write \
                         that was never synced — a `lint: durable` function must \
                         `sync_all` before the acknowledgment leaves the process"
                    ),
                );
            }
            _ => {}
        }
    }

    fn is_decode_fn(name: &str) -> bool {
        DECODE_EXACT.contains(&name)
            || DECODE_PREFIXES.iter().any(|p| {
                name.starts_with(p) && (name.len() == p.len() || name.as_bytes()[p.len()] == b'_')
            })
    }

    fn check_hot_alloc(&mut self, i: usize) {
        let t = self.tokens;
        let tok = &t[i];
        if tok.kind != TokenKind::Ident {
            return;
        }
        let next = t.get(i + 1);
        let next2 = t.get(i + 2);
        let next3 = t.get(i + 3);
        // `Vec::new`, `Vec::with_capacity`, `Box::new`, `String::new`…
        if matches!(
            tok.text.as_str(),
            "Vec" | "Box" | "String" | "BTreeMap" | "HashMap" | "FxHashMap"
        ) && next.is_some_and(|n| n.is_punct(':'))
            && next2.is_some_and(|n| n.is_punct(':'))
        {
            if let Some(m) = next3 {
                if matches!(
                    m.text.as_str(),
                    "new" | "with_capacity" | "from" | "default"
                ) {
                    let (ty, method) = (tok.text.clone(), m.text.clone());
                    self.emit(
                        tok,
                        "hot-path-alloc",
                        format!("`{ty}::{method}` allocates inside a `lint: hot-path` function"),
                    );
                    return;
                }
            }
        }
        // allocating macros: `format!`, `vec!`
        if ALLOC_MACROS.contains(&tok.text.as_str()) && next.is_some_and(|n| n.is_punct('!')) {
            let name = tok.text.clone();
            self.emit(
                tok,
                "hot-path-alloc",
                format!("`{name}!` allocates inside a `lint: hot-path` function"),
            );
            return;
        }
        // allocating methods: `.collect()`, `.to_vec()`, `.clone()`…
        if ALLOC_METHODS.contains(&tok.text.as_str())
            && i > 0
            && t[i - 1].is_punct('.')
            && next.is_some_and(|n| n.is_punct('('))
        {
            let name = tok.text.clone();
            self.emit(
                tok,
                "hot-path-alloc",
                format!("`.{name}()` allocates inside a `lint: hot-path` function"),
            );
        }
    }

    fn check_panic_free(&mut self, i: usize, fn_name: &str) {
        let t = self.tokens;
        let tok = &t[i];
        let next = t.get(i + 1);
        if tok.kind == TokenKind::Ident {
            // `.unwrap()` / `.expect(…)`
            if matches!(tok.text.as_str(), "unwrap" | "expect")
                && i > 0
                && t[i - 1].is_punct('.')
                && next.is_some_and(|n| n.is_punct('('))
            {
                let name = tok.text.clone();
                self.emit(
                    tok,
                    "no-panic-decode",
                    format!(
                        "`.{name}()` in decode function `{fn_name}` — corrupt input must \
                         surface as a typed `Error::Snapshot*`, not a panic"
                    ),
                );
                return;
            }
            // panicking macros
            if PANIC_MACROS.contains(&tok.text.as_str()) && next.is_some_and(|n| n.is_punct('!')) {
                let name = tok.text.clone();
                self.emit(
                    tok,
                    "no-panic-decode",
                    format!(
                        "`{name}!` in decode function `{fn_name}` — return a typed error instead"
                    ),
                );
                return;
            }
        }
        // raw indexing: `expr[…]` — an opening `[` directly after an
        // identifier, `)`, or `]` is an index (attribute `#[…]` and array
        // types `[u8; 8]` are preceded by other puncts).
        if tok.is_punct('[') && i > 0 {
            let prev = &t[i - 1];
            let indexable = prev.kind == TokenKind::Ident && !Self::is_keyword(&prev.text)
                || prev.is_punct(')')
                || prev.is_punct(']');
            if indexable {
                self.emit(
                    tok,
                    "no-panic-decode",
                    format!(
                        "raw indexing in decode function `{fn_name}` — use a checked \
                         accessor (`get`, `ByteReader::take`) so truncation is a typed error"
                    ),
                );
            }
        }
    }

    fn is_keyword(word: &str) -> bool {
        matches!(
            word,
            "in" | "as"
                | "mut"
                | "ref"
                | "let"
                | "return"
                | "break"
                | "continue"
                | "if"
                | "else"
                | "match"
                | "move"
                | "for"
                | "while"
                | "loop"
                | "const"
                | "static"
                | "where"
                | "dyn"
                | "impl"
        )
    }

    fn check_map_iteration(&mut self, i: usize) {
        let t = self.tokens;
        let tok = &t[i];
        // `name.iter()` / `.keys()` / … where `name` is hash-map-typed.
        if tok.kind == TokenKind::Ident
            && MAP_ITER_METHODS.contains(&tok.text.as_str())
            && i >= 2
            && t[i - 1].is_punct('.')
            && t[i - 2].kind == TokenKind::Ident
            && self.map_idents.contains(&t[i - 2].text)
            && t.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            let (recv, method) = (t[i - 2].text.clone(), tok.text.clone());
            self.emit(
                tok,
                "determinism",
                format!(
                    "iteration over hash map/set `{recv}` via `.{method}()` in an \
                     output-producing module — hash order is nondeterministic; iterate a \
                     sorted view or suppress with a justification"
                ),
            );
            return;
        }
        // `for x in &name {` / `for x in &mut name {` direct borrow loops.
        if tok.kind == TokenKind::Ident && self.map_idents.contains(&tok.text) && i >= 1 {
            let mut j = i;
            // allow `self . name`
            if j >= 2 && t[j - 1].is_punct('.') && t[j - 2].is_ident("self") {
                j -= 2;
            }
            let borrowed = j >= 1 && t[j - 1].is_punct('&')
                || (j >= 2 && t[j - 1].is_ident("mut") && t[j - 2].is_punct('&'));
            let after_in = {
                let k = if borrowed {
                    if j >= 2 && t[j - 1].is_ident("mut") {
                        j - 2
                    } else {
                        j - 1
                    }
                } else {
                    j
                };
                k >= 1 && t[k - 1].is_ident("in")
            };
            if borrowed && after_in && t.get(i + 1).is_some_and(|n| n.is_punct('{')) {
                let name = tok.text.clone();
                self.emit(
                    tok,
                    "determinism",
                    format!(
                        "`for … in &{name}` iterates a hash map/set directly in an \
                         output-producing module — hash order is nondeterministic"
                    ),
                );
            }
        }
    }

    // ---- wrap-up ------------------------------------------------------

    fn finish_markers_and_suppressions(&mut self) {
        let unconsumed: Vec<u32> = self
            .hot_markers
            .iter()
            .filter(|m| !m.consumed)
            .map(|m| m.line)
            .collect();
        for line in unconsumed {
            self.diags.push(Diagnostic {
                file: self.file.to_string(),
                line,
                col: 1,
                rule: "hot-path-alloc",
                message: "`lint: hot-path` marker is not followed by a function".into(),
            });
        }
        let unconsumed_durable: Vec<u32> = self
            .durable_markers
            .iter()
            .filter(|m| !m.consumed)
            .map(|m| m.line)
            .collect();
        for line in unconsumed_durable {
            self.diags.push(Diagnostic {
                file: self.file.to_string(),
                line,
                col: 1,
                rule: "durable-io",
                message: "`lint: durable` marker is not followed by a function".into(),
            });
        }
    }

    /// Applies suppressions: a diagnostic on line `L` is silenced by a
    /// justified `lint:allow` naming its rule on line `L` or `L - 1`.
    /// Unused suppressions become diagnostics of their own.
    fn apply_suppressions(mut self) -> Vec<Diagnostic> {
        let mut kept = Vec::new();
        for d in std::mem::take(&mut self.diags) {
            if d.rule == "suppression-syntax" || d.rule == "unused-suppression" {
                kept.push(d);
                continue;
            }
            // Same-line suppressions take precedence over previous-line
            // ones, so adjacent annotated lines each consume their own.
            let matches_at = |s: &Suppression, line: u32| {
                s.justified && s.line == line && s.rules.iter().any(|r| r == d.rule)
            };
            let suppressed = match self
                .suppressions
                .iter_mut()
                .position(|s| matches_at(s, d.line))
            {
                Some(i) => Some(i),
                None => self
                    .suppressions
                    .iter_mut()
                    .position(|s| d.line > 0 && matches_at(s, d.line - 1)),
            }
            .map(|i| &mut self.suppressions[i]);
            match suppressed {
                Some(s) => s.used = true,
                None => kept.push(d),
            }
        }
        for s in &self.suppressions {
            if s.justified && !s.used {
                kept.push(Diagnostic {
                    file: self.file.to_string(),
                    line: s.line,
                    col: 1,
                    rule: "unused-suppression",
                    message: format!(
                        "`lint:allow({})` does not suppress anything — remove it",
                        s.rules.join(", ")
                    ),
                });
            }
        }
        kept.sort_by_key(|a| (a.line, a.col));
        kept
    }
}

// ---- wire-format-freeze ----------------------------------------------

/// The wire-format constants extracted from a `snapshot.rs` source, keyed
/// by constant name with the raw initializer text as the value.
pub type WireConstants = BTreeMap<String, String>;

/// Constant names that participate in the freeze. `*_VERSION` entries are
/// the bump keys; everything else is a frozen tag.
const FROZEN_PREFIXES: &[&str] = &["SEC_", "KIND_"];
const FROZEN_EXACT: &[&str] = &[
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "WAL_MAGIC",
    "WAL_VERSION",
];

fn is_frozen_const(name: &str) -> bool {
    FROZEN_EXACT.contains(&name) || FROZEN_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Extracts the frozen wire-format constants (`SNAPSHOT_*`, `WAL_*`,
/// `SEC_*`, `KIND_*`) from snapshot source text.
#[must_use]
pub fn extract_wire_constants(source: &str) -> WireConstants {
    let lexed = lex(source);
    let t = &lexed.tokens;
    let mut out = WireConstants::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].is_ident("const") && i + 1 < t.len() && t[i + 1].kind == TokenKind::Ident {
            let name = &t[i + 1].text;
            if is_frozen_const(name) {
                // Find the `=` at bracket depth 0 (the type may contain a
                // `;`, e.g. `[u8; 8]`), then capture raw tokens up to the
                // terminating `;`, also at depth 0.
                let mut j = i + 2;
                let mut depth = 0usize;
                while j < t.len() {
                    if t[j].is_punct('[') || t[j].is_punct('(') {
                        depth += 1;
                    } else if t[j].is_punct(']') || t[j].is_punct(')') {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && (t[j].is_punct('=') || t[j].is_punct(';')) {
                        break;
                    }
                    j += 1;
                }
                if j < t.len() && t[j].is_punct('=') {
                    let mut value = String::new();
                    j += 1;
                    while j < t.len() && !t[j].is_punct(';') {
                        if !value.is_empty() {
                            value.push(' ');
                        }
                        value.push_str(&t[j].text);
                        j += 1;
                    }
                    out.insert(name.clone(), value);
                }
                i = j;
            }
        }
        i += 1;
    }
    out
}

/// Renders constants in the `snapshot_format.lock` format.
#[must_use]
pub fn render_lock(constants: &WireConstants) -> String {
    let mut out = String::from(
        "# Snapshot/WAL wire-format lock. Regenerate ONLY together with a\n\
         # format-version bump: cargo run -p stpm-lint -- --write-format-lock\n",
    );
    for (name, value) in constants {
        out.push_str(name);
        out.push_str(" = ");
        out.push_str(value);
        out.push('\n');
    }
    out
}

/// Parses a lock file produced by [`render_lock`].
#[must_use]
pub fn parse_lock(lock: &str) -> WireConstants {
    let mut out = WireConstants::new();
    for line in lock.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.split_once('=') {
            out.insert(name.trim().to_string(), value.trim().to_string());
        }
    }
    out
}

/// Which version key guards a given frozen constant.
fn version_key_for(name: &str) -> &'static str {
    if name.starts_with("WAL_") {
        "WAL_VERSION"
    } else {
        "SNAPSHOT_VERSION"
    }
}

/// Checks the `wire-format-freeze` rule: `current` (extracted from
/// `snapshot.rs`) against `locked` (the committed lock file). Returns
/// diagnostics attributed to `file`.
#[must_use]
pub fn check_format_lock(
    file: &str,
    current: &WireConstants,
    locked: &WireConstants,
) -> Vec<Diagnostic> {
    fn emit_into(diags: &mut Vec<Diagnostic>, file: &str, message: String) {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            col: 1,
            rule: "wire-format-freeze",
            message,
        });
    }
    let mut diags = Vec::new();
    let version_bumped = |key: &str| current.get(key) != locked.get(key);

    for (name, value) in current {
        if name.ends_with("_VERSION") {
            continue;
        }
        match locked.get(name) {
            None => {
                if !version_bumped(version_key_for(name)) {
                    emit_into(
                        &mut diags,
                        file,
                        format!(
                            "new wire-format constant `{name}` ({value}) without a \
                             `{}` bump — readers cannot distinguish the formats",
                            version_key_for(name)
                        ),
                    );
                }
            }
            Some(locked_value) if locked_value != value => {
                if !version_bumped(version_key_for(name)) {
                    emit_into(
                        &mut diags,
                        file,
                        format!(
                            "wire-format constant `{name}` changed ({locked_value} -> {value}) \
                             without a `{}` bump — old snapshots would be misread",
                            version_key_for(name)
                        ),
                    );
                }
            }
            Some(_) => {}
        }
    }
    for name in locked.keys() {
        if name.ends_with("_VERSION") || current.contains_key(name) {
            continue;
        }
        if !version_bumped(version_key_for(name)) {
            emit_into(
                &mut diags,
                file,
                format!(
                    "wire-format constant `{name}` was removed without a `{}` bump",
                    version_key_for(name)
                ),
            );
        }
    }
    // A version bump (or any drift while bumped) must be accompanied by a
    // lock refresh, so the next change diffs against the right baseline.
    if diags.is_empty() && current != locked {
        emit_into(
            &mut diags,
            file,
            "snapshot wire format changed with a version bump — refresh the lock: \
             cargo run -p stpm-lint -- --write-format-lock"
                .into(),
        );
    }
    diags
}
