//! # stpm-lint
//!
//! Project-invariant static analysis for the FreqSTPfTS workspace.
//!
//! Five load-bearing contracts hold this codebase together: parallel
//! mining must stay byte-identical to sequential, the intersection/verdict/
//! season kernels must stay allocation-free on the hot path, every
//! snapshot/WAL decode path must surface corruption as a typed error
//! instead of panicking, the persistence layer must sync writes before
//! publishing or acknowledging them, and `unsafe` code must stay confined
//! to the SIMD kernel module where every intrinsic has a property-tested
//! scalar twin. `stpm-lint` machine-checks those contracts as named,
//! suppressible rules over every `crates/**/src/*.rs` file:
//!
//! | rule | what it enforces |
//! |------|------------------|
//! | `hot-path-alloc` | no allocating constructs in `// lint: hot-path` functions |
//! | `no-panic-decode` | no panics / raw indexing in snapshot/WAL decode functions |
//! | `determinism` | no hash-order iteration in output modules, no wall clock in wire code |
//! | `wire-format-freeze` | snapshot constants match `snapshot_format.lock` |
//! | `durable-io` | fsync before rename/truncate/acknowledgment in `// lint: durable` functions |
//! | `unsafe-scope` | `unsafe` only under `crates/core/src/simd/` (vectorized kernel twins) |
//!
//! The workspace is dependency-free, so the analysis is built on a small
//! hand-rolled token scanner ([`lexer`]) rather than `syn`. See [`rules`]
//! for the engine and the suppression policy.
//!
//! Run it with `cargo run -p stpm-lint` from anywhere in the workspace;
//! it exits non-zero with `file:line:col` diagnostics on any violation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{
    check_format_lock, extract_wire_constants, lint_source, parse_lock, render_lock, Diagnostic,
};

use std::path::{Path, PathBuf};

/// Name of the committed wire-format lock file at the workspace root.
pub const FORMAT_LOCK_FILE: &str = "snapshot_format.lock";

/// Finds the workspace root by walking up from `start` until a directory
/// containing a `Cargo.toml` with a `[workspace]` table is found.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// Collects every Rust source file the lint pass covers: `crates/*/src/**`
/// plus the facade `src/**`. Integration-test directories are skipped —
/// test code panics and indexes on purpose.
#[must_use]
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs_files(&dir.join("src"), &mut files);
        }
    }
    collect_rs_files(&root.join("src"), &mut files);
    files.sort();
    files
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints the whole workspace rooted at `root`: every collected source file
/// plus the wire-format freeze check of `crates/core/src/snapshot.rs`
/// against the committed lock. I/O failures are reported as diagnostics so
/// a broken checkout cannot silently pass.
#[must_use]
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for path in collect_sources(root) {
        let display = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .display()
            .to_string();
        match std::fs::read_to_string(&path) {
            Ok(source) => diags.extend(lint_source(&display, &source)),
            Err(e) => diags.push(Diagnostic {
                file: display,
                line: 1,
                col: 1,
                rule: "io",
                message: format!("could not read source file: {e}"),
            }),
        }
    }

    let snapshot_path = root.join("crates/core/src/snapshot.rs");
    let lock_path = root.join(FORMAT_LOCK_FILE);
    match (
        std::fs::read_to_string(&snapshot_path),
        std::fs::read_to_string(&lock_path),
    ) {
        (Ok(snapshot_src), Ok(lock_text)) => {
            let current = extract_wire_constants(&snapshot_src);
            let locked = parse_lock(&lock_text);
            diags.extend(check_format_lock(
                "crates/core/src/snapshot.rs",
                &current,
                &locked,
            ));
        }
        (Err(e), _) => diags.push(Diagnostic {
            file: "crates/core/src/snapshot.rs".into(),
            line: 1,
            col: 1,
            rule: "wire-format-freeze",
            message: format!("could not read snapshot module: {e}"),
        }),
        (_, Err(e)) => diags.push(Diagnostic {
            file: FORMAT_LOCK_FILE.into(),
            line: 1,
            col: 1,
            rule: "wire-format-freeze",
            message: format!(
                "could not read the committed lock ({e}) — generate it with \
                 `cargo run -p stpm-lint -- --write-format-lock`"
            ),
        }),
    }
    diags
}
