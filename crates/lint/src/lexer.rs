//! A small hand-rolled Rust token scanner.
//!
//! The workspace is dependency-free, so `stpm-lint` cannot use `syn` or
//! `proc-macro2`. This lexer implements just enough of the Rust lexical
//! grammar for invariant linting: identifiers, punctuation, all literal
//! forms that can hide `//`/`[`/`"` from a naive scanner (strings, raw
//! strings, byte strings, chars vs. lifetimes), and both comment styles.
//! Every token carries a 1-based line and column so rule diagnostics can
//! point at the exact offending source position.
//!
//! The scanner is intentionally *not* a full lexer — it does not classify
//! keywords, split compound operators, or validate numeric suffixes. Rules
//! operate on identifier/punct sequences, which this representation makes
//! easy to match.

/// The coarse kind of a scanned token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw `r#ident` forms).
    Ident,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct,
    /// A string literal of any form (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A numeric literal (integer or float, any radix).
    Num,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
}

/// One scanned token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text exactly as written (punct tokens are one char).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based source column of the token's first character.
    pub col: u32,
}

impl Token {
    /// True when the token is the identifier `word`.
    #[must_use]
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True when the token is the punctuation character `ch`.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

/// A comment with its source position; line comments keep the text after
/// `//`, block comments the text between `/*` and `*/`.
#[derive(Debug, Clone)]
pub struct Comment {
    /// The comment body (delimiters stripped, not trimmed).
    pub text: String,
    /// 1-based line where the comment starts.
    pub line: u32,
    /// True for `/* … */`, false for `// …`.
    pub block: bool,
}

/// The result of scanning a source file: code tokens and comments,
/// each in source order.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All non-comment tokens.
    pub tokens: Vec<Token>,
    /// All comments (doc comments included — they are comments lexically).
    pub comments: Vec<Comment>,
}

/// Scans `source` into tokens and comments.
///
/// The scanner never fails: unterminated literals or comments simply run to
/// the end of input, which is the forgiving behaviour a linter wants when
/// pointed at a file that does not compile.
#[must_use]
pub fn lex(source: &str) -> LexOutput {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: LexOutput,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            out: LexOutput::default(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.src.get(self.pos + offset).copied()
    }

    /// Advances one byte, maintaining the line/column counters. Multi-byte
    /// UTF-8 continuation bytes do not advance the column, so columns count
    /// characters, matching what editors display.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }

    fn run(mut self) -> LexOutput {
        while let Some(b) = self.peek() {
            let (line, col) = (self.line, self.col);
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(line),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(line),
                b'"' => self.string(line, col),
                b'r' if self.raw_string_ahead(1) => self.raw_string(line, col, 1),
                b'b' if self.peek_at(1) == Some(b'"') => {
                    self.bump();
                    self.string(line, col);
                }
                b'b' if self.peek_at(1) == Some(b'r') && self.raw_string_ahead(2) => {
                    self.bump();
                    self.raw_string(line, col, 1);
                }
                b'b' if self.peek_at(1) == Some(b'\'') => {
                    self.bump();
                    self.char_literal(line, col);
                }
                b'\'' => self.quote(line, col),
                _ if b.is_ascii_digit() => self.number(line, col),
                _ if b == b'_' || b.is_ascii_alphabetic() || b >= 0x80 => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, (b as char).to_string(), line, col);
                }
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume `//`
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            text,
            line,
            block: false,
        });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump();
        self.bump(); // consume `/*`
        let start = self.pos;
        let mut depth = 1usize;
        let mut end = self.pos;
        while let Some(b) = self.peek() {
            if b == b'/' && self.peek_at(1) == Some(b'*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if b == b'*' && self.peek_at(1) == Some(b'/') {
                depth -= 1;
                end = self.pos;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                self.bump();
                end = self.pos;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.out.comments.push(Comment {
            text,
            line,
            block: true,
        });
    }

    fn string(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump(); // opening quote
        while let Some(b) = self.peek() {
            if b == b'\\' {
                self.bump();
                self.bump();
            } else if b == b'"' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Str, text, line, col);
    }

    /// True when the bytes at `offset` (relative to an `r` already seen at
    /// `offset - 1`) look like the `#…"` opener of a raw string.
    fn raw_string_ahead(&self, offset: usize) -> bool {
        let mut i = offset;
        while self.peek_at(i) == Some(b'#') {
            i += 1;
        }
        self.peek_at(i) == Some(b'"')
    }

    fn raw_string(&mut self, line: u32, col: u32, r_len: usize) {
        let start = self.pos;
        for _ in 0..r_len {
            self.bump(); // the `r`
        }
        let mut hashes = 0usize;
        while self.peek() == Some(b'#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(b) = self.peek() {
            self.bump();
            if b == b'"' {
                for i in 0..hashes {
                    if self.peek_at(i) != Some(b'#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Str, text, line, col);
    }

    /// Disambiguates `'a` (lifetime) from `'a'` (char literal) at a `'`.
    fn quote(&mut self, line: u32, col: u32) {
        let next = self.peek_at(1);
        let after = self.peek_at(2);
        let is_lifetime = match next {
            Some(b) if b == b'_' || b.is_ascii_alphabetic() => after != Some(b'\''),
            _ => false,
        };
        if is_lifetime {
            let start = self.pos;
            self.bump(); // `'`
            while let Some(b) = self.peek() {
                if b == b'_' || b.is_ascii_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokenKind::Lifetime, text, line, col);
        } else {
            self.char_literal(line, col);
        }
    }

    fn char_literal(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump(); // opening `'`
        while let Some(b) = self.peek() {
            if b == b'\\' {
                self.bump();
                self.bump();
            } else if b == b'\'' {
                self.bump();
                break;
            } else {
                self.bump();
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Char, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        while let Some(b) = self.peek() {
            // A digit continues the number; so does a `.` followed by a
            // digit (`1..x` is a range, not a float).
            let continues = b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && self.peek_at(1).is_some_and(|n| n.is_ascii_digit()));
            if !continues {
                break;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Num, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let start = self.pos;
        // Raw identifier prefix `r#ident` (raw strings were ruled out above).
        if self.peek() == Some(b'r')
            && self.peek_at(1) == Some(b'#')
            && self
                .peek_at(2)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphabetic())
        {
            self.bump();
            self.bump();
        }
        while let Some(b) = self.peek() {
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokenKind::Ident, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("fn foo(x: u32) -> u32 { x + 0x1F }");
        assert_eq!(toks[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "foo".into()));
        assert!(toks.contains(&(TokenKind::Num, "0x1F".into())));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let out = lex("// first\nlet x = 1; // trailing\n/* block\nspans */");
        assert_eq!(out.comments.len(), 3);
        assert_eq!(out.comments[0].line, 1);
        assert_eq!(out.comments[0].text, " first");
        assert_eq!(out.comments[1].line, 2);
        assert!(out.comments[2].block);
        assert_eq!(out.comments[2].line, 3);
    }

    #[test]
    fn strings_hide_comment_markers() {
        let out = lex(r#"let s = "not // a comment"; // real"#);
        assert_eq!(out.comments.len(), 1);
        assert_eq!(out.comments[0].text, " real");
    }

    #[test]
    fn raw_and_byte_strings() {
        let out = lex(r###"let a = r#"raw "inner" text"#; let b = b"bytes"; let c = br#"x"#;"###);
        let strs: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 3);
        assert_eq!(out.comments.len(), 0);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let out = lex("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner */ still outer */ fn after() {}");
        assert_eq!(out.comments.len(), 1);
        assert!(out.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn positions_are_one_based() {
        let out = lex("a\n  b");
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }

    #[test]
    fn float_vs_range() {
        let toks = kinds("1.5 + 1..2");
        assert_eq!(toks[0], (TokenKind::Num, "1.5".into()));
        assert!(toks.contains(&(TokenKind::Num, "1".into())));
        assert!(toks.contains(&(TokenKind::Num, "2".into())));
    }
}
