//! `stpm-lint` — project-invariant static analysis for the workspace.
//!
//! Usage:
//!
//! ```text
//! cargo run -p stpm-lint                       # lint the workspace
//! cargo run -p stpm-lint -- --write-format-lock  # refresh snapshot_format.lock
//! ```
//!
//! Exits 0 when the workspace is clean, 1 with `file:line:col` diagnostics
//! otherwise, and 2 on usage/environment errors.

#![forbid(unsafe_code)]

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut write_lock = false;
    for arg in &args {
        match arg.as_str() {
            "--write-format-lock" => write_lock = true,
            "--help" | "-h" => {
                println!(
                    "stpm-lint: project-invariant static analysis\n\n\
                     USAGE:\n  stpm-lint [--write-format-lock]\n\n\
                     Checks every crates/**/src/*.rs file against the project rules\n\
                     (hot-path-alloc, no-panic-decode, determinism, wire-format-freeze,\n\
                     durable-io, unsafe-scope) and the snapshot wire format against\n\
                     snapshot_format.lock."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("stpm-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("stpm-lint: cannot determine working directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = stpm_lint::find_workspace_root(&cwd) else {
        eprintln!("stpm-lint: no workspace root found above {}", cwd.display());
        return ExitCode::from(2);
    };

    if write_lock {
        return write_format_lock(&root);
    }

    let diags = stpm_lint::lint_workspace(&root);
    if diags.is_empty() {
        println!(
            "stpm-lint: {} source files clean (hot-path-alloc, no-panic-decode, \
             determinism, wire-format-freeze, durable-io, unsafe-scope)",
            stpm_lint::collect_sources(&root).len()
        );
        ExitCode::SUCCESS
    } else {
        for d in &diags {
            eprintln!("{d}");
        }
        eprintln!("stpm-lint: {} violation(s)", diags.len());
        ExitCode::FAILURE
    }
}

fn write_format_lock(root: &Path) -> ExitCode {
    let snapshot_path = root.join("crates/core/src/snapshot.rs");
    let source = match std::fs::read_to_string(&snapshot_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stpm-lint: cannot read {}: {e}", snapshot_path.display());
            return ExitCode::from(2);
        }
    };
    let constants = stpm_lint::extract_wire_constants(&source);
    let lock = stpm_lint::render_lock(&constants);
    let lock_path = root.join(stpm_lint::FORMAT_LOCK_FILE);
    if let Err(e) = std::fs::write(&lock_path, lock) {
        eprintln!("stpm-lint: cannot write {}: {e}", lock_path.display());
        return ExitCode::from(2);
    }
    println!(
        "stpm-lint: wrote {} ({} constants)",
        lock_path.display(),
        constants.len()
    );
    ExitCode::SUCCESS
}
