//! Fixture tests: each fixture under `tests/fixtures/` is linted under a
//! synthetic workspace path that puts it in scope of one rule, and the test
//! asserts the exact pass/fail outcome — including suppression handling,
//! unused-suppression reporting, and the wire-format version-bump cases.

use stpm_lint::{check_format_lock, extract_wire_constants, lint_source, parse_lock, render_lock};

fn rules_hit(file: &str, source: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = lint_source(file, source)
        .into_iter()
        .map(|d| d.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn hot_path_allocation_is_flagged() {
    let source = include_str!("fixtures/fixture_hot_alloc_fail.rs");
    let diags = lint_source("crates/core/src/miner.rs", source);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "hot-path-alloc");
    assert_eq!(
        diags[0].line, 5,
        "diagnostic should anchor the Vec::new line"
    );
    assert!(
        diags[0].message.contains("Vec::new"),
        "{}",
        diags[0].message
    );
}

#[test]
fn clean_hot_path_with_justified_suppression_passes() {
    let source = include_str!("fixtures/fixture_hot_alloc_pass.rs");
    let diags = lint_source("crates/core/src/support.rs", source);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn hot_path_marker_outside_registered_files_is_rejected() {
    // The rule's scope is a closed list: marking a function hot in a module
    // the rule does not cover is a configuration error, not a no-op.
    let source = include_str!("fixtures/fixture_hot_alloc_pass.rs");
    let diags = lint_source("crates/core/src/config.rs", source);
    assert!(
        diags.iter().any(|d| d.message.contains("hot-path")),
        "{diags:?}"
    );
}

#[test]
fn unused_suppression_is_flagged() {
    let source = include_str!("fixtures/fixture_unused_suppression.rs");
    let diags = lint_source("crates/core/src/support.rs", source);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "unused-suppression");
}

#[test]
fn suppression_without_justification_is_flagged() {
    let source = "pub fn f() {\n    // lint:allow(hot-path-alloc)\n    let x = 1;\n}\n";
    let diags = lint_source("crates/core/src/support.rs", source);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "suppression-syntax");
}

#[test]
fn panicking_decode_path_is_flagged() {
    let source = include_str!("fixtures/fixture_panic_decode_fail.rs");
    let rules = rules_hit("crates/core/src/snapshot.rs", source);
    assert_eq!(rules, ["no-panic-decode"]);
    let diags = lint_source("crates/core/src/snapshot.rs", source);
    // Raw indexing (buf[0], buf[1..5]), unwrap and assert! each count.
    assert!(diags.len() >= 3, "{diags:?}");
}

#[test]
fn typed_error_decode_path_passes() {
    let source = include_str!("fixtures/fixture_panic_decode_pass.rs");
    let diags = lint_source("crates/core/src/snapshot.rs", source);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn decode_rule_only_applies_to_wire_format_modules() {
    // The same panicking source is fine in a module the rule does not
    // scope to (test helpers, miner internals with their own contracts).
    let source = include_str!("fixtures/fixture_panic_decode_fail.rs");
    let diags = lint_source("crates/core/src/config.rs", source);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn hash_map_iteration_in_output_module_is_flagged() {
    let source = include_str!("fixtures/fixture_determinism_fail.rs");
    let rules = rules_hit("crates/core/src/report.rs", source);
    assert_eq!(rules, ["determinism"]);
}

#[test]
fn hash_map_iteration_outside_output_modules_passes() {
    let source = include_str!("fixtures/fixture_determinism_fail.rs");
    let diags = lint_source("crates/core/src/config.rs", source);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unsynced_publish_truncate_and_ack_are_flagged() {
    let source = include_str!("fixtures/fixture_durable_fail.rs");
    let rules = rules_hit("src/lib.rs", source);
    assert_eq!(rules, ["durable-io"]);
    let diags = lint_source("src/lib.rs", source);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags[0].message.contains("rename"), "{}", diags[0].message);
    assert!(diags[1].message.contains("set_len"), "{}", diags[1].message);
    assert!(
        diags[2].message.contains("checkpoint"),
        "{}",
        diags[2].message
    );
}

#[test]
fn synced_publish_with_justified_suppression_passes() {
    let source = include_str!("fixtures/fixture_durable_pass.rs");
    let diags = lint_source("src/lib.rs", source);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unsynced_client_acknowledgment_is_flagged() {
    // Service tier: `.send`/`.respond` is the client-visible ack — firing
    // it while a WAL write is lexically unsynced is the exact bug class
    // the chaos tests hunt (acked-append loss on crash).
    let source = include_str!("fixtures/fixture_durable_service_fail.rs");
    let rules = rules_hit("crates/service/src/tenant.rs", source);
    assert_eq!(rules, ["durable-io"]);
    let diags = lint_source("crates/service/src/tenant.rs", source);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags[0].message.contains("send"), "{}", diags[0].message);
    assert!(diags[1].message.contains("respond"), "{}", diags[1].message);
}

#[test]
fn synced_or_delegated_client_acknowledgment_passes() {
    let source = include_str!("fixtures/fixture_durable_service_pass.rs");
    let diags = lint_source("crates/service/src/service.rs", source);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn durable_marker_outside_registered_files_is_rejected() {
    // Same closed-list policy as hot-path markers: durability contracts are
    // declared per-module, not sprinkled ad hoc.
    let source = include_str!("fixtures/fixture_durable_pass.rs");
    let diags = lint_source("crates/core/src/config.rs", source);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "durable-io" && d.message.contains("DURABLE_FILES")),
        "{diags:?}"
    );
}

#[test]
fn unsafe_outside_simd_module_is_flagged() {
    let source = include_str!("fixtures/fixture_unsafe_scope_fail.rs");
    let diags = lint_source("crates/core/src/support.rs", source);
    // Three `unsafe` tokens, one silenced by the justified suppression.
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "unsafe-scope"), "{diags:?}");
    assert_eq!(diags[0].line, 5, "the `unsafe fn` qualifier is flagged");
    assert_eq!(diags[1].line, 15, "the unsuppressed block is flagged");
    assert!(
        diags[0].message.contains("crates/core/src/simd/"),
        "{}",
        diags[0].message
    );
}

#[test]
fn unsafe_inside_simd_module_is_sanctioned() {
    let source = include_str!("fixtures/fixture_unsafe_scope_pass.rs");
    let diags = lint_source("crates/core/src/simd/x86.rs", source);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unsafe_scope_is_a_path_check_not_a_base_name_check() {
    // The same sanctioned source under a *different* directory named
    // `x86.rs` must still be flagged: the exemption follows the full
    // `crates/core/src/simd/` path, not the file's base name.
    let source = include_str!("fixtures/fixture_unsafe_scope_pass.rs");
    let diags = lint_source("crates/service/src/x86.rs", source);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "unsafe-scope"), "{diags:?}");
}

// ---------------------------------------------------------------------------
// wire-format-freeze: the lock round-trips, and every drift case resolves
// the way the rule promises.
// ---------------------------------------------------------------------------

const FROZEN_V1: &str = r#"
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"STPMSNAP";
pub const SNAPSHOT_VERSION: u16 = 1;
const SEC_CONFIG: u8 = 1;
const SEC_STATE: u8 = 3;
"#;

#[test]
fn lock_round_trips_through_render_and_parse() {
    let constants = extract_wire_constants(FROZEN_V1);
    assert_eq!(constants.len(), 4, "{constants:?}");
    let locked = parse_lock(&render_lock(&constants));
    assert_eq!(constants, locked);
    assert!(check_format_lock("snapshot.rs", &constants, &locked).is_empty());
}

#[test]
fn tag_change_without_version_bump_is_an_error() {
    let locked = extract_wire_constants(FROZEN_V1);
    let drifted = FROZEN_V1.replace("SEC_STATE: u8 = 3", "SEC_STATE: u8 = 7");
    let current = extract_wire_constants(&drifted);
    let diags = check_format_lock("snapshot.rs", &current, &locked);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "wire-format-freeze");
    assert!(
        diags[0].message.contains("SNAPSHOT_VERSION"),
        "the error must demand a version bump: {}",
        diags[0].message
    );
}

#[test]
fn tag_change_with_version_bump_demands_a_lock_refresh() {
    let locked = extract_wire_constants(FROZEN_V1);
    let bumped = FROZEN_V1
        .replace("SEC_STATE: u8 = 3", "SEC_STATE: u8 = 7")
        .replace("SNAPSHOT_VERSION: u16 = 1", "SNAPSHOT_VERSION: u16 = 2");
    let current = extract_wire_constants(&bumped);
    let diags = check_format_lock("snapshot.rs", &current, &locked);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(
        diags[0].message.contains("refresh the lock"),
        "{}",
        diags[0].message
    );
}

#[test]
fn version_bump_with_regenerated_lock_passes() {
    let bumped = FROZEN_V1
        .replace("SEC_STATE: u8 = 3", "SEC_STATE: u8 = 7")
        .replace("SNAPSHOT_VERSION: u16 = 1", "SNAPSHOT_VERSION: u16 = 2");
    let current = extract_wire_constants(&bumped);
    let locked = parse_lock(&render_lock(&current));
    assert!(check_format_lock("snapshot.rs", &current, &locked).is_empty());
}

#[test]
fn added_constant_without_version_bump_is_an_error() {
    let locked = extract_wire_constants(FROZEN_V1);
    let grown = format!("{FROZEN_V1}const SEC_EVENTS: u8 = 4;\n");
    let current = extract_wire_constants(&grown);
    let diags = check_format_lock("snapshot.rs", &current, &locked);
    assert!(!diags.is_empty(), "adding a section tag silently must fail");
}

// ---------------------------------------------------------------------------
// The committed workspace itself: clean lint, lock in sync.
// ---------------------------------------------------------------------------

#[test]
fn committed_workspace_is_clean() {
    let root = stpm_lint::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("fixture test runs inside the workspace");
    let diags = stpm_lint::lint_workspace(&root);
    assert!(
        diags.is_empty(),
        "committed sources must lint clean:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
