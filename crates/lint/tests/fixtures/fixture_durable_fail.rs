// Fixture: durable-io — a `lint: durable` function that publishes
// (rename), truncates (set_len) or acknowledges (checkpoint) over a write
// that never reached sync_all must be flagged once per site.

use std::io::Write;

// lint: durable
pub fn publish_unsynced(dir: &std::path::Path) -> std::io::Result<()> {
    let tmp = dir.join("snap.tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(b"payload")?;
    std::fs::rename(&tmp, dir.join("snap"))?;
    Ok(())
}

// lint: durable
pub fn truncate_unsynced(file: &mut std::fs::File, base: u64) -> std::io::Result<()> {
    file.write_all(b"record")?;
    file.set_len(base)?;
    file.sync_all()
}

// lint: durable
pub fn acknowledge_unsynced(file: &mut std::fs::File, miner: &mut Miner) -> Report {
    file.write_all(b"record").ok();
    miner.checkpoint()
}
