// Fixture: `unsafe` outside `crates/core/src/simd/` must be flagged by the
// `unsafe-scope` rule — once per `unsafe` token (the fn qualifier and the
// block each count), and a justified suppression must silence exactly one.

pub unsafe fn read_word(ptr: *const u64) -> u64 {
    *ptr
}

pub fn copy_first(src: &[u64]) -> u64 {
    // lint:allow(unsafe-scope): fixture demonstrating a silenced site
    unsafe { core::ptr::read(src.as_ptr()) }
}

pub fn and_inline(acc: &mut u64, word: u64) {
    let masked = unsafe { core::ptr::read(&word) };
    *acc &= masked;
}
