// Fixture: iterating a hash map in an output-producing module must be
// flagged (hash order is nondeterministic).

use std::collections::HashMap;

pub fn report(counts: &HashMap<u64, u64>) -> u64 {
    let mut out = 0;
    for v in counts.values() {
        out += v;
    }
    out
}
