// Fixture: a suppression that matches no diagnostic must itself be flagged.

pub fn harmless() -> u64 {
    // lint:allow(hot-path-alloc): nothing here actually allocates
    41 + 1
}
