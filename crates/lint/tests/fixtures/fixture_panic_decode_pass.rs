// Fixture: a decode function that surfaces corruption as a typed error
// (no panics, no raw indexing) must produce no diagnostics.

pub fn decode_header(buf: &[u8]) -> Result<u32, String> {
    let bytes = buf
        .get(1..5)
        .ok_or_else(|| String::from("truncated header"))?;
    let rest: [u8; 4] = bytes
        .try_into()
        .map_err(|_| String::from("internal length mismatch"))?;
    Ok(u32::from_le_bytes(rest))
}
