// Fixture: the same shapes of `unsafe` are sanctioned when the file lives
// under `crates/core/src/simd/` — the one module where vectorized kernel
// twins may use intrinsics (each with a property-tested scalar reference).

pub(super) fn and_words_fixture(acc: &mut [u64], row: &[u64]) {
    // SAFETY: fixture stand-in for a detection-gated intrinsic call.
    unsafe { and_words_impl(acc, row) }
}

unsafe fn and_words_impl(acc: &mut [u64], row: &[u64]) {
    let len = if acc.len() < row.len() {
        acc.len()
    } else {
        row.len()
    };
    let mut i = 0usize;
    while i < len {
        acc[i] &= row[i];
        i += 1;
    }
}
