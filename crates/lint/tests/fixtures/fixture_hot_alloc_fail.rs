// Fixture: an allocation inside a `lint: hot-path` function must be flagged.

// lint: hot-path
pub fn intersect_fast(a: &[u64], b: &[u64]) -> usize {
    let scratch: Vec<u64> = Vec::new();
    a.len() + b.len() + scratch.len()
}
