// Fixture: durable-io, service tier — syncing the WAL before the client
// acknowledgment leaves the process produces no diagnostics, and a `.send`
// with no unsynced write in scope (the pipeline syncs internally) is fine.

use std::io::Write;

// lint: durable
pub fn ack_synced_append(
    wal: &mut std::fs::File,
    reply: &std::sync::mpsc::Sender<Response>,
) -> std::io::Result<()> {
    wal.write_all(b"record")?;
    wal.sync_all()?;
    let _ = reply.send(Response::Appended);
    Ok(())
}

// lint: durable
pub fn ack_delegated_append(
    tenant: &mut Tenant,
    reply: &std::sync::mpsc::Sender<Response>,
) -> Result<(), Error> {
    let response = tenant.append_durably()?;
    let _ = reply.send(response);
    Ok(())
}
