// Fixture: durable-io — sync-before-publish ordering, retry closures that
// inherit the enclosing frame, and a justified suppression for a deliberate
// truncate-the-torn-write site must produce no diagnostics.

use std::io::Write;

// lint: durable
pub fn publish_synced(dir: &std::path::Path) -> std::io::Result<()> {
    let tmp = dir.join("snap.tmp");
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(b"payload")?;
    file.sync_all()?;
    std::fs::rename(&tmp, dir.join("snap"))?;
    Ok(())
}

// lint: durable
pub fn retry_append(file: &mut std::fs::File, base: u64) -> std::io::Result<()> {
    file.write_all(b"record")?;
    // lint:allow(durable-io): the truncation discards the torn write itself
    file.set_len(base)?;
    file.write_all(b"record")?;
    file.sync_all()
}

// lint: durable
pub fn closure_inherits(file: &mut std::fs::File) -> std::io::Result<()> {
    let mut attempt = || {
        file.write_all(b"record")?;
        file.sync_all()
    };
    attempt()
}
