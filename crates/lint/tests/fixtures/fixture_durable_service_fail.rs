// Fixture: durable-io, service tier — acknowledging a client (`.send`,
// `.respond`) over a write that never reached sync_all must be flagged:
// an acked append that only exists in the page cache is lost by a crash.

use std::io::Write;

// lint: durable
pub fn ack_unsynced_append(
    wal: &mut std::fs::File,
    reply: &std::sync::mpsc::Sender<Response>,
) -> std::io::Result<()> {
    wal.write_all(b"record")?;
    let _ = reply.send(Response::Appended);
    Ok(())
}

// lint: durable
pub fn respond_unsynced_append(
    wal: &mut std::fs::File,
    conn: &mut Connection,
) -> std::io::Result<()> {
    wal.write_all(b"record")?;
    conn.respond(Response::Appended);
    wal.sync_all()
}
