// Fixture: a clean hot-path function, plus a justified suppression on a
// cold first-occurrence arm, must produce no diagnostics.

// lint: hot-path
pub fn gallop(haystack: &[u64], needle: u64) -> usize {
    let mut step = 1usize;
    let mut pos = 0usize;
    while pos + step < haystack.len() && haystack[pos + step] < needle {
        pos += step;
        step *= 2;
    }
    pos
}

// lint: hot-path
pub fn push_entry(entries: &mut Vec<u64>, value: u64) {
    if value == 0 {
        // lint:allow(hot-path-alloc): first-occurrence arm
        entries.extend(Vec::with_capacity(4));
    }
    entries.push(value);
}
