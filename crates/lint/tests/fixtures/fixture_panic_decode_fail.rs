// Fixture: panicking constructs and raw indexing inside a decode function
// of a wire-format module must be flagged.

pub fn decode_header(buf: &[u8]) -> u32 {
    let first = buf[0];
    let rest: [u8; 4] = buf[1..5].try_into().unwrap();
    assert!(first == 1, "bad version");
    u32::from_le_bytes(rest)
}
