//! Functional tests of the service tier: admission control and typed
//! backpressure, deadlines, quarantine isolation, eviction/rehydration
//! identity, failed-spill liveness, graceful drain, and the TCP front end.

use std::sync::Arc;
use std::time::Duration;
use stpm_core::{failpoints, FaultyFs, MemoryBudget};
use stpm_service::{
    serve, Client, OverloadScope, Request, Response, Service, ServiceConfig, ServiceError,
};
use stpm_timeseries::{Alphabet, SymbolId, SymbolicDatabase, SymbolicSeries};

/// A two-series symbolic batch of `len` instants; `phase` shifts the
/// symbol sequence so distinct batches carry distinct data.
fn batch(len: usize, phase: usize) -> SymbolicDatabase {
    batch_named(&["s0", "s1"], len, phase)
}

fn batch_named(names: &[&str], len: usize, phase: usize) -> SymbolicDatabase {
    let alphabet = Alphabet::from_strs(&["lo", "hi"]).expect("a valid alphabet");
    let series = names
        .iter()
        .map(|name| {
            let symbols = (0..len)
                .map(|i| SymbolId(u16::try_from((i + phase) % 2).expect("0 or 1")))
                .collect();
            SymbolicSeries::new((*name).to_string(), symbols, alphabet.clone())
        })
        .collect();
    SymbolicDatabase::new(series).expect("a valid batch")
}

fn config() -> ServiceConfig {
    let mut config = ServiceConfig::new("svc");
    config.mapping_factor = 1;
    config.workers = 2;
    config
}

fn service(config: ServiceConfig) -> (Service, FaultyFs) {
    let fs = FaultyFs::with_seed(5);
    let service = Service::start_with_storage(config, Arc::new(fs.clone()));
    (service, fs)
}

fn append(service: &Service, tenant: &str, data: SymbolicDatabase) -> Response {
    service.call(Request::Append {
        tenant: tenant.to_string(),
        deadline_ms: 0,
        batch: data,
    })
}

fn patterns_of(service: &Service, tenant: &str) -> Vec<String> {
    match service.call(Request::Patterns {
        tenant: tenant.to_string(),
    }) {
        Response::Patterns { patterns } => patterns,
        other => panic!("expected patterns, got {other:?}"),
    }
}

#[test]
fn appends_are_acknowledged_with_progress() {
    let (service, _fs) = service(config());
    let Response::Appended {
        granules,
        pending_instants,
        ..
    } = append(&service, "acme", batch(6, 0))
    else {
        panic!("expected an acknowledgment");
    };
    assert_eq!(granules, 6);
    assert_eq!(pending_instants, 0);
    let Response::Checkpoint { granules, .. } = service.call(Request::Checkpoint {
        tenant: "acme".to_string(),
    }) else {
        panic!("expected a checkpoint");
    };
    assert_eq!(granules, 6);
    let stats = service.stats();
    assert_eq!(stats.acked_appends, 1);
    assert_eq!(stats.tenant("acme").expect("registered").acked_appends, 1);
    service.kill();
}

#[test]
fn zero_depth_queues_reject_with_typed_scopes() {
    let mut tenant_capped = config();
    tenant_capped.tenant_queue_depth = 0;
    let (service, _fs) = service(tenant_capped);
    let Response::Error(ServiceError::Overloaded { scope }) = append(&service, "t", batch(3, 0))
    else {
        panic!("expected a tenant-scope overload");
    };
    assert_eq!(scope, OverloadScope::Tenant);
    assert_eq!(service.stats().overloaded_rejections, 1);
    service.kill();

    let mut globally_capped = config();
    globally_capped.global_queue_depth = 0;
    let (service, _fs) = crate::service(globally_capped);
    let Response::Error(ServiceError::Overloaded { scope }) = append(&service, "t", batch(3, 0))
    else {
        panic!("expected a global-scope overload");
    };
    assert_eq!(scope, OverloadScope::Global);
    service.kill();
}

#[test]
fn floods_are_bounded_not_buffered() {
    let mut cfg = config();
    cfg.workers = 1;
    cfg.tenant_queue_depth = 2;
    let (service, _fs) = service(cfg);
    // Rapid-fire submits without awaiting: the queue holds at most 2, so
    // with 64 in flight at least one typed overload must surface, and
    // every request gets exactly one response.
    let receivers: Vec<_> = (0..64)
        .map(|i| {
            service.submit(Request::Append {
                tenant: "flooded".to_string(),
                deadline_ms: 0,
                batch: batch(30, i % 2),
            })
        })
        .collect();
    let mut acked = 0_u32;
    let mut overloaded = 0_u32;
    let mut other = 0_u32;
    for rx in receivers {
        match rx.recv().expect("every admitted request is answered") {
            Response::Appended { .. } => acked += 1,
            Response::Error(ServiceError::Overloaded { .. }) => overloaded += 1,
            _ => other += 1,
        }
    }
    assert_eq!(acked + overloaded + other, 64);
    assert_eq!(other, 0);
    assert!(overloaded > 0, "a bounded queue must shed load");
    assert!(acked > 0, "admission control must not reject everything");
    assert_eq!(u64::from(overloaded), service.stats().overloaded_rejections);
    service.kill();
}

#[test]
fn expired_deadlines_cancel_without_touching_state() {
    let mut cfg = config();
    // Every job is already expired when a worker picks it up.
    cfg.default_deadline = Some(Duration::from_nanos(1));
    let (service, _fs) = service(cfg);
    let Response::Error(ServiceError::DeadlineExceeded) = append(&service, "t", batch(3, 0)) else {
        panic!("expected a deadline rejection");
    };
    let stats = service.stats();
    assert_eq!(stats.deadline_rejections, 1);
    assert_eq!(
        stats.tenant("t").expect("registered").granules_absorbed,
        0,
        "a cancelled job must not touch tenant state"
    );
    service.kill();
}

#[test]
fn poisoned_input_quarantines_only_its_tenant() {
    let (service, _fs) = service(config());
    assert!(matches!(
        append(&service, "good", batch(4, 0)),
        Response::Appended { .. }
    ));
    assert!(matches!(
        append(&service, "bad", batch(4, 0)),
        Response::Appended { .. }
    ));
    // A batch that does not continue the absorbed series set is poison.
    let Response::Error(ServiceError::Quarantined { .. }) =
        append(&service, "bad", batch_named(&["other"], 4, 0))
    else {
        panic!("expected a quarantine");
    };
    // The quarantine latches...
    assert!(matches!(
        append(&service, "bad", batch(4, 1)),
        Response::Error(ServiceError::Quarantined { .. })
    ));
    // ...but neighbors and the daemon itself keep serving.
    assert!(matches!(
        append(&service, "good", batch(4, 1)),
        Response::Appended { .. }
    ));
    let stats = service.stats();
    assert_eq!(stats.quarantined_tenants, 1);
    let bad = stats.tenant("bad").expect("registered");
    assert!(bad.quarantined);
    assert_eq!(
        bad.granules_absorbed, 4,
        "durable pre-poison state is intact"
    );
    service.kill();
}

#[test]
fn bad_tenant_names_are_rejected() {
    let (service, _fs) = service(config());
    for name in ["", "../escape", "a/b", ".hidden", "naughty\n"] {
        assert!(
            matches!(
                append(&service, name, batch(3, 0)),
                Response::Error(ServiceError::BadRequest { .. })
            ),
            "tenant name {name:?} must be rejected"
        );
    }
    service.kill();
}

/// Eviction/rehydration round trips must not change what a tenant mines:
/// a budget-starved service (everything evicted after every job) produces
/// exactly the state an unbudgeted one does.
#[test]
fn eviction_and_rehydration_preserve_tenant_state_exactly() {
    let run = |budget: Option<MemoryBudget>| {
        let mut cfg = config();
        cfg.memory_budget = budget;
        let (service, _fs) = service(cfg);
        for phase in 0..4 {
            for tenant in ["alpha", "beta"] {
                assert!(matches!(
                    append(&service, tenant, batch(6, phase)),
                    Response::Appended { .. }
                ));
            }
        }
        let result = (
            patterns_of(&service, "alpha"),
            patterns_of(&service, "beta"),
            service.stats(),
        );
        service.kill();
        result
    };
    let (alpha_free, beta_free, stats_free) = run(None);
    let (alpha_tight, beta_tight, stats_tight) = run(Some(MemoryBudget::bytes(1)));
    assert_eq!(alpha_free, alpha_tight);
    assert_eq!(beta_free, beta_tight);
    assert_eq!(stats_free.evictions, 0);
    assert!(stats_tight.evictions > 0, "the budget must force evictions");
    assert!(stats_tight.rehydrations > 0, "cold tenants must rehydrate");
    for tenant in ["alpha", "beta"] {
        let free = stats_free.tenant(tenant).expect("registered");
        let tight = stats_tight.tenant(tenant).expect("registered");
        assert_eq!(free.granules_absorbed, tight.granules_absorbed);
        assert_eq!(free.patterns_interned, tight.patterns_interned);
    }
    assert_eq!(
        stats_tight.resident_bytes, 0,
        "a one-byte budget leaves everything cold between requests"
    );
}

/// A failed spill must leave the victim live, lossless, and still serving.
#[test]
fn failed_spill_leaves_the_tenant_live_and_lossless() {
    let mut cfg = config();
    cfg.memory_budget = Some(MemoryBudget::bytes(1));
    let (service, fs) = service(cfg);
    assert!(matches!(
        append(&service, "spiller", batch(6, 0)),
        Response::Appended { .. }
    ));
    // The post-job eviction of that append succeeded; fail the next one.
    fs.fail_nth(
        failpoints::SNAPSHOT_CREATE_TMP,
        fs.op_count(failpoints::SNAPSHOT_CREATE_TMP) + 1,
    );
    assert!(
        matches!(
            append(&service, "spiller", batch(6, 1)),
            Response::Appended { .. }
        ),
        "the append itself is durable and acknowledged; only the spill fails"
    );
    let stats = service.stats();
    let spiller = stats.tenant("spiller").expect("registered");
    assert!(
        spiller.resident,
        "a failed spill leaves the tenant live in memory"
    );
    assert_eq!(spiller.evictions, 1, "only the first eviction succeeded");
    assert_eq!(spiller.granules_absorbed, 12, "nothing was lost");
    // The one-shot fault is consumed: the next job's eviction succeeds.
    assert!(matches!(
        append(&service, "spiller", batch(6, 0)),
        Response::Appended { .. }
    ));
    let stats = service.stats();
    let spiller = stats.tenant("spiller").expect("registered");
    assert!(!spiller.resident, "the retried eviction succeeded");
    assert_eq!(spiller.evictions, 2);
    assert_eq!(spiller.granules_absorbed, 18);
    service.kill();
}

/// A graceful drain flushes every tenant: a restarted daemon recovers from
/// clean snapshots with zero WAL replay and identical state.
#[test]
fn drain_flushes_every_tenant_for_clean_recovery() {
    let cfg = config();
    let fs = FaultyFs::with_seed(5);
    let service = Service::start_with_storage(cfg.clone(), Arc::new(fs.clone()));
    for tenant in ["a", "b", "c"] {
        for phase in 0..2 {
            assert!(matches!(
                append(&service, tenant, batch(6, phase)),
                Response::Appended { .. }
            ));
        }
    }
    let before: Vec<_> = ["a", "b", "c"]
        .iter()
        .map(|t| patterns_of(&service, t))
        .collect();
    let report = service.drain();
    assert_eq!(report.flushed, 3, "every live tenant is flushed");
    assert!(report.failures.is_empty());

    let revived = Service::start_with_storage(cfg, Arc::new(fs.clone()));
    let after: Vec<_> = ["a", "b", "c"]
        .iter()
        .map(|t| patterns_of(&revived, t))
        .collect();
    assert_eq!(before, after);
    let stats = revived.stats();
    for tenant in ["a", "b", "c"] {
        let t = stats.tenant(tenant).expect("registered");
        assert_eq!(
            t.replayed_records, 0,
            "a drained daemon restarts from clean snapshots, not WAL replay"
        );
        assert_eq!(t.granules_absorbed, 12);
    }
    revived.kill();
}

/// End-to-end over TCP: append, query, stats, shutdown — all through the
/// wire protocol.
#[test]
fn tcp_round_trip_serves_and_shuts_down() {
    let (svc, _fs) = service(config());
    let handle = serve(svc, "127.0.0.1:0").expect("bind an ephemeral port");
    let addr = handle.addr();

    let mut client = Client::connect(addr).expect("connect");
    let response = client.append("wire", 0, batch(6, 0)).expect("append");
    assert!(matches!(response, Response::Appended { granules: 6, .. }));
    let response = client.checkpoint("wire").expect("checkpoint");
    assert!(matches!(response, Response::Checkpoint { granules: 6, .. }));
    let response = client.patterns("wire").expect("patterns");
    assert!(matches!(response, Response::Patterns { .. }));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.acked_appends, 1);
    assert_eq!(stats.tenant("wire").expect("registered").acked_appends, 1);

    // A second connection sees the same daemon.
    let mut second = Client::connect(addr).expect("connect");
    let stats = second.stats().expect("stats");
    assert_eq!(stats.acked_appends, 1);

    let response = client.shutdown().expect("shutdown");
    assert!(matches!(response, Response::ShutdownStarted));
    // In-flight connections get typed shutdown errors, not hangs.
    let response = second.append("wire", 0, batch(6, 1)).expect("transport ok");
    assert!(matches!(
        response,
        Response::Error(ServiceError::ShuttingDown)
    ));
    drop(client);
    drop(second);
    let report = handle.drain();
    assert_eq!(report.flushed, 1);
}
