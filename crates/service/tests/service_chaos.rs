//! Chaos harness for the service tier: a deterministic multi-tenant
//! workload (power-law tenant sizes, bursty interleave) is driven through
//! a daemon whose storage is the in-memory [`FaultyFs`], under
//!
//! * injected I/O failures at every failpoint the workload exercises
//!   (including the snapshot failpoints hit by cold-tenant eviction — the
//!   memory budget is set far below the working set, so eviction and
//!   rehydration churn constantly), and
//! * hard daemon kills at arbitrary points: on every surfaced error, at
//!   scripted arrival indices, and unconditionally before the final
//!   verification (`Service::kill` + [`FaultyFs::crash`] discards all
//!   volatile state, exactly like a `kill -9`).
//!
//! Invariants asserted for every run:
//! * **zero acknowledged-append loss** — a batch whose append was
//!   acknowledged is present after every restart-and-recover;
//! * **byte-identical tenant state** — every tenant's final pattern set
//!   and granule count equal the fault-free baseline's.

use std::collections::BTreeMap;
use std::sync::Arc;
use stpm_core::{failpoints, FaultyFs, MemoryBudget, StpmConfig, Threshold};
use stpm_datagen::{service_load, ServiceLoad, TenantLoadSpec};
use stpm_service::{Request, Response, Service, ServiceConfig};

/// The scripted workload: 3 tenants, ~11 batches, granule-aligned.
fn load() -> ServiceLoad {
    let mut spec = TenantLoadSpec::quick(3, 0xC0A5);
    spec.max_granules = 36;
    spec.min_granules = 12;
    spec.batch_granules = 6;
    service_load(&spec)
}

/// Service config matched to the workload's profile, with a memory budget
/// far below the working set so every run churns through eviction.
fn config(load: &ServiceLoad) -> ServiceConfig {
    let mut config = ServiceConfig::new("svc");
    config.mapping_factor = load.tenants[0].dataset.mapping_factor;
    config.thresholds = StpmConfig {
        max_period: Threshold::Absolute(3),
        min_density: Threshold::Absolute(2),
        dist_interval: (2, 40),
        min_season: 1,
        max_pattern_len: 2,
        ..StpmConfig::default()
    };
    config.workers = 2;
    config.memory_budget = Some(MemoryBudget::bytes(1));
    config
}

/// Final per-tenant state, read back after the run's last hard kill.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    patterns: BTreeMap<String, Vec<String>>,
    granules: BTreeMap<String, u64>,
}

fn restart(fs: &FaultyFs, config: &ServiceConfig) -> Service {
    Service::start_with_storage(config.clone(), Arc::new(fs.clone()))
}

/// Retries a read-only query until it succeeds (injected one-shot faults
/// drain themselves; anything persistent trips the attempt cap).
fn query(service: &Service, request: &Request, what: &str) -> Response {
    for _ in 0..32 {
        match service.call(request.clone()) {
            Response::Error(_) => {}
            response => return response,
        }
    }
    panic!("{what}: query never succeeded");
}

fn tenant_granules(service: &Service, tenant: &str) -> u64 {
    let request = Request::Checkpoint {
        tenant: tenant.to_string(),
    };
    match query(service, &request, tenant) {
        Response::Checkpoint { granules, .. } => granules,
        other => panic!("{tenant}: expected a checkpoint response, got {other:?}"),
    }
}

fn tenant_patterns(service: &Service, tenant: &str) -> Vec<String> {
    let request = Request::Patterns {
        tenant: tenant.to_string(),
    };
    match query(service, &request, tenant) {
        Response::Patterns { patterns } => patterns,
        other => panic!("{tenant}: expected a patterns response, got {other:?}"),
    }
}

/// Drives the whole workload to acknowledgment over `fs`, hard-killing the
/// daemon on every surfaced error and before each arrival index in
/// `kill_at`, then performs one final kill-crash-recover and reads back
/// every tenant's state. Returns the outcome and how many hard kills the
/// run survived.
fn drive(
    fs: &FaultyFs,
    load: &ServiceLoad,
    config: &ServiceConfig,
    kill_at: &[usize],
) -> (Outcome, u32) {
    let mut service = restart(fs, config);
    let mut kills = 0_u32;
    let mut acked: Vec<u64> = vec![0; load.tenants.len()];
    let hard_kill = |service: Service, acked: &[u64], kills: &mut u32| -> Service {
        service.kill();
        fs.crash();
        fs.clear_faults();
        *kills += 1;
        assert!(*kills < 64, "fault schedule never drained");
        let revived = restart(fs, config);
        // Zero acknowledged-append loss: everything acked before the kill
        // is still there after recovery.
        for (index, tenant) in load.tenants.iter().enumerate() {
            if acked[index] > 0 {
                let granules = tenant_granules(&revived, &tenant.name);
                assert!(
                    granules >= acked[index],
                    "tenant {}: {} acked granules, {} recovered after kill {}",
                    tenant.name,
                    acked[index],
                    granules,
                    *kills
                );
            }
        }
        revived
    };
    for (arrival, &(tenant_index, batch_index)) in load.arrivals.iter().enumerate() {
        if kill_at.contains(&arrival) {
            service = hard_kill(service, &acked, &mut kills);
        }
        let tenant = &load.tenants[tenant_index];
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(
                attempts < 32,
                "tenant {} batch {batch_index}: append never acknowledged",
                tenant.name
            );
            let response = service.call(Request::Append {
                tenant: tenant.name.clone(),
                deadline_ms: 0,
                batch: tenant.batches[batch_index].clone(),
            });
            match response {
                Response::Appended { granules, .. } => {
                    assert!(
                        granules >= acked[tenant_index],
                        "tenant {}: acknowledged granules went backwards",
                        tenant.name
                    );
                    acked[tenant_index] = granules;
                    break;
                }
                Response::Error(_) => {
                    // An unacknowledged append is the client's to retry —
                    // and an error is also a fine moment for a hard kill.
                    service = hard_kill(service, &acked, &mut kills);
                }
                other => panic!("unexpected append response: {other:?}"),
            }
        }
    }
    // Final hard kill: only durable state may count towards the outcome.
    service = hard_kill(service, &acked, &mut kills);
    let mut outcome = Outcome {
        patterns: BTreeMap::new(),
        granules: BTreeMap::new(),
    };
    for tenant in &load.tenants {
        outcome
            .granules
            .insert(tenant.name.clone(), tenant_granules(&service, &tenant.name));
        outcome
            .patterns
            .insert(tenant.name.clone(), tenant_patterns(&service, &tenant.name));
    }
    let stats = service.stats();
    assert!(
        stats.evictions > 0 && stats.rehydrations > 0,
        "the memory budget must force eviction/rehydration churn"
    );
    service.kill();
    (outcome, kills)
}

#[test]
#[cfg_attr(miri, ignore = "multi-run failpoint sweep is too slow under miri")]
fn service_survives_faults_and_hard_kills_at_every_exercised_failpoint() {
    let load = load();
    let config = config(&load);

    // Fault-free baseline (the final verification kill is still applied).
    let baseline_fs = FaultyFs::with_seed(21);
    let (baseline, baseline_kills) = drive(&baseline_fs, &load, &config, &[]);
    assert_eq!(
        baseline_kills, 1,
        "the fault-free run only kills at the end"
    );
    for tenant in &load.tenants {
        let granules = tenant.dataset.dsyb.len() as u64 / tenant.dataset.mapping_factor;
        assert_eq!(
            baseline.granules[&tenant.name], granules,
            "tenant {}: baseline must absorb the whole workload",
            tenant.name
        );
    }
    // Eviction churn must route service I/O through the snapshot and WAL
    // failpoints — otherwise the sweep below would test nothing.
    assert!(baseline_fs.op_count(failpoints::SNAPSHOT_CREATE_TMP) > 0);
    assert!(baseline_fs.op_count(failpoints::WAL_APPEND) > 0);
    assert!(baseline_fs.op_count(failpoints::RECOVER_READ_WAL) > 0);

    // Sweep: an injected failure at (up to 4 of) every failpoint's ops,
    // each run hard-killed on every surfaced error.
    let mut swept = 0_u32;
    let mut kills = 0_u32;
    for fp in failpoints::ALL {
        let count = baseline_fs.op_count(fp);
        if count == 0 {
            continue;
        }
        let stride = (count / 4).max(1);
        let mut nth = 1;
        while nth <= count {
            let fs = FaultyFs::with_seed(21);
            fs.fail_nth(fp, nth);
            let (outcome, run_kills) = drive(&fs, &load, &config, &[]);
            assert_eq!(
                outcome, baseline,
                "failpoint {fp} op #{nth}: tenant state diverged from the fault-free run"
            );
            swept += 1;
            kills += run_kills;
            nth += stride;
        }
    }
    assert!(
        swept >= 20,
        "the sweep covered too few failpoint ops: {swept}"
    );
    assert!(
        kills > swept,
        "injected faults never surfaced as kills ({kills} kills over {swept} runs)"
    );
}

#[test]
#[cfg_attr(miri, ignore = "multi-run kill sweep is too slow under miri")]
fn hard_kills_at_scripted_arrival_points_lose_nothing() {
    let load = load();
    let config = config(&load);
    let baseline_fs = FaultyFs::with_seed(22);
    let (baseline, _) = drive(&baseline_fs, &load, &config, &[]);

    let total = load.arrivals.len();
    for kill_at in [0, 1, total / 2, total - 1] {
        let fs = FaultyFs::with_seed(22);
        let (outcome, kills) = drive(&fs, &load, &config, &[kill_at]);
        assert!(
            kills >= 2,
            "the scripted kill at arrival {kill_at} must fire"
        );
        assert_eq!(
            outcome, baseline,
            "kill at arrival {kill_at}: tenant state diverged from the uninterrupted run"
        );
    }
}
