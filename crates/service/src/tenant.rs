//! Per-tenant state: one [`StreamingPipeline`] plus its durable file pair
//! (snapshot + write-ahead log), the residency machine (live ↔ evicted),
//! and the quarantine latch.
//!
//! A tenant is **live** while its pipeline is in memory and **cold** after
//! the memory-budget enforcer evicted it: eviction takes an atomic, durable
//! snapshot (which also truncates the WAL) and then drops the in-memory
//! state; the next request rehydrates by running the same crash-recovery
//! path a daemon restart uses. Because the snapshot/recover pair is exact,
//! an evicted-and-rehydrated tenant's checkpoints are byte-identical to an
//! unevicted run's.
//!
//! **Quarantine** isolates poisoned input: a panic anywhere in a tenant's
//! mining path, or a typed transform/mining error (which can leave the
//! in-memory absorb half-applied), latches the tenant closed and discards
//! its in-memory state. The durable state — everything previously
//! acknowledged — is untouched and recoverable; the poison batch was never
//! acknowledged. Neighbors never notice.

use crate::protocol::ServiceError;
use freqstpfts::{Pipeline, PipelineError, StreamingPipeline};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use stpm_core::{CheckpointMeta, EngineReport, RetryPolicy, StorageBackend, StpmConfig};
use stpm_timeseries::SymbolicDatabase;

/// Everything tenant operations need from the surrounding service: the
/// shared storage backend, the pipeline parameters every tenant runs with,
/// and the global resident-bytes account the memory budget is enforced on.
pub(crate) struct TenantEnv {
    pub(crate) storage: Arc<dyn StorageBackend + Send + Sync>,
    pub(crate) retry: RetryPolicy,
    pub(crate) mapping_factor: u64,
    pub(crate) thresholds: StpmConfig,
    /// Sum of every tenant's resident-bytes estimate.
    pub(crate) resident_total: AtomicU64,
}

impl std::fmt::Debug for TenantEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantEnv")
            .field("mapping_factor", &self.mapping_factor)
            .field(
                "resident_total",
                &self.resident_total.load(Ordering::Relaxed),
            )
            .finish()
    }
}

/// The state of one tenant, owned by its slot's state mutex.
#[derive(Debug)]
pub(crate) struct TenantState {
    name: String,
    snap_path: PathBuf,
    wal_path: PathBuf,
    /// `Some` while live; `None` while cold (evicted or never touched).
    pipeline: Option<Box<StreamingPipeline>>,
    /// `Some(reason)` once poisoned; latches until the daemon restarts.
    pub(crate) quarantined: Option<String>,
    /// Logical tick of the most recent request — the eviction order.
    pub(crate) last_touch: u64,
    /// This tenant's share of the global resident account.
    resident_bytes: u64,
    pub(crate) evictions: u64,
    pub(crate) rehydrations: u64,
    pub(crate) acked_appends: u64,
    /// WAL records replayed by the most recent recovery.
    pub(crate) replayed_records: u64,
    /// I/O retries of pipelines that were since dropped (evicted or reset),
    /// so the tenant-lifetime counter survives residency transitions.
    io_retries_dropped: u64,
    /// Last known checkpoint position, kept current so stats never need to
    /// rehydrate a cold tenant.
    meta: CheckpointMeta,
}

impl TenantState {
    pub(crate) fn new(name: &str, data_dir: &Path) -> Self {
        let dir = data_dir.join("tenants");
        Self {
            name: name.to_string(),
            snap_path: dir.join(format!("{name}.snap")),
            wal_path: dir.join(format!("{name}.wal")),
            pipeline: None,
            quarantined: None,
            last_touch: 0,
            resident_bytes: 0,
            evictions: 0,
            rehydrations: 0,
            acked_appends: 0,
            replayed_records: 0,
            io_retries_dropped: 0,
            meta: CheckpointMeta {
                checkpoint_id: 0,
                granules_absorbed: 0,
                patterns_interned: 0,
                pending_granules: 0,
                io_retries: 0,
            },
        }
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn is_live(&self) -> bool {
        self.pipeline.is_some()
    }

    pub(crate) fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Tenant-lifetime transient-retry count: dropped pipelines' retries
    /// plus the live pipeline's.
    pub(crate) fn io_retries(&self) -> u64 {
        self.io_retries_dropped + self.pipeline.as_ref().map_or(0, |p| p.io_retries())
    }

    /// Raw instants buffered below a granule boundary; reported as zero
    /// while cold (rehydration replays the WAL, restoring the live value).
    pub(crate) fn pending_instants(&self) -> u64 {
        self.pipeline.as_ref().map_or(0, |p| p.pending_instants())
    }

    pub(crate) fn meta(&self) -> CheckpointMeta {
        self.pipeline
            .as_ref()
            .map_or(self.meta, |p| p.checkpoint_meta())
    }

    /// Refreshes this tenant's share of the global resident account.
    fn account_residency(&mut self, env: &TenantEnv) {
        let now = self.pipeline.as_ref().map_or(0, |p| p.resident_bytes());
        if now >= self.resident_bytes {
            env.resident_total
                .fetch_add(now - self.resident_bytes, Ordering::Relaxed);
        } else {
            env.resident_total
                .fetch_sub(self.resident_bytes - now, Ordering::Relaxed);
        }
        self.resident_bytes = now;
    }

    /// Drops the in-memory pipeline (retry counter preserved) and returns
    /// its resident bytes to the global account.
    fn drop_pipeline(&mut self, env: &TenantEnv) {
        if let Some(pipeline) = self.pipeline.take() {
            self.io_retries_dropped += pipeline.io_retries();
            self.meta = pipeline.checkpoint_meta();
            self.meta.io_retries = 0;
        }
        self.account_residency(env);
    }

    /// Latches the quarantine and discards the (possibly half-mutated)
    /// in-memory state. Durable state is untouched.
    fn quarantine(&mut self, env: &TenantEnv, reason: String) {
        self.drop_pipeline(env);
        self.quarantined = Some(reason);
    }

    /// Brings the tenant live, rehydrating from its durable snapshot + WAL
    /// when cold — the same path a daemon restart takes, so an eviction is
    /// indistinguishable from a crash that lost only volatile state.
    ///
    /// # Errors
    /// [`ServiceError::Quarantined`] for a latched tenant;
    /// [`ServiceError::Tenant`] when recovery fails (the tenant stays cold
    /// and its durable state stays intact, so a later touch retries).
    fn ensure_live(&mut self, env: &TenantEnv) -> Result<(), ServiceError> {
        if let Some(reason) = &self.quarantined {
            return Err(ServiceError::Quarantined {
                reason: reason.clone(),
            });
        }
        if self.pipeline.is_some() {
            return Ok(());
        }
        let mut pipeline = Pipeline::builder()
            .mapping_factor(env.mapping_factor)
            .thresholds(env.thresholds.clone())
            .into_streaming();
        pipeline.set_storage(Arc::clone(&env.storage));
        pipeline.set_retry_policy(env.retry);
        match pipeline.recover(Some(&self.snap_path), &self.wal_path) {
            Ok(report) => {
                if report.restored_granules > 0 || report.replayed_records > 0 {
                    self.rehydrations += 1;
                }
                self.replayed_records = report.replayed_records;
                self.pipeline = Some(Box::new(pipeline));
                self.account_residency(env);
                Ok(())
            }
            Err(e) => Err(ServiceError::Tenant {
                reason: format!("recovery failed: {e}"),
            }),
        }
    }

    /// Appends one symbolized batch: WAL-logged and fsynced before the
    /// checkpoint report (the acknowledgment) is produced.
    ///
    /// Failure routing is the quarantine policy in one place:
    /// * panic, transform or mining error → the in-memory absorb may be
    ///   half-applied → quarantine (durable state intact, batch unacked);
    /// * persistence error → the batch is in memory but *not* durable, so
    ///   the in-memory state is discarded (ahead-of-WAL state must never
    ///   serve reads) and the tenant stays healthy — the caller retries.
    ///
    /// # Errors
    /// Typed [`ServiceError`]s as above; never a panic.
    // lint: durable
    pub(crate) fn append(
        &mut self,
        env: &TenantEnv,
        batch: &SymbolicDatabase,
    ) -> Result<EngineReport, ServiceError> {
        self.ensure_live(env)?;
        let pipeline = self
            .pipeline
            .as_mut()
            .expect("ensure_live returned Ok, so the pipeline is live");
        let outcome = catch_unwind(AssertUnwindSafe(|| pipeline.append_symbolic(batch)));
        let result = match outcome {
            Err(payload) => {
                let reason = format!("panic while absorbing a batch: {}", panic_text(&payload));
                self.quarantine(env, reason.clone());
                return Err(ServiceError::Quarantined { reason });
            }
            Ok(result) => result,
        };
        match result {
            Ok(report) => {
                self.acked_appends += 1;
                self.account_residency(env);
                Ok(report)
            }
            Err(
                e @ (PipelineError::Transform(_)
                | PipelineError::Mining(_)
                | PipelineError::MissingSymbolizer),
            ) => {
                let reason = format!("poisoned input: {e}");
                self.quarantine(env, reason.clone());
                Err(ServiceError::Quarantined { reason })
            }
            Err(e @ PipelineError::Persistence(_)) => {
                self.drop_pipeline(env);
                Err(ServiceError::Tenant {
                    reason: format!("append not durable: {e}"),
                })
            }
        }
    }

    /// The tenant's checkpoint report without appending anything.
    ///
    /// # Errors
    /// As [`TenantState::append`], minus the append-specific routing.
    pub(crate) fn checkpoint(&mut self, env: &TenantEnv) -> Result<EngineReport, ServiceError> {
        self.ensure_live(env)?;
        let pipeline = self
            .pipeline
            .as_mut()
            .expect("ensure_live returned Ok, so the pipeline is live");
        let outcome = catch_unwind(AssertUnwindSafe(|| pipeline.checkpoint()));
        match outcome {
            Err(payload) => {
                let reason = format!("panic while checkpointing: {}", panic_text(&payload));
                self.quarantine(env, reason.clone());
                Err(ServiceError::Quarantined { reason })
            }
            Ok(Ok(report)) => Ok(report),
            Ok(Err(e)) => Err(ServiceError::Tenant {
                reason: format!("checkpoint failed: {e}"),
            }),
        }
    }

    /// Evicts a live tenant: atomic durable snapshot (which truncates the
    /// WAL), then drop the in-memory pipeline. Returns `false` for a tenant
    /// that was already cold.
    ///
    /// # Errors
    /// The snapshot error. The pipeline is then **untouched** — a failed
    /// spill leaves the tenant live and lossless, and the enforcer simply
    /// stays over budget until a later attempt succeeds.
    // lint: durable
    pub(crate) fn evict(&mut self, env: &TenantEnv) -> Result<bool, ServiceError> {
        let Some(pipeline) = self.pipeline.as_mut() else {
            return Ok(false);
        };
        let snap_path = self.snap_path.clone();
        pipeline
            .snapshot_to(&snap_path)
            .map_err(|e| ServiceError::Tenant {
                reason: format!("eviction snapshot failed: {e}"),
            })?;
        self.drop_pipeline(env);
        self.evictions += 1;
        Ok(true)
    }
}

/// Best-effort rendering of a panic payload (they are almost always `&str`
/// or `String`).
fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}
