//! A minimal blocking client for the service wire protocol — used by the
//! integration tests, the service benchmark's latency probe, and
//! `examples/service_demo.rs`.

use crate::protocol::{self, Request, Response};
use crate::stats::ServiceStats;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use stpm_timeseries::SymbolicDatabase;

/// One blocking connection to a service daemon.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    /// Socket connect/clone errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    /// Transport errors, a closed connection, or an undecodable response.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        protocol::write_frame(&mut self.writer, &protocol::encode_request(request))?;
        self.writer.flush()?;
        let Some(frame) = protocol::read_frame(&mut self.reader)? else {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        };
        protocol::decode_response(&frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Appends a symbolized batch for `tenant` (deadline 0 = the server's
    /// default).
    ///
    /// # Errors
    /// As [`Client::call`].
    pub fn append(
        &mut self,
        tenant: &str,
        deadline_ms: u32,
        batch: SymbolicDatabase,
    ) -> io::Result<Response> {
        self.call(&Request::Append {
            tenant: tenant.to_string(),
            deadline_ms,
            batch,
        })
    }

    /// The tenant's current checkpoint summary.
    ///
    /// # Errors
    /// As [`Client::call`].
    pub fn checkpoint(&mut self, tenant: &str) -> io::Result<Response> {
        self.call(&Request::Checkpoint {
            tenant: tenant.to_string(),
        })
    }

    /// The tenant's current canonical pattern set.
    ///
    /// # Errors
    /// As [`Client::call`].
    pub fn patterns(&mut self, tenant: &str) -> io::Result<Response> {
        self.call(&Request::Patterns {
            tenant: tenant.to_string(),
        })
    }

    /// The daemon's observability snapshot.
    ///
    /// # Errors
    /// As [`Client::call`], plus a non-stats response.
    pub fn stats(&mut self) -> io::Result<ServiceStats> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected a stats response, got {other:?}"),
            )),
        }
    }

    /// Asks the daemon to begin a graceful shutdown.
    ///
    /// # Errors
    /// As [`Client::call`].
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.call(&Request::Shutdown)
    }
}
