//! The multi-tenant service core: tenant registry, bounded admission
//! queues, the worker pool, the memory-budget enforcer, and the two ways a
//! daemon stops (graceful drain vs. hard kill).
//!
//! # Scheduling model
//!
//! Each tenant owns a bounded FIFO job queue plus a *scheduled* flag; a
//! shared run queue holds the names of tenants that have work. A tenant is
//! in the run queue at most once, and a worker processes at most one job
//! per dequeue before rescheduling the tenant at the tail — so tenants
//! never starve each other, per-tenant order is strict FIFO, and no two
//! workers ever touch the same tenant's pipeline concurrently.
//!
//! # Admission control
//!
//! Admission is decided at enqueue time against two caps: the per-tenant
//! queue depth and the global queued-job total. Exceeding either yields a
//! typed [`ServiceError::Overloaded`] response immediately — the daemon
//! never buffers unboundedly. Requests carry an optional deadline which is
//! re-checked when a worker dequeues the job; an expired job is answered
//! with [`ServiceError::DeadlineExceeded`] without touching tenant state.
//!
//! # Memory budget
//!
//! After each job a worker compares the global resident-bytes account with
//! the configured [`MemoryBudget`] and evicts coldest-first (least recently
//! touched) until under budget, skipping tenants another worker holds. An
//! evicted tenant's next request transparently rehydrates it; see the
//! internal `tenant` module for why that round trip is byte-exact.

use crate::protocol::{OverloadScope, Request, Response, ServiceError};
use crate::stats::{ServiceStats, TenantStats};
use crate::tenant::{TenantEnv, TenantState};
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use stpm_core::{MemoryBudget, RealFs, RetryPolicy, StorageBackend, StpmConfig};
use stpm_timeseries::SymbolicDatabase;

/// Configuration of a [`Service`]. Every tenant pipeline shares the same
/// mining parameters; robustness knobs (queue depths, budget, deadline,
/// retry policy) are service-wide.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Root directory for durable state; each tenant lives under
    /// `<data_dir>/tenants/<name>.{snap,wal}`.
    pub data_dir: PathBuf,
    /// Mapping factor every tenant pipeline is built with.
    pub mapping_factor: u64,
    /// Mining thresholds every tenant pipeline is built with.
    pub thresholds: StpmConfig,
    /// Worker threads draining the run queue (min 1).
    pub workers: usize,
    /// Per-tenant queued-job cap; exceeding it yields
    /// [`ServiceError::Overloaded`] with [`OverloadScope::Tenant`].
    pub tenant_queue_depth: usize,
    /// Global queued-job cap across all tenants; exceeding it yields
    /// [`ServiceError::Overloaded`] with [`OverloadScope::Global`].
    pub global_queue_depth: usize,
    /// Global cap on resident tenant state; `None` = never evict.
    pub memory_budget: Option<MemoryBudget>,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Retry policy for transient I/O faults, shared by every tenant.
    pub retry: RetryPolicy,
}

impl ServiceConfig {
    /// A config with production-shaped defaults rooted at `data_dir`.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            mapping_factor: 1,
            thresholds: StpmConfig::default(),
            workers: 4,
            tenant_queue_depth: 16,
            global_queue_depth: 1024,
            memory_budget: None,
            default_deadline: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// What a graceful drain accomplished: every tenant it flushed to a
/// durable snapshot, and the ones it could not.
#[derive(Debug, Default)]
pub struct DrainReport {
    /// Tenants whose state was snapshot-flushed (WAL empty afterwards).
    pub flushed: u64,
    /// Tenants that were already fully durable (cold or never touched).
    pub already_durable: u64,
    /// `(tenant, reason)` for every tenant whose final flush failed; its
    /// WAL still holds every acknowledged append, so nothing is lost.
    pub failures: Vec<(String, String)>,
}

/// One queued unit of work for a tenant.
struct Job {
    kind: JobKind,
    enqueued: Instant,
    deadline: Option<Duration>,
    reply: Sender<Response>,
}

enum JobKind {
    Append(SymbolicDatabase),
    Checkpoint,
    Patterns,
}

/// The admission side of a tenant slot, guarded separately from the state
/// mutex so enqueueing never waits behind mining.
struct SlotQueue {
    jobs: VecDeque<Job>,
    /// Whether the tenant's name is currently in the run queue or held by
    /// a worker; guarantees at-most-once scheduling.
    scheduled: bool,
}

struct Slot {
    queue: Mutex<SlotQueue>,
    state: Mutex<TenantState>,
}

impl Slot {
    fn new(name: &str, config: &ServiceConfig) -> Self {
        Self {
            queue: Mutex::new(SlotQueue {
                jobs: VecDeque::new(),
                scheduled: false,
            }),
            state: Mutex::new(TenantState::new(name, &config.data_dir)),
        }
    }
}

const STATE_RUNNING: u8 = 0;
const STATE_DRAINING: u8 = 1;
const STATE_KILLED: u8 = 2;

struct Inner {
    config: ServiceConfig,
    env: TenantEnv,
    /// Tenant name → slot; `BTreeMap` so stats and eviction scans are in
    /// deterministic name order.
    registry: Mutex<BTreeMap<String, Arc<Slot>>>,
    /// Names of tenants with queued work, each present at most once.
    run_queue: Mutex<VecDeque<String>>,
    wake: Condvar,
    /// Jobs admitted but not yet picked up, across all tenants.
    queued_jobs: AtomicUsize,
    run_state: AtomicU8,
    /// Logical clock stamping `last_touch` for the eviction order.
    clock: AtomicU64,
    overloaded_rejections: AtomicU64,
    deadline_rejections: AtomicU64,
}

impl Inner {
    fn run_state(&self) -> u8 {
        self.run_state.load(Ordering::Acquire)
    }

    /// Poison-free lock: the worker never panics while holding these
    /// mutexes (tenant panics are caught inside the state lock's critical
    /// section), so propagating a poison here would only convert one bug
    /// into a daemon-wide outage. Recover the guard instead.
    fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Admits a job for `tenant` or answers immediately with a typed
    /// rejection. Never blocks on tenant state.
    fn enqueue(
        &self,
        tenant: &str,
        kind: JobKind,
        deadline: Option<Duration>,
        reply: &Sender<Response>,
    ) {
        if self.run_state() != STATE_RUNNING {
            let _ = reply.send(Response::Error(ServiceError::ShuttingDown));
            return;
        }
        if let Err(reason) = validate_tenant_name(tenant) {
            let _ = reply.send(Response::Error(ServiceError::BadRequest { reason }));
            return;
        }
        if self.queued_jobs.load(Ordering::Acquire) >= self.config.global_queue_depth {
            self.overloaded_rejections.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Response::Error(ServiceError::Overloaded {
                scope: OverloadScope::Global,
            }));
            return;
        }
        let slot = {
            let mut registry = Self::lock(&self.registry);
            Arc::clone(
                registry
                    .entry(tenant.to_string())
                    .or_insert_with(|| Arc::new(Slot::new(tenant, &self.config))),
            )
        };
        let mut queue = Self::lock(&slot.queue);
        if queue.jobs.len() >= self.config.tenant_queue_depth {
            self.overloaded_rejections.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Response::Error(ServiceError::Overloaded {
                scope: OverloadScope::Tenant,
            }));
            return;
        }
        queue.jobs.push_back(Job {
            kind,
            enqueued: Instant::now(),
            deadline,
            reply: reply.clone(),
        });
        self.queued_jobs.fetch_add(1, Ordering::Release);
        let needs_schedule = !queue.scheduled;
        if needs_schedule {
            queue.scheduled = true;
        }
        drop(queue);
        if needs_schedule {
            Self::lock(&self.run_queue).push_back(tenant.to_string());
            self.wake.notify_one();
        }
    }

    /// The worker thread body: pull a tenant, run one job, reschedule.
    fn worker_loop(self: &Arc<Self>) {
        loop {
            let tenant = {
                let mut queue = Self::lock(&self.run_queue);
                loop {
                    match self.run_state() {
                        STATE_KILLED => return,
                        STATE_DRAINING
                            if queue.is_empty()
                                && self.queued_jobs.load(Ordering::Acquire) == 0 =>
                        {
                            // Nothing queued anywhere and no more arrivals
                            // admitted: wake the other workers so they
                            // observe the same and exit.
                            self.wake.notify_all();
                            return;
                        }
                        _ => {}
                    }
                    if let Some(tenant) = queue.pop_front() {
                        break tenant;
                    }
                    queue = self
                        .wake
                        .wait(queue)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            self.service_tenant(&tenant);
        }
    }

    /// Runs one job of `tenant` and puts the tenant back in the run queue
    /// if more are waiting (clearing the scheduled flag otherwise).
    fn service_tenant(&self, tenant: &str) {
        let Some(slot) = Self::lock(&self.registry).get(tenant).map(Arc::clone) else {
            return;
        };
        let job = Self::lock(&slot.queue).jobs.pop_front();
        if let Some(job) = job {
            self.queued_jobs.fetch_sub(1, Ordering::Release);
            self.run_job(tenant, &slot, job);
        }
        let more = {
            let mut queue = Self::lock(&slot.queue);
            if queue.jobs.is_empty() {
                queue.scheduled = false;
                false
            } else {
                true
            }
        };
        if more {
            Self::lock(&self.run_queue).push_back(tenant.to_string());
            self.wake.notify_one();
        } else if self.run_state() == STATE_DRAINING {
            self.wake.notify_all();
        }
    }

    // The reply `.send` at the bottom is the client-visible acknowledgment;
    // every durable effect of the job (WAL fsync inside `append`, budget
    // eviction snapshots) must land before it.
    // lint: durable
    fn run_job(&self, tenant: &str, slot: &Slot, job: Job) {
        if let Some(deadline) = job.deadline {
            if job.enqueued.elapsed() > deadline {
                self.deadline_rejections.fetch_add(1, Ordering::Relaxed);
                let _ = job
                    .reply
                    .send(Response::Error(ServiceError::DeadlineExceeded));
                return;
            }
        }
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let response = {
            let mut state = Self::lock(&slot.state);
            state.last_touch = tick;
            match job.kind {
                JobKind::Append(batch) => match state.append(&self.env, &batch) {
                    Ok(report) => Response::Appended {
                        granules: state.meta().granules_absorbed,
                        pending_instants: state.pending_instants(),
                        patterns: report.total_patterns() as u64,
                    },
                    Err(e) => Response::Error(e),
                },
                JobKind::Checkpoint => match state.checkpoint(&self.env) {
                    Ok(report) => Response::Checkpoint {
                        granules: state.meta().granules_absorbed,
                        patterns: report.total_patterns() as u64,
                    },
                    Err(e) => Response::Error(e),
                },
                JobKind::Patterns => match state.checkpoint(&self.env) {
                    Ok(report) => Response::Patterns {
                        patterns: report.pattern_set().into_iter().collect(),
                    },
                    Err(e) => Response::Error(e),
                },
            }
        };
        // Enforce the memory budget *before* acknowledging: when the fleet
        // is over budget the daemon pays the spill cost in the request path
        // (backpressure) instead of letting residency run ahead of the
        // budget — and observers see enforced state the moment an ack
        // lands. The state lock is already released; eviction try-locks.
        self.enforce_budget(tenant);
        // A dropped receiver is a disconnected client, not an error.
        let _ = job.reply.send(response);
    }

    /// Evicts least-recently-touched tenants until the resident account is
    /// under budget. `current` (the tenant this worker just served, i.e.
    /// the hottest) is only evicted as a last resort, which keeps the
    /// daemon under budget even when a single tenant's working set exceeds
    /// it.
    fn enforce_budget(&self, current: &str) {
        let Some(budget) = self.config.memory_budget else {
            return;
        };
        let over =
            |env: &TenantEnv| budget.is_exceeded_by(env.resident_total.load(Ordering::Relaxed));
        if !over(&self.env) {
            return;
        }
        let slots: Vec<(String, Arc<Slot>)> = Self::lock(&self.registry)
            .iter()
            .map(|(name, slot)| (name.clone(), Arc::clone(slot)))
            .collect();
        let mut victims: Vec<(u64, String, Arc<Slot>)> = Vec::new();
        for (name, slot) in slots {
            // try_lock: skip tenants another worker is serving right now.
            if let Ok(state) = slot.state.try_lock() {
                if state.is_live() && state.quarantined.is_none() && name != current {
                    victims.push((state.last_touch, name.clone(), Arc::clone(&slot)));
                }
            }
        }
        victims.sort_by_key(|victim| victim.0);
        for (_, _, slot) in &victims {
            if !over(&self.env) {
                return;
            }
            if let Ok(mut state) = slot.state.try_lock() {
                // A failed spill leaves the tenant live; stay over budget
                // and let a later pass retry.
                let _ = state.evict(&self.env);
            }
        }
        if over(&self.env) {
            // Everyone else is cold: spill the current tenant too.
            if let Some(slot) = Self::lock(&self.registry).get(current).map(Arc::clone) {
                if let Ok(mut state) = slot.state.try_lock() {
                    let _ = state.evict(&self.env);
                }
            }
        }
    }

    fn stats(&self) -> ServiceStats {
        let slots: Vec<Arc<Slot>> = Self::lock(&self.registry)
            .values()
            .map(Arc::clone)
            .collect();
        let mut stats = ServiceStats {
            budget_bytes: self.config.memory_budget.map_or(0, |b| b.max_live_bytes()),
            overloaded_rejections: self.overloaded_rejections.load(Ordering::Relaxed),
            deadline_rejections: self.deadline_rejections.load(Ordering::Relaxed),
            ..ServiceStats::default()
        };
        for slot in slots {
            let state = Self::lock(&slot.state);
            let meta = state.meta();
            let tenant = TenantStats {
                name: state.name().to_string(),
                resident: state.is_live(),
                quarantined: state.quarantined.is_some(),
                granules_absorbed: meta.granules_absorbed,
                pending_granules: meta.pending_granules,
                patterns_interned: meta.patterns_interned,
                io_retries: state.io_retries(),
                evictions: state.evictions,
                rehydrations: state.rehydrations,
                resident_bytes: state.resident_bytes(),
                acked_appends: state.acked_appends,
                replayed_records: state.replayed_records,
            };
            stats.resident_bytes += tenant.resident_bytes;
            stats.acked_appends += tenant.acked_appends;
            stats.quarantined_tenants += u64::from(tenant.quarantined);
            stats.evictions += tenant.evictions;
            stats.rehydrations += tenant.rehydrations;
            stats.io_retries += tenant.io_retries;
            stats.tenants.push(tenant);
        }
        // The registry is a BTreeMap, so this is already name-sorted; keep
        // the invariant explicit for readers of `ServiceStats::tenants`.
        stats.tenants.sort_by(|a, b| a.name.cmp(&b.name));
        stats
    }
}

impl std::fmt::Debug for Inner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Inner")
            .field("run_state", &self.run_state())
            .field("queued_jobs", &self.queued_jobs.load(Ordering::Relaxed))
            .finish()
    }
}

/// A running multi-tenant mining service: a worker pool over a registry of
/// independent [`freqstpfts::StreamingPipeline`]s, one per tenant.
///
/// Construct with [`Service::start`] (real filesystem) or
/// [`Service::start_with_storage`] (any backend — chaos tests inject a
/// [`stpm_core::FaultyFs`] here). Stop with [`Service::drain`] (graceful:
/// every acknowledged append flushed to a durable snapshot) or
/// [`Service::kill`] (hard: volatile state abandoned, exactly what a crash
/// leaves behind).
#[derive(Debug)]
pub struct Service {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Starts a service over the real filesystem, creating the data
    /// directory layout if missing.
    ///
    /// # Errors
    /// I/O error creating `<data_dir>/tenants`.
    pub fn start(config: ServiceConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(config.data_dir.join("tenants"))?;
        Ok(Self::start_with_storage(config, Arc::new(RealFs)))
    }

    /// Starts a service over an injected storage backend. The caller is
    /// responsible for any directory layout the backend needs (the
    /// in-memory [`stpm_core::FaultyFs`] needs none).
    #[must_use]
    pub fn start_with_storage(
        config: ServiceConfig,
        storage: Arc<dyn StorageBackend + Send + Sync>,
    ) -> Self {
        let workers = config.workers.max(1);
        let env = TenantEnv {
            storage,
            retry: config.retry,
            mapping_factor: config.mapping_factor,
            thresholds: config.thresholds.clone(),
            resident_total: AtomicU64::new(0),
        };
        let inner = Arc::new(Inner {
            config,
            env,
            registry: Mutex::new(BTreeMap::new()),
            run_queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            queued_jobs: AtomicUsize::new(0),
            run_state: AtomicU8::new(STATE_RUNNING),
            clock: AtomicU64::new(0),
            overloaded_rejections: AtomicU64::new(0),
            deadline_rejections: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("stpm-worker-{i}"))
                    .spawn(move || inner.worker_loop())
                    .expect("spawning a worker thread")
            })
            .collect();
        Self {
            inner,
            workers: handles,
        }
    }

    /// Submits a request and returns the channel its response will arrive
    /// on. Admission rejections (overload, shutdown, bad tenant name) are
    /// delivered through the same channel as typed [`Response::Error`]s,
    /// immediately.
    pub fn submit(&self, request: Request) -> Receiver<Response> {
        let (tx, rx) = channel();
        match request {
            Request::Stats => {
                let _ = tx.send(Response::Stats(self.stats()));
            }
            Request::Shutdown => {
                self.begin_shutdown();
                let _ = tx.send(Response::ShutdownStarted);
            }
            Request::Append {
                tenant,
                deadline_ms,
                batch,
            } => {
                let deadline = if deadline_ms > 0 {
                    Some(Duration::from_millis(u64::from(deadline_ms)))
                } else {
                    self.inner.config.default_deadline
                };
                self.inner
                    .enqueue(&tenant, JobKind::Append(batch), deadline, &tx);
            }
            Request::Checkpoint { tenant } => {
                self.inner.enqueue(&tenant, JobKind::Checkpoint, None, &tx);
            }
            Request::Patterns { tenant } => {
                self.inner.enqueue(&tenant, JobKind::Patterns, None, &tx);
            }
        }
        rx
    }

    /// [`Service::submit`] + blocking receive. A response is always
    /// produced; if the service is killed while the request is queued, the
    /// dropped channel is reported as [`ServiceError::ShuttingDown`].
    pub fn call(&self, request: Request) -> Response {
        self.submit(request)
            .recv()
            .unwrap_or(Response::Error(ServiceError::ShuttingDown))
    }

    /// A consistent observability snapshot.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats()
    }

    /// Stops admitting new requests; already-queued work keeps draining.
    pub fn begin_shutdown(&self) {
        // Never un-kill: drain after kill stays killed.
        let _ = self.inner.run_state.compare_exchange(
            STATE_RUNNING,
            STATE_DRAINING,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
        self.inner.wake.notify_all();
    }

    /// Graceful shutdown: rejects new requests, drains every queued job,
    /// joins the workers, then flushes every tenant to a durable snapshot
    /// (fsyncing as it goes — after a clean drain no WAL replay is needed
    /// on restart).
    // lint: durable
    pub fn drain(mut self) -> DrainReport {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let mut report = DrainReport::default();
        let slots: Vec<Arc<Slot>> = Inner::lock(&self.inner.registry)
            .values()
            .map(Arc::clone)
            .collect();
        for slot in slots {
            let mut state = Inner::lock(&slot.state);
            if !state.is_live() {
                report.already_durable += 1;
                continue;
            }
            match state.evict(&self.inner.env) {
                Ok(true) => report.flushed += 1,
                Ok(false) => report.already_durable += 1,
                Err(e) => report
                    .failures
                    .push((state.name().to_string(), e.to_string())),
            }
        }
        report
    }

    /// Hard stop: workers exit at the next scheduling point, queued jobs
    /// are abandoned (their clients see a closed channel — never an ack),
    /// and **no** tenant state is flushed. Together with
    /// [`stpm_core::FaultyFs::crash`] this models a daemon kill at an
    /// arbitrary instant.
    pub fn kill(mut self) {
        self.inner.run_state.store(STATE_KILLED, Ordering::Release);
        self.inner.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Whether the service still admits new requests.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.inner.run_state() == STATE_RUNNING
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // `drain`/`kill` consume `self` after joining; this covers a
        // `Service` dropped without either — stop the workers so the
        // process can exit.
        if self.workers.is_empty() {
            return;
        }
        self.inner.run_state.store(STATE_KILLED, Ordering::Release);
        self.inner.wake.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Tenant names are path components of durable files; keep them boring.
fn validate_tenant_name(name: &str) -> Result<(), String> {
    if name.is_empty() || name.len() > 128 {
        return Err("tenant name must be 1..=128 bytes".to_string());
    }
    if name.starts_with('.') {
        return Err("tenant name must not start with '.'".to_string());
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.')
    {
        return Err(
            "tenant name may contain only ASCII alphanumerics, '_', '-' and '.'".to_string(),
        );
    }
    Ok(())
}
