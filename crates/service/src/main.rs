//! `stpm-serve`: the multi-tenant streaming mining daemon.
//!
//! ```text
//! stpm-serve --data-dir DIR [--listen ADDR] [--workers N]
//!            [--tenant-queue-depth N] [--global-queue-depth N]
//!            [--memory-budget-bytes N] [--default-deadline-ms N]
//!            [--mapping-factor N]
//! ```
//!
//! The daemon serves the length-prefixed TCP protocol of
//! [`stpm_service::protocol`] until a client sends a shutdown request,
//! then drains gracefully: queued work finishes and every tenant's state
//! is flushed to a durable snapshot before the process exits.

use std::process::ExitCode;
use std::time::Duration;
use stpm_core::MemoryBudget;
use stpm_service::{serve, Service, ServiceConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("stpm-serve: {message}");
            eprintln!(
                "usage: stpm-serve --data-dir DIR [--listen ADDR] [--workers N] \
                 [--tenant-queue-depth N] [--global-queue-depth N] \
                 [--memory-budget-bytes N] [--default-deadline-ms N] [--mapping-factor N]"
            );
            return ExitCode::FAILURE;
        }
    };
    let (config, listen) = parsed;
    let service = match Service::start(config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("stpm-serve: starting the service: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = match serve(service, &listen) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("stpm-serve: binding {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("stpm-serve: listening on {}", handle.addr());
    // Park until a client-initiated shutdown stops the accept loop, then
    // drain: the handle's accept thread exits on the in-band shutdown flag.
    let report = handle.run_to_completion();
    println!(
        "stpm-serve: drained ({} flushed, {} already durable, {} failures)",
        report.flushed,
        report.already_durable,
        report.failures.len()
    );
    for (tenant, reason) in &report.failures {
        eprintln!("stpm-serve: tenant {tenant}: final flush failed: {reason}");
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

type Parsed = (ServiceConfig, String);

fn parse_args(args: &[String]) -> Result<Parsed, String> {
    let mut data_dir: Option<String> = None;
    let mut listen = "127.0.0.1:7171".to_string();
    let mut config_overrides: Vec<(String, u64)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--data-dir" => data_dir = Some(value(&mut i)?),
            "--listen" => listen = value(&mut i)?,
            "--workers"
            | "--tenant-queue-depth"
            | "--global-queue-depth"
            | "--memory-budget-bytes"
            | "--default-deadline-ms"
            | "--mapping-factor" => {
                let raw = value(&mut i)?;
                let parsed: u64 = raw
                    .parse()
                    .map_err(|_| format!("{flag}: not a number: {raw}"))?;
                config_overrides.push((flag.to_string(), parsed));
            }
            other => return Err(format!("unknown flag: {other}")),
        }
        i += 1;
    }
    let data_dir = data_dir.ok_or_else(|| "--data-dir is required".to_string())?;
    let mut config = ServiceConfig::new(data_dir);
    for (flag, v) in config_overrides {
        match flag.as_str() {
            "--workers" => config.workers = usize::try_from(v).unwrap_or(usize::MAX),
            "--tenant-queue-depth" => {
                config.tenant_queue_depth = usize::try_from(v).unwrap_or(usize::MAX);
            }
            "--global-queue-depth" => {
                config.global_queue_depth = usize::try_from(v).unwrap_or(usize::MAX);
            }
            "--memory-budget-bytes" => config.memory_budget = Some(MemoryBudget::bytes(v)),
            "--default-deadline-ms" => {
                config.default_deadline = Some(Duration::from_millis(v));
            }
            "--mapping-factor" => config.mapping_factor = v,
            _ => unreachable!("validated above"),
        }
    }
    Ok((config, listen))
}
