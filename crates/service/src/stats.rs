//! Observability snapshot of a running service: per-tenant counters
//! (reusing the pipeline's [`CheckpointMeta`](stpm_core::CheckpointMeta) and
//! [`RecoveryReport`](freqstpfts::RecoveryReport) fields) plus service-wide
//! admission-control and degradation totals.
//!
//! Everything here is plain data: the service assembles a snapshot under its
//! registry locks and the caller is free to keep it, diff it, or ship it over
//! the wire (see [`crate::protocol`]). Tenants are reported in name order so
//! two snapshots of the same state are byte-identical.

/// Counters of one tenant, frozen at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Whether the tenant's pipeline is currently live in memory (`false`
    /// while evicted to its snapshot file).
    pub resident: bool,
    /// Whether the tenant is quarantined (poisoned input or a panic).
    pub quarantined: bool,
    /// Granules absorbed into the tenant's miner so far.
    pub granules_absorbed: u64,
    /// Granules absorbed since the tenant's most recent snapshot.
    pub pending_granules: u64,
    /// Distinct patterns interned by the tenant's miner.
    pub patterns_interned: u64,
    /// Transient I/O retries absorbed by the tenant's persistence layer.
    pub io_retries: u64,
    /// Times this tenant was evicted to its snapshot file.
    pub evictions: u64,
    /// Times this tenant was rehydrated from durable state on touch
    /// (including its first load after a daemon restart).
    pub rehydrations: u64,
    /// Approximate bytes of in-memory state (zero while evicted).
    pub resident_bytes: u64,
    /// Appends acknowledged for this tenant since the daemon started.
    pub acked_appends: u64,
    /// WAL records replayed by the tenant's most recent recovery.
    pub replayed_records: u64,
}

/// Service-wide counters plus one [`TenantStats`] entry per known tenant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Per-tenant counters, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
    /// Approximate bytes of tenant state currently live in memory.
    pub resident_bytes: u64,
    /// The configured global memory budget (0 = unlimited).
    pub budget_bytes: u64,
    /// Appends acknowledged across all tenants.
    pub acked_appends: u64,
    /// Requests rejected with a typed `Overloaded` response (admission
    /// control doing its job — these are *not* failures of the daemon).
    pub overloaded_rejections: u64,
    /// Requests cancelled because their deadline expired before a worker
    /// picked them up.
    pub deadline_rejections: u64,
    /// Tenants currently quarantined.
    pub quarantined_tenants: u64,
    /// Cold-tenant evictions performed by the memory-budget enforcer.
    pub evictions: u64,
    /// Tenant rehydrations (evicted state loaded back on touch).
    pub rehydrations: u64,
    /// Transient I/O retries absorbed across all tenants.
    pub io_retries: u64,
}

impl ServiceStats {
    /// The stats entry of one tenant, if the tenant is known.
    #[must_use]
    pub fn tenant(&self, name: &str) -> Option<&TenantStats> {
        self.tenants.iter().find(|t| t.name == name)
    }
}
