//! `stpm-service`: a multi-tenant streaming service tier over the
//! FreqSTPfTS pipeline.
//!
//! The daemon owns many independent
//! [`StreamingPipeline`](freqstpfts::StreamingPipeline)s — one per tenant —
//! and serves concurrent appends and checkpoint/pattern queries over a
//! small length-prefixed TCP protocol, dependency-free on `std::net`.
//!
//! The robustness contract, in one place:
//!
//! * **Bounded queues everywhere.** Admission control rejects work with a
//!   typed [`ServiceError::Overloaded`](protocol::ServiceError) response
//!   (per-tenant or global scope) instead of buffering unboundedly.
//! * **Deadlines.** A request may carry a deadline; a job whose deadline
//!   expired before a worker picked it up is cancelled with a typed
//!   response and never touches tenant state.
//! * **Memory budget.** A global budget caps resident tenant state; cold
//!   tenants are evicted to their snapshot files and transparently
//!   rehydrated on next touch, with checkpoints byte-identical to an
//!   unevicted run.
//! * **Fault isolation.** Poisoned input quarantines only its own tenant;
//!   the daemon and all neighbors keep serving.
//! * **Durability before acknowledgment.** An append is acknowledged only
//!   after its WAL record is fsynced (the pipeline's contract), and a
//!   graceful [`Service::drain`] flushes every tenant to a durable snapshot
//!   before exit. A hard kill loses only unacknowledged work.
//!
//! Crate layout: [`protocol`] (wire format), [`service`] (registry, worker
//! pool, admission, eviction), `tenant` (internal: per-tenant residency +
//! quarantine), [`server`]/[`client`] (TCP), [`stats`] (observability).

pub mod client;
pub mod protocol;
pub mod server;
pub mod service;
pub mod stats;
mod tenant;

pub use client::Client;
pub use protocol::{OverloadScope, Request, Response, ServiceError};
pub use server::{serve, ServerHandle};
pub use service::{DrainReport, Service, ServiceConfig};
pub use stats::{ServiceStats, TenantStats};
