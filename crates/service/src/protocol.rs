//! The service wire protocol: length-prefixed frames over any byte stream,
//! dependency-free.
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload; payloads are capped at [`MAX_FRAME_BYTES`] so a malformed or
//! hostile peer cannot make the daemon buffer unboundedly. Payloads start
//! with a one-byte opcode (requests) or tag (responses); strings and
//! integers use the same [`ByteWriter`]/[`ByteReader`] primitives as the
//! snapshot format, so torn or corrupt frames surface as typed errors,
//! never panics.
//!
//! Appends carry already-symbolized batches (the same shape the streaming
//! pipeline's WAL logs): per series its name, alphabet and new symbols.
//! Symbol ids are validated against the alphabet at decode time; batches
//! that are shape-valid but semantically wrong for a tenant (a different
//! series set, say) are the tenant's problem — and its quarantine, not its
//! neighbors'.

use crate::stats::{ServiceStats, TenantStats};
use std::io::{self, Read, Write};
use stpm_core::snapshot::{ByteReader, ByteWriter};
use stpm_core::{Error as CoreError, Result as CoreResult};
use stpm_timeseries::{Alphabet, SymbolId, SymbolicDatabase, SymbolicSeries};

/// Version byte leading every payload; bumped on incompatible changes.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on a single frame payload. Larger frames are rejected before
/// any allocation happens.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

const OP_APPEND: u8 = 1;
const OP_CHECKPOINT: u8 = 2;
const OP_PATTERNS: u8 = 3;
const OP_STATS: u8 = 4;
const OP_SHUTDOWN: u8 = 5;

const RESP_APPENDED: u8 = 1;
const RESP_CHECKPOINT: u8 = 2;
const RESP_PATTERNS: u8 = 3;
const RESP_STATS: u8 = 4;
const RESP_SHUTDOWN: u8 = 5;
const RESP_ERROR: u8 = 6;

const ERR_OVERLOADED_TENANT: u8 = 1;
const ERR_OVERLOADED_GLOBAL: u8 = 2;
const ERR_DEADLINE: u8 = 3;
const ERR_QUARANTINED: u8 = 4;
const ERR_SHUTTING_DOWN: u8 = 5;
const ERR_BAD_REQUEST: u8 = 6;
const ERR_TENANT: u8 = 7;

/// Which bounded queue rejected an admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadScope {
    /// The tenant's own queue is full — this tenant is too fast, its
    /// neighbors are unaffected.
    Tenant,
    /// The service-wide queue is full.
    Global,
}

/// A typed service failure. Every variant is an *expected* protocol
/// outcome: the daemon stays up and the connection stays usable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control rejected the request; retry with backoff.
    Overloaded {
        /// Which queue was full.
        scope: OverloadScope,
    },
    /// The request's deadline expired before a worker picked it up; the
    /// request was cancelled without touching tenant state.
    DeadlineExceeded,
    /// The tenant is quarantined; its durable state is intact but it
    /// accepts no further work until the daemon is restarted.
    Quarantined {
        /// What poisoned the tenant.
        reason: String,
    },
    /// The daemon is draining; no new work is admitted.
    ShuttingDown,
    /// The request itself was malformed.
    BadRequest {
        /// What failed to validate.
        reason: String,
    },
    /// A tenant-scoped failure that did *not* quarantine the tenant (e.g.
    /// a persistence error after retries); the tenant stays live.
    Tenant {
        /// The underlying failure.
        reason: String,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded {
                scope: OverloadScope::Tenant,
            } => write!(f, "overloaded: the tenant queue is full"),
            ServiceError::Overloaded {
                scope: OverloadScope::Global,
            } => write!(f, "overloaded: the global queue is full"),
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded before scheduling"),
            ServiceError::Quarantined { reason } => write!(f, "tenant quarantined: {reason}"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServiceError::Tenant { reason } => write!(f, "tenant error: {reason}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A request a client submits to the service.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Append a symbolized batch to one tenant's stream.
    Append {
        /// Target tenant.
        tenant: String,
        /// Deadline in milliseconds from submission (0 = none).
        deadline_ms: u32,
        /// The new samples, one entry per series of the tenant's stream.
        batch: SymbolicDatabase,
    },
    /// Ask for the tenant's checkpoint position without appending.
    Checkpoint {
        /// Target tenant.
        tenant: String,
    },
    /// Ask for the tenant's current seasonal pattern set.
    Patterns {
        /// Target tenant.
        tenant: String,
    },
    /// Ask for the service-wide stats snapshot.
    Stats,
    /// Start a graceful drain: finish queued work, flush every tenant,
    /// then exit.
    Shutdown,
}

/// What the service answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The append is durable (WAL fsynced) and mined.
    Appended {
        /// Complete granules absorbed so far.
        granules: u64,
        /// Raw instants still pending (not yet a complete granule).
        pending_instants: u64,
        /// Frequent seasonal patterns at this checkpoint.
        patterns: u64,
    },
    /// Checkpoint position of a tenant.
    Checkpoint {
        /// Complete granules absorbed so far.
        granules: u64,
        /// Frequent seasonal patterns at this checkpoint.
        patterns: u64,
    },
    /// The tenant's current canonical pattern set.
    Patterns {
        /// One canonical rendering per frequent pattern.
        patterns: Vec<String>,
    },
    /// Service-wide stats snapshot.
    Stats(ServiceStats),
    /// The drain has started; the connection will close once it completes.
    ShutdownStarted,
    /// A typed failure.
    Error(ServiceError),
}

/// Writes one length-prefixed frame.
///
/// # Errors
/// Propagates writer errors; rejects payloads above [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME_BYTES",
        ));
    }
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidInput, "frame length does not fit u32")
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame; `Ok(None)` on a clean EOF before the
/// length prefix (the peer hung up between frames).
///
/// # Errors
/// Propagates reader errors; an EOF in the middle of a frame and an
/// oversized length prefix are `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled < len_buf.len() {
        // lint:allow(no-panic-decode): the loop guard holds filled < 4, so this range slice of the fixed header buffer cannot panic
        let n = r.read(&mut len_buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "connection closed inside a frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_BYTES",
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn corrupt(reason: String) -> CoreError {
    CoreError::SnapshotCorrupt { reason }
}

fn write_batch(w: &mut ByteWriter, batch: &SymbolicDatabase) {
    w.put_u32(u32::try_from(batch.num_series()).unwrap_or(u32::MAX));
    for series in batch.series() {
        w.put_str(series.name());
        let labels = series.alphabet().labels();
        w.put_u16(u16::try_from(labels.len()).unwrap_or(u16::MAX));
        for label in labels {
            w.put_str(label);
        }
        w.put_u64(series.len() as u64);
        for symbol in series.symbols() {
            w.put_u16(symbol.0);
        }
    }
}

fn read_batch(r: &mut ByteReader<'_>) -> CoreResult<SymbolicDatabase> {
    let num_series = r.take_u32()?;
    let mut series = Vec::new();
    for _ in 0..num_series {
        let name = r.take_str()?;
        let num_labels = r.take_u16()?;
        let mut labels = Vec::new();
        for _ in 0..num_labels {
            labels.push(r.take_str()?);
        }
        let alphabet = Alphabet::new(labels)
            .map_err(|e| corrupt(format!("batch series {name}: invalid alphabet: {e}")))?;
        let len = r.take_u64()?;
        let mut symbols = Vec::new();
        for _ in 0..len {
            let raw = r.take_u16()?;
            if raw as usize >= alphabet.len() {
                return Err(corrupt(format!(
                    "batch series {name}: symbol {raw} outside its alphabet of {} labels",
                    alphabet.len()
                )));
            }
            symbols.push(SymbolId(raw));
        }
        series.push(SymbolicSeries::new(name, symbols, alphabet));
    }
    SymbolicDatabase::new(series).map_err(|e| corrupt(format!("batch is not a database: {e}")))
}

/// Encodes a request payload (framing is [`write_frame`]'s job).
#[must_use]
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(PROTOCOL_VERSION);
    match req {
        Request::Append {
            tenant,
            deadline_ms,
            batch,
        } => {
            w.put_u8(OP_APPEND);
            w.put_str(tenant);
            w.put_u32(*deadline_ms);
            write_batch(&mut w, batch);
        }
        Request::Checkpoint { tenant } => {
            w.put_u8(OP_CHECKPOINT);
            w.put_str(tenant);
        }
        Request::Patterns { tenant } => {
            w.put_u8(OP_PATTERNS);
            w.put_str(tenant);
        }
        Request::Stats => w.put_u8(OP_STATS),
        Request::Shutdown => w.put_u8(OP_SHUTDOWN),
    }
    w.into_bytes()
}

/// Decodes a request payload.
///
/// # Errors
/// Typed [`CoreError`]s on truncation, version mismatch, unknown opcodes,
/// or invalid batch contents — never a panic.
pub fn decode_request(bytes: &[u8]) -> CoreResult<Request> {
    let mut r = ByteReader::new(bytes, "service request");
    let version = r.take_u8()?;
    if version != PROTOCOL_VERSION {
        return Err(CoreError::SnapshotVersion {
            found: u32::from(version),
            supported: u32::from(PROTOCOL_VERSION),
        });
    }
    let op = r.take_u8()?;
    let req = match op {
        OP_APPEND => {
            let tenant = r.take_str()?;
            let deadline_ms = r.take_u32()?;
            let batch = read_batch(&mut r)?;
            Request::Append {
                tenant,
                deadline_ms,
                batch,
            }
        }
        OP_CHECKPOINT => Request::Checkpoint {
            tenant: r.take_str()?,
        },
        OP_PATTERNS => Request::Patterns {
            tenant: r.take_str()?,
        },
        OP_STATS => Request::Stats,
        OP_SHUTDOWN => Request::Shutdown,
        other => return Err(corrupt(format!("unknown request opcode {other}"))),
    };
    r.finish()?;
    Ok(req)
}

fn write_error(w: &mut ByteWriter, err: &ServiceError) {
    match err {
        ServiceError::Overloaded { scope } => {
            w.put_u8(match scope {
                OverloadScope::Tenant => ERR_OVERLOADED_TENANT,
                OverloadScope::Global => ERR_OVERLOADED_GLOBAL,
            });
        }
        ServiceError::DeadlineExceeded => w.put_u8(ERR_DEADLINE),
        ServiceError::Quarantined { reason } => {
            w.put_u8(ERR_QUARANTINED);
            w.put_str(reason);
        }
        ServiceError::ShuttingDown => w.put_u8(ERR_SHUTTING_DOWN),
        ServiceError::BadRequest { reason } => {
            w.put_u8(ERR_BAD_REQUEST);
            w.put_str(reason);
        }
        ServiceError::Tenant { reason } => {
            w.put_u8(ERR_TENANT);
            w.put_str(reason);
        }
    }
}

fn read_error(r: &mut ByteReader<'_>) -> CoreResult<ServiceError> {
    let code = r.take_u8()?;
    Ok(match code {
        ERR_OVERLOADED_TENANT => ServiceError::Overloaded {
            scope: OverloadScope::Tenant,
        },
        ERR_OVERLOADED_GLOBAL => ServiceError::Overloaded {
            scope: OverloadScope::Global,
        },
        ERR_DEADLINE => ServiceError::DeadlineExceeded,
        ERR_QUARANTINED => ServiceError::Quarantined {
            reason: r.take_str()?,
        },
        ERR_SHUTTING_DOWN => ServiceError::ShuttingDown,
        ERR_BAD_REQUEST => ServiceError::BadRequest {
            reason: r.take_str()?,
        },
        ERR_TENANT => ServiceError::Tenant {
            reason: r.take_str()?,
        },
        other => return Err(corrupt(format!("unknown error code {other}"))),
    })
}

fn write_tenant_stats(w: &mut ByteWriter, t: &TenantStats) {
    w.put_str(&t.name);
    w.put_u8(u8::from(t.resident));
    w.put_u8(u8::from(t.quarantined));
    w.put_u64(t.granules_absorbed);
    w.put_u64(t.pending_granules);
    w.put_u64(t.patterns_interned);
    w.put_u64(t.io_retries);
    w.put_u64(t.evictions);
    w.put_u64(t.rehydrations);
    w.put_u64(t.resident_bytes);
    w.put_u64(t.acked_appends);
    w.put_u64(t.replayed_records);
}

fn read_tenant_stats(r: &mut ByteReader<'_>) -> CoreResult<TenantStats> {
    Ok(TenantStats {
        name: r.take_str()?,
        resident: r.take_u8()? != 0,
        quarantined: r.take_u8()? != 0,
        granules_absorbed: r.take_u64()?,
        pending_granules: r.take_u64()?,
        patterns_interned: r.take_u64()?,
        io_retries: r.take_u64()?,
        evictions: r.take_u64()?,
        rehydrations: r.take_u64()?,
        resident_bytes: r.take_u64()?,
        acked_appends: r.take_u64()?,
        replayed_records: r.take_u64()?,
    })
}

/// Encodes a response payload.
#[must_use]
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(PROTOCOL_VERSION);
    match resp {
        Response::Appended {
            granules,
            pending_instants,
            patterns,
        } => {
            w.put_u8(RESP_APPENDED);
            w.put_u64(*granules);
            w.put_u64(*pending_instants);
            w.put_u64(*patterns);
        }
        Response::Checkpoint { granules, patterns } => {
            w.put_u8(RESP_CHECKPOINT);
            w.put_u64(*granules);
            w.put_u64(*patterns);
        }
        Response::Patterns { patterns } => {
            w.put_u8(RESP_PATTERNS);
            w.put_u32(u32::try_from(patterns.len()).unwrap_or(u32::MAX));
            for p in patterns {
                w.put_str(p);
            }
        }
        Response::Stats(stats) => {
            w.put_u8(RESP_STATS);
            w.put_u64(stats.resident_bytes);
            w.put_u64(stats.budget_bytes);
            w.put_u64(stats.acked_appends);
            w.put_u64(stats.overloaded_rejections);
            w.put_u64(stats.deadline_rejections);
            w.put_u64(stats.quarantined_tenants);
            w.put_u64(stats.evictions);
            w.put_u64(stats.rehydrations);
            w.put_u64(stats.io_retries);
            w.put_u32(u32::try_from(stats.tenants.len()).unwrap_or(u32::MAX));
            for t in &stats.tenants {
                write_tenant_stats(&mut w, t);
            }
        }
        Response::ShutdownStarted => w.put_u8(RESP_SHUTDOWN),
        Response::Error(err) => {
            w.put_u8(RESP_ERROR);
            write_error(&mut w, err);
        }
    }
    w.into_bytes()
}

/// Decodes a response payload.
///
/// # Errors
/// Typed [`CoreError`]s on truncation, version mismatch or unknown tags —
/// never a panic.
pub fn decode_response(bytes: &[u8]) -> CoreResult<Response> {
    let mut r = ByteReader::new(bytes, "service response");
    let version = r.take_u8()?;
    if version != PROTOCOL_VERSION {
        return Err(CoreError::SnapshotVersion {
            found: u32::from(version),
            supported: u32::from(PROTOCOL_VERSION),
        });
    }
    let tag = r.take_u8()?;
    let resp = match tag {
        RESP_APPENDED => Response::Appended {
            granules: r.take_u64()?,
            pending_instants: r.take_u64()?,
            patterns: r.take_u64()?,
        },
        RESP_CHECKPOINT => Response::Checkpoint {
            granules: r.take_u64()?,
            patterns: r.take_u64()?,
        },
        RESP_PATTERNS => {
            let count = r.take_u32()?;
            let mut patterns = Vec::new();
            for _ in 0..count {
                patterns.push(r.take_str()?);
            }
            Response::Patterns { patterns }
        }
        RESP_STATS => {
            let resident_bytes = r.take_u64()?;
            let budget_bytes = r.take_u64()?;
            let acked_appends = r.take_u64()?;
            let overloaded_rejections = r.take_u64()?;
            let deadline_rejections = r.take_u64()?;
            let quarantined_tenants = r.take_u64()?;
            let evictions = r.take_u64()?;
            let rehydrations = r.take_u64()?;
            let io_retries = r.take_u64()?;
            let count = r.take_u32()?;
            let mut tenants = Vec::new();
            for _ in 0..count {
                tenants.push(read_tenant_stats(&mut r)?);
            }
            Response::Stats(ServiceStats {
                tenants,
                resident_bytes,
                budget_bytes,
                acked_appends,
                overloaded_rejections,
                deadline_rejections,
                quarantined_tenants,
                evictions,
                rehydrations,
                io_retries,
            })
        }
        RESP_SHUTDOWN => Response::ShutdownStarted,
        RESP_ERROR => Response::Error(read_error(&mut r)?),
        other => return Err(corrupt(format!("unknown response tag {other}"))),
    };
    r.finish()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> SymbolicDatabase {
        let alphabet = Alphabet::from_strs(&["lo", "hi"]).unwrap();
        SymbolicDatabase::new(vec![
            SymbolicSeries::new("a".into(), vec![SymbolId(0), SymbolId(1)], alphabet.clone()),
            SymbolicSeries::new("b".into(), vec![SymbolId(1), SymbolId(1)], alphabet),
        ])
        .unwrap()
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Append {
                tenant: "t-1".into(),
                deadline_ms: 250,
                batch: sample_batch(),
            },
            Request::Checkpoint { tenant: "t".into() },
            Request::Patterns { tenant: "t".into() },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in requests {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Appended {
                granules: 7,
                pending_instants: 2,
                patterns: 3,
            },
            Response::Checkpoint {
                granules: 7,
                patterns: 3,
            },
            Response::Patterns {
                patterns: vec!["p1".into(), "p2".into()],
            },
            Response::Stats(ServiceStats {
                tenants: vec![TenantStats {
                    name: "t".into(),
                    resident: true,
                    quarantined: false,
                    granules_absorbed: 9,
                    pending_granules: 1,
                    patterns_interned: 4,
                    io_retries: 2,
                    evictions: 1,
                    rehydrations: 1,
                    resident_bytes: 4096,
                    acked_appends: 5,
                    replayed_records: 0,
                }],
                resident_bytes: 4096,
                budget_bytes: 1 << 20,
                acked_appends: 5,
                overloaded_rejections: 1,
                deadline_rejections: 1,
                quarantined_tenants: 0,
                evictions: 1,
                rehydrations: 1,
                io_retries: 2,
            }),
            Response::ShutdownStarted,
            Response::Error(ServiceError::Overloaded {
                scope: OverloadScope::Tenant,
            }),
            Response::Error(ServiceError::Quarantined {
                reason: "poisoned".into(),
            }),
        ];
        for resp in responses {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = &buf[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"");
        assert!(read_frame(&mut cursor).unwrap().is_none());

        let mut oversized = Vec::new();
        oversized.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = &oversized[..];
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn corrupt_payloads_surface_typed_errors() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[PROTOCOL_VERSION, 99]).is_err());
        assert!(decode_response(&[PROTOCOL_VERSION]).is_err());
        // Truncate a valid request at every length: decoding must never
        // panic and must fail for every proper prefix.
        let bytes = encode_request(&Request::Append {
            tenant: "t".into(),
            deadline_ms: 0,
            batch: sample_batch(),
        });
        for len in 0..bytes.len() {
            assert!(decode_request(&bytes[..len]).is_err(), "prefix {len}");
        }
        // A symbol outside its alphabet is rejected at decode time.
        let alphabet = Alphabet::from_strs(&["only"]).unwrap();
        let bad = SymbolicDatabase::new(vec![SymbolicSeries::new(
            "a".into(),
            vec![SymbolId(7)],
            alphabet,
        )])
        .unwrap();
        let bytes = encode_request(&Request::Append {
            tenant: "t".into(),
            deadline_ms: 0,
            batch: bad,
        });
        assert!(decode_request(&bytes).is_err());
    }
}
