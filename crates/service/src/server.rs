//! The TCP front end: a length-prefixed frame protocol (see
//! [`crate::protocol`]) over `std::net`, one handler thread per
//! connection, all requests funneled into the shared [`Service`].
//!
//! The listener thread polls a nonblocking accept loop so a shutdown
//! request (in-band `OP_SHUTDOWN` or [`ServerHandle::shutdown`]) can stop
//! it promptly; connection handlers exit when their peer hangs up or when
//! the service stops admitting work.

use crate::protocol::{self, Request, Response, ServiceError};
use crate::service::{DrainReport, Service};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running TCP server wrapping a [`Service`].
///
/// Dropping the handle without calling [`ServerHandle::drain`] performs a
/// hard stop (workers abandoned), mirroring [`Service`]'s drop behavior.
pub struct ServerHandle {
    service: Arc<Service>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish()
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and serves
/// `service` until shut down.
///
/// # Errors
/// Binding or configuring the listener socket.
pub fn serve(service: Service, addr: &str) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local = listener.local_addr()?;
    let service = Arc::new(service);
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("stpm-accept".to_string())
            .spawn(move || accept_loop(&listener, &service, &stop))
            .expect("spawning the accept thread")
    };
    Ok(ServerHandle {
        service,
        addr: local,
        stop,
        accept_thread: Some(accept_thread),
    })
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until an in-band shutdown request (or an earlier
    /// [`ServerHandle::shutdown`]) stops the accept loop, then drains the
    /// service gracefully: queued work finishes and every tenant is
    /// flushed to a durable snapshot before this returns.
    #[must_use]
    pub fn run_to_completion(mut self) -> DrainReport {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.drain()
    }

    /// Stops accepting connections, then drains the service gracefully:
    /// queued work finishes and every tenant is flushed to a durable
    /// snapshot before this returns.
    #[must_use]
    pub fn drain(mut self) -> DrainReport {
        self.shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let mut service = Arc::clone(&self.service);
        drop(self); // release our own Arc before unwrapping
                    // Lingering connection handlers each hold an Arc for a moment
                    // after the accept loop joined them; wait those clones out.
        for _ in 0..500 {
            match Arc::try_unwrap(service) {
                Ok(service) => return service.drain(),
                Err(still_shared) => {
                    still_shared.begin_shutdown();
                    service = still_shared;
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        // Give up after ~5s: the service keeps rejecting new work and its
        // WAL already holds every acknowledged append, so nothing is lost;
        // only the final snapshot flush is skipped.
        DrainReport::default()
    }

    /// Signals the accept loop to stop and the service to reject new work.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
        self.service.begin_shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("stpm-conn".to_string())
                    .spawn(move || {
                        let _ = handle_connection(stream, &service, &stop);
                    })
                {
                    handlers.push(handle);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// Serves one connection: read frame → decode → service → encode → write
/// frame, until EOF, a protocol error, or shutdown.
fn handle_connection(stream: TcpStream, service: &Service, stop: &AtomicBool) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let Some(frame) = protocol::read_frame(&mut reader)? else {
            return Ok(()); // clean EOF
        };
        let response = match protocol::decode_request(&frame) {
            Ok(request) => {
                let is_shutdown = matches!(request, Request::Shutdown);
                let response = service.call(request);
                if is_shutdown {
                    stop.store(true, Ordering::Release);
                }
                response
            }
            Err(e) => Response::Error(ServiceError::BadRequest {
                reason: e.to_string(),
            }),
        };
        protocol::write_frame(&mut writer, &protocol::encode_response(&response))?;
        writer.flush()?;
    }
}
