//! Transactional view of a temporal sequence database.
//!
//! PS-growth operates on a transactional database: transaction `t_i` is the
//! set of distinct events occurring in granule `H_i` of `D_SEQ`. The temporal
//! detail (instances and their intervals) is deliberately dropped here — it
//! is recovered in phase 2 of APS-growth by re-scanning `D_SEQ`.

use stpm_timeseries::{EventLabel, GranulePos, SequenceDatabase};

/// A transactional database: one sorted item list per granule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionDb {
    transactions: Vec<(GranulePos, Vec<EventLabel>)>,
}

impl TransactionDb {
    /// Builds the transactional view of `dseq`.
    #[must_use]
    pub fn from_sequences(dseq: &SequenceDatabase) -> Self {
        let transactions = dseq
            .sequences()
            .iter()
            .map(|seq| (seq.granule(), seq.distinct_events()))
            .collect();
        Self { transactions }
    }

    /// Builds a transactional database directly from item lists (1-based
    /// granule positions are assigned sequentially). Convenient in tests.
    #[must_use]
    pub fn from_items(items: Vec<Vec<EventLabel>>) -> Self {
        let transactions = items
            .into_iter()
            .enumerate()
            .map(|(i, mut t)| {
                t.sort_unstable();
                t.dedup();
                (i as GranulePos + 1, t)
            })
            .collect();
        Self { transactions }
    }

    /// Number of transactions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the database holds no transactions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transactions as `(granule, items)` pairs.
    #[must_use]
    pub fn transactions(&self) -> &[(GranulePos, Vec<EventLabel>)] {
        &self.transactions
    }

    /// Support (number of containing transactions) of a single item.
    #[must_use]
    pub fn item_support(&self, item: EventLabel) -> u64 {
        self.transactions
            .iter()
            .filter(|(_, items)| items.contains(&item))
            .count() as u64
    }

    /// All distinct items of the database.
    #[must_use]
    pub fn distinct_items(&self) -> Vec<EventLabel> {
        let mut items: Vec<EventLabel> = self
            .transactions
            .iter()
            .flat_map(|(_, t)| t.iter().copied())
            .collect();
        items.sort_unstable();
        items.dedup();
        items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_timeseries::{Alphabet, SeriesId, SymbolId, SymbolicDatabase, SymbolicSeries};

    fn label(series: u32, symbol: u16) -> EventLabel {
        EventLabel::new(SeriesId(series), SymbolId(symbol))
    }

    #[test]
    fn from_sequences_builds_one_transaction_per_granule() {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let c = SymbolicSeries::from_labels("C", &["1", "1", "0", "0", "0", "0"], alphabet.clone())
            .unwrap();
        let d =
            SymbolicSeries::from_labels("D", &["1", "0", "0", "1", "1", "1"], alphabet).unwrap();
        let dseq = SymbolicDatabase::new(vec![c, d])
            .unwrap()
            .to_sequence_database(3)
            .unwrap();
        let db = TransactionDb::from_sequences(&dseq);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        // Granule 1 holds C:1, C:0, D:1, D:0.
        assert_eq!(db.transactions()[0].1.len(), 4);
        // Granule 2 holds C:0 and D:1 only.
        assert_eq!(db.transactions()[1].1, vec![label(0, 0), label(1, 1)]);
        assert_eq!(db.item_support(label(0, 0)), 2);
        assert_eq!(db.item_support(label(0, 1)), 1);
        assert_eq!(db.distinct_items().len(), 4);
    }

    #[test]
    fn from_items_sorts_and_dedups() {
        let db = TransactionDb::from_items(vec![
            vec![label(1, 0), label(0, 0), label(1, 0)],
            vec![label(0, 0)],
        ]);
        assert_eq!(db.transactions()[0].1, vec![label(0, 0), label(1, 0)]);
        assert_eq!(db.transactions()[0].0, 1);
        assert_eq!(db.transactions()[1].0, 2);
        assert_eq!(db.item_support(label(0, 0)), 2);
    }
}
