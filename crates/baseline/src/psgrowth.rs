//! PS-growth: recursive pattern growth over the PS-tree, producing
//! *periodic-frequent itemsets* constrained by `minSup` and `maxPer`.

use crate::pstree::{PsTree, WeightedTransaction};
use crate::transactions::TransactionDb;
use stpm_timeseries::{EventLabel, GranulePos};

/// A periodic-frequent itemset: the items, the granules containing them all,
/// and the derived support / maximum period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodicItemset {
    /// The items, sorted canonically.
    pub items: Vec<EventLabel>,
    /// Sorted granules containing every item of the set.
    pub tids: Vec<GranulePos>,
    /// Number of supporting granules.
    pub support: u64,
    /// Maximum period between consecutive occurrences (boundaries included).
    pub max_period: u64,
}

/// The PS-growth miner.
#[derive(Debug, Clone)]
pub struct PsGrowth {
    min_sup: u64,
    max_per: u64,
    max_len: usize,
    db_len: u64,
}

impl PsGrowth {
    /// Creates a miner with the `minSup` / `maxPer` thresholds and an upper
    /// bound on the itemset size.
    #[must_use]
    pub fn new(min_sup: u64, max_per: u64, max_len: usize, db_len: u64) -> Self {
        Self {
            min_sup: min_sup.max(1),
            max_per: max_per.max(1),
            max_len: max_len.max(1),
            db_len,
        }
    }

    /// Maximum period of a sorted granule list, counting the leading gap from
    /// the start of the database and the trailing gap to its end (the
    /// periodic-frequent pattern convention).
    #[must_use]
    pub fn max_period(tids: &[GranulePos], db_len: u64) -> u64 {
        if tids.is_empty() {
            return db_len;
        }
        let mut max = tids[0].saturating_sub(0);
        for w in tids.windows(2) {
            max = max.max(w[1] - w[0]);
        }
        max.max(db_len.saturating_sub(*tids.last().expect("non-empty")))
    }

    /// Mines every periodic-frequent itemset of the transactional database.
    #[must_use]
    pub fn mine(&self, db: &TransactionDb) -> Vec<PeriodicItemset> {
        self.mine_with_footprint(db).0
    }

    /// Like [`PsGrowth::mine`], but also reports the total heap footprint of
    /// every PS-tree materialised during pattern growth (the initial tree
    /// plus all conditional trees) — the quantity the memory-usage
    /// experiments charge to the baseline.
    #[must_use]
    pub fn mine_with_footprint(&self, db: &TransactionDb) -> (Vec<PeriodicItemset>, usize) {
        let transactions: Vec<WeightedTransaction> = db
            .transactions()
            .iter()
            .map(|(granule, items)| (items.clone(), vec![*granule]))
            .collect();
        let tree = PsTree::build(&transactions, self.min_sup, db.len() as u64);
        let mut out = Vec::new();
        let mut footprint = tree.footprint_bytes();
        self.grow(&tree, &[], &mut out, &mut footprint);
        out.sort_by(|a, b| a.items.cmp(&b.items));
        (out, footprint)
    }

    /// Recursive pattern-growth step: extend `suffix` with every item of the
    /// tree's header table, emit the periodic extensions, and recurse into
    /// the conditional tree of each extension that can still grow.
    fn grow(
        &self,
        tree: &PsTree,
        suffix: &[EventLabel],
        out: &mut Vec<PeriodicItemset>,
        footprint: &mut usize,
    ) {
        for item in tree.header_items() {
            let tids = tree.item_tids(item);
            let support = tids.len() as u64;
            if support < self.min_sup {
                continue;
            }
            let max_period = Self::max_period(&tids, self.db_len);
            // The occurrences of any superset are a subset of these, so its
            // max period can only grow: prune the branch when already
            // aperiodic (the PS-growth pruning rule).
            if max_period > self.max_per {
                continue;
            }
            let mut items: Vec<EventLabel> = suffix.to_vec();
            items.push(item);
            items.sort_unstable();
            out.push(PeriodicItemset {
                items: items.clone(),
                tids: tids.clone(),
                support,
                max_period,
            });
            if items.len() >= self.max_len {
                continue;
            }
            let base = tree.conditional_pattern_base(item);
            if base.is_empty() {
                continue;
            }
            let conditional = PsTree::build(&base, self.min_sup, self.db_len);
            *footprint += conditional.footprint_bytes();
            self.grow(&conditional, &items, out, footprint);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_timeseries::{SeriesId, SymbolId};

    fn label(series: u32) -> EventLabel {
        EventLabel::new(SeriesId(series), SymbolId(1))
    }

    /// a and b co-occur in every other transaction; c is rare; d is frequent
    /// but bursty (aperiodic).
    fn sample_db() -> TransactionDb {
        let a = label(0);
        let b = label(1);
        let c = label(2);
        let d = label(3);
        TransactionDb::from_items(vec![
            vec![a, b, d],
            vec![a],
            vec![a, b, d],
            vec![a],
            vec![a, b, c, d],
            vec![a],
            vec![a, b, d],
            vec![a],
        ])
    }

    #[test]
    fn max_period_includes_boundaries() {
        assert_eq!(PsGrowth::max_period(&[1, 2, 3], 10), 7);
        assert_eq!(PsGrowth::max_period(&[5, 6, 10], 10), 5);
        assert_eq!(PsGrowth::max_period(&[1, 5, 9], 10), 4);
        assert_eq!(PsGrowth::max_period(&[], 10), 10);
    }

    #[test]
    fn mines_periodic_frequent_itemsets() {
        let miner = PsGrowth::new(3, 2, 3, 8);
        let result = miner.mine(&sample_db());
        let items_of = |r: &Vec<PeriodicItemset>| -> Vec<Vec<EventLabel>> {
            r.iter().map(|p| p.items.clone()).collect()
        };
        let found = items_of(&result);
        // a occurs everywhere (period 1), {a,b}, {a,b,d}, {b,d}, … occur every
        // 2 granules.
        assert!(found.contains(&vec![label(0)]));
        assert!(found.contains(&vec![label(0), label(1)]));
        assert!(found.contains(&vec![label(0), label(1), label(3)]));
        // c has support 1 < minSup.
        assert!(!found.iter().any(|i| i.contains(&label(2))));
        // Every reported itemset respects both thresholds.
        for p in &result {
            assert!(p.support >= 3);
            assert!(p.max_period <= 2);
            assert_eq!(p.support as usize, p.tids.len());
        }
    }

    #[test]
    fn aperiodic_items_are_pruned() {
        let a = label(0);
        let e = label(4);
        // e is frequent but all its occurrences are at the start → large
        // trailing period.
        let db = TransactionDb::from_items(vec![
            vec![a, e],
            vec![a, e],
            vec![a, e],
            vec![a],
            vec![a],
            vec![a],
            vec![a],
            vec![a],
        ]);
        let result = PsGrowth::new(3, 2, 2, 8).mine(&db);
        assert!(result.iter().any(|p| p.items == vec![a]));
        assert!(!result.iter().any(|p| p.items.contains(&e)));
    }

    #[test]
    fn max_len_caps_itemset_size() {
        let result = PsGrowth::new(3, 2, 1, 8).mine(&sample_db());
        assert!(result.iter().all(|p| p.items.len() == 1));
        let result3 = PsGrowth::new(3, 2, 3, 8).mine(&sample_db());
        assert!(result3.iter().any(|p| p.items.len() == 3));
    }

    #[test]
    fn tight_min_sup_yields_empty_output() {
        let result = PsGrowth::new(100, 2, 3, 8).mine(&sample_db());
        assert!(result.is_empty());
    }

    #[test]
    fn itemsets_are_unique() {
        let result = PsGrowth::new(2, 4, 3, 8).mine(&sample_db());
        let mut keys: Vec<Vec<EventLabel>> = result.iter().map(|p| p.items.clone()).collect();
        let before = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(before, keys.len(), "duplicate itemsets in the output");
    }
}
