//! APS-growth: the 2-phase adaptation of PS-growth to seasonal temporal
//! pattern mining, used as the experimental baseline.
//!
//! * **Phase 1** mines frequent itemsets over the transactional view of
//!   `D_SEQ` with `minSup = minSeason · minDensity` — a seasonal pattern must
//!   occur at least that often, so the support threshold is a *necessary*
//!   condition and phase 1 never loses a seasonal pattern. PS-growth's
//!   periodicity constraint is deliberately disabled (`maxPer = |D_SEQ|`):
//!   a seasonal support set may contain stray occurrences arbitrarily far
//!   from any season, so no finite gap bound is a necessary condition, and a
//!   tighter `maxPer` would make the baseline miss patterns E-STPM finds.
//! * **Phase 2** turns each periodic itemset into temporal patterns by
//!   re-scanning its supporting granules, classifying the pairwise relations
//!   of every instance combination, and applying the same season checks as
//!   STPM.
//!
//! The output is reported through the workspace-wide
//! [`stpm_core::EngineReport`] so that the benchmark harness
//! can compare the three algorithms uniformly: the `"itemsets"` phase carries
//! the PS-growth time, the `"extraction"` phase the temporal-pattern
//! extraction time, and the pruning summary's `candidate_itemsets` counter
//! the number of phase-1 itemsets.

use crate::psgrowth::{PeriodicItemset, PsGrowth};
use crate::transactions::TransactionDb;
use std::collections::BTreeMap;
use std::time::Instant;
use stpm_core::engine::{phases, MiningEngine, MiningInput, PhaseTiming, PruningSummary};
use stpm_core::season::{find_seasons, support_is_frequent};
use stpm_core::{
    classify_relation, EngineReport, MinedEvent, MinedPattern, MiningReport, MiningStats,
    RelationTriple, ResolvedConfig, StpmConfig, TemporalPattern,
};
use stpm_timeseries::{EventInstance, GranulePos, SequenceDatabase};

/// The APS-growth baseline mining engine.
///
/// A stateless engine value; the thresholds it derives `minSup`/`maxPer` from
/// arrive per call, exactly like the other engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApsGrowth;

impl ApsGrowth {
    /// Mines a sequence database directly, resolving the thresholds of
    /// `config` against the database size first.
    ///
    /// # Errors
    /// Propagates configuration-validation errors.
    pub fn mine_sequences(
        dseq: &SequenceDatabase,
        config: &StpmConfig,
    ) -> stpm_core::Result<MiningReport> {
        let resolved = config.resolve(dseq.num_granules())?;
        Ok(BaselineRun {
            dseq,
            config: resolved,
        }
        .mine()
        .report)
    }
}

impl MiningEngine for ApsGrowth {
    fn name(&self) -> &'static str {
        "APS-growth"
    }

    fn mine(
        &self,
        input: &MiningInput<'_>,
        config: &ResolvedConfig,
    ) -> stpm_core::Result<EngineReport> {
        let run = BaselineRun {
            dseq: input.dseq(),
            config: *config,
        }
        .mine();
        Ok(EngineReport::new(
            self.name(),
            run.report,
            input.dseq().registry().clone(),
            vec![
                PhaseTiming::new(phases::ITEMSETS, run.phase1_time),
                PhaseTiming::new(phases::EXTRACTION, run.phase2_time),
            ],
            PruningSummary {
                candidate_itemsets: run.phase1_itemsets,
                ..PruningSummary::keep_all(input)
            },
            run.footprint_bytes,
        ))
    }
}

/// Raw output of one baseline run, before it is folded into an
/// [`EngineReport`].
struct BaselineOutput {
    report: MiningReport,
    phase1_itemsets: usize,
    phase1_time: std::time::Duration,
    phase2_time: std::time::Duration,
    footprint_bytes: usize,
}

/// One APS-growth run over one database.
#[derive(Debug, Clone)]
struct BaselineRun<'a> {
    dseq: &'a SequenceDatabase,
    config: ResolvedConfig,
}

impl BaselineRun<'_> {
    /// Runs both phases and assembles the raw output.
    fn mine(&self) -> BaselineOutput {
        // ---- Phase 1: periodic-frequent itemset mining ----
        let phase1_start = Instant::now();
        let transactions = TransactionDb::from_sequences(self.dseq);
        let min_sup = (self.config.min_season * self.config.min_density).max(1);
        // Seasons tolerate stray support occurrences, so periodicity is not a
        // necessary condition of seasonality; |D_SEQ| disables the pruning.
        let max_per = self.dseq.num_granules();
        let psgrowth = PsGrowth::new(
            min_sup,
            max_per,
            self.config.max_pattern_len,
            self.dseq.num_granules(),
        );
        let (itemsets, tree_footprint) = psgrowth.mine_with_footprint(&transactions);
        let phase1_time = phase1_start.elapsed();

        // ---- Phase 2: temporal pattern extraction + season checks ----
        let phase2_start = Instant::now();
        let mut events_out = Vec::new();
        let mut footprint: usize = tree_footprint
            + itemsets
                .iter()
                .map(|i| i.tids.len() * std::mem::size_of::<GranulePos>() + i.items.len() * 8)
                .sum::<usize>();

        let mut pattern_supports: BTreeMap<TemporalPattern, Vec<GranulePos>> = BTreeMap::new();
        for itemset in &itemsets {
            if itemset.items.len() == 1 {
                // Early-exit frequency check; seasons are materialised only
                // for the survivors.
                if support_is_frequent(&itemset.tids, &self.config) {
                    events_out.push(MinedEvent {
                        label: itemset.items[0],
                        support: itemset.tids.clone(),
                        seasons: find_seasons(&itemset.tids, &self.config),
                    });
                }
            } else {
                self.extract_patterns(itemset, &mut pattern_supports);
            }
        }

        let mut patterns_out = Vec::new();
        for (pattern, support) in &pattern_supports {
            footprint += support.len() * std::mem::size_of::<GranulePos>()
                + pattern.events().len() * 8
                + pattern.triples().len() * 4;
            if support_is_frequent(support, &self.config) {
                let seasons = find_seasons(support, &self.config);
                patterns_out.push(MinedPattern::new(pattern.clone(), support.clone(), seasons));
            }
        }
        let phase2_time = phase2_start.elapsed();

        let stats = MiningStats {
            num_granules: self.dseq.num_granules(),
            num_events: self.dseq.distinct_events().len(),
            candidate_events: itemsets.iter().filter(|i| i.items.len() == 1).count(),
            frequent_events: events_out.len(),
            levels: Vec::new(),
            total_time: phase1_time + phase2_time,
            single_event_time: phase1_time,
            pattern_time: phase2_time,
            peak_footprint_bytes: footprint,
        };
        BaselineOutput {
            report: MiningReport::new(events_out, patterns_out, stats),
            phase1_itemsets: itemsets.len(),
            phase1_time,
            phase2_time,
            footprint_bytes: footprint,
        }
    }

    /// Extracts the temporal patterns realised by one periodic itemset: for
    /// every supporting granule, every combination of instances (one per
    /// item) whose pairwise relations all exist contributes one pattern
    /// occurrence.
    fn extract_patterns(
        &self,
        itemset: &PeriodicItemset,
        out: &mut BTreeMap<TemporalPattern, Vec<GranulePos>>,
    ) {
        for &granule in &itemset.tids {
            let Some(sequence) = self.dseq.sequence_at(granule) else {
                continue;
            };
            let per_item: Vec<Vec<EventInstance>> = itemset
                .items
                .iter()
                .map(|item| sequence.instances_of(*item).copied().collect())
                .collect();
            if per_item.iter().any(Vec::is_empty) {
                continue;
            }
            let mut binding: Vec<EventInstance> = Vec::with_capacity(per_item.len());
            self.enumerate_bindings(itemset, &per_item, granule, &mut binding, out);
        }
    }

    /// Recursively enumerates instance combinations and records the patterns
    /// they realise.
    fn enumerate_bindings(
        &self,
        itemset: &PeriodicItemset,
        per_item: &[Vec<EventInstance>],
        granule: GranulePos,
        binding: &mut Vec<EventInstance>,
        out: &mut BTreeMap<TemporalPattern, Vec<GranulePos>>,
    ) {
        let depth = binding.len();
        if depth == per_item.len() {
            if let Some(pattern) = self.pattern_of_binding(&itemset.items, binding) {
                let support = out.entry(pattern).or_default();
                if support.last() != Some(&granule) {
                    support.push(granule);
                }
            }
            return;
        }
        for instance in &per_item[depth] {
            binding.push(*instance);
            self.enumerate_bindings(itemset, per_item, granule, binding, out);
            binding.pop();
        }
    }

    /// Classifies every pairwise relation of a binding; returns the resulting
    /// pattern when all pairs relate.
    fn pattern_of_binding(
        &self,
        items: &[stpm_timeseries::EventLabel],
        binding: &[EventInstance],
    ) -> Option<TemporalPattern> {
        let mut triples = Vec::with_capacity(items.len() * (items.len() - 1) / 2);
        for i in 0..binding.len() {
            for j in (i + 1)..binding.len() {
                let (a, b) = (&binding[i], &binding[j]);
                let i_u8 = u8::try_from(i).expect("itemset fits u8");
                let j_u8 = u8::try_from(j).expect("itemset fits u8");
                let in_order =
                    stpm_core::relation::chronological_order(&a.interval, &b.interval, i_u8, j_u8);
                let triple = if in_order {
                    classify_relation(
                        &a.interval,
                        &b.interval,
                        self.config.epsilon,
                        self.config.min_overlap,
                    )
                    .map(|r| RelationTriple::new(r, i_u8, j_u8))
                } else {
                    classify_relation(
                        &b.interval,
                        &a.interval,
                        self.config.epsilon,
                        self.config.min_overlap,
                    )
                    .map(|r| RelationTriple::new(r, j_u8, i_u8))
                };
                triples.push(triple?);
            }
        }
        Some(TemporalPattern::from_parts(items.to_vec(), triples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_core::{RelationKind, StpmMiner, Threshold};
    use stpm_timeseries::{Alphabet, SymbolicDatabase, SymbolicSeries};

    fn paper_dseq() -> (SymbolicDatabase, SequenceDatabase) {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let rows: &[(&str, &str)] = &[
            ("C", "110100110000000000111111000000100110000110"),
            ("D", "100100110110000000111111000000100100110110"),
            ("F", "001011001001111000000000111111001001001001"),
            ("M", "111100111110111111000111111111111000111000"),
            ("N", "110111111110111111000000111111111111111000"),
        ];
        let series: Vec<SymbolicSeries> = rows
            .iter()
            .map(|(name, bits)| {
                let labels: Vec<&str> = bits
                    .chars()
                    .map(|c| if c == '1' { "1" } else { "0" })
                    .collect();
                SymbolicSeries::from_labels(name, &labels, alphabet.clone()).unwrap()
            })
            .collect();
        let dsyb = SymbolicDatabase::new(series).unwrap();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        (dsyb, dseq)
    }

    fn config() -> StpmConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (3, 10),
            min_season: 2,
            max_pattern_len: 2,
            ..StpmConfig::default()
        }
    }

    #[test]
    fn baseline_finds_the_headline_pattern() {
        let (dsyb, dseq) = paper_dseq();
        let input = MiningInput::new(&dsyb, &dseq, 3);
        let report = ApsGrowth.mine_with(&input, &config()).unwrap();
        let c1 = dsyb.registry().label("C", "1").unwrap();
        let d1 = dsyb.registry().label("D", "1").unwrap();
        let target = TemporalPattern::pair([c1, d1], RelationKind::Contains, false);
        assert!(
            report.contains_pattern(&target),
            "APS-growth must also find C:1 ≽ D:1"
        );
        assert!(report.pruning().candidate_itemsets > 0);
        assert!(report.memory_bytes() > 0);
        assert_eq!(
            report.total_time(),
            report.phase_time(phases::ITEMSETS) + report.phase_time(phases::EXTRACTION)
        );
        assert_eq!(report.engine(), "APS-growth");
    }

    #[test]
    fn baseline_output_is_a_subset_of_estpm_output() {
        // APS-growth mines the same frequency definition with a different
        // search strategy; it must never invent patterns the exact miner
        // would reject.
        let (_, dseq) = paper_dseq();
        let cfg = config();
        let exact = StpmMiner::mine_sequences(&dseq, &cfg).unwrap();
        let baseline = ApsGrowth::mine_sequences(&dseq, &cfg).unwrap();
        for p in baseline.patterns() {
            assert!(
                exact.contains_pattern(p.pattern()),
                "baseline produced a pattern E-STPM did not: {:?}",
                p.pattern()
            );
        }
        for e in baseline.events() {
            assert!(
                exact.events().iter().any(|x| x.label == e.label),
                "baseline produced an event E-STPM did not"
            );
        }
    }

    #[test]
    fn baseline_respects_the_pattern_length_cap() {
        let (_, dseq) = paper_dseq();
        let cfg = StpmConfig {
            max_pattern_len: 3,
            ..config()
        };
        let report = ApsGrowth::mine_sequences(&dseq, &cfg).unwrap();
        assert!(report.patterns().iter().all(|p| p.pattern().len() <= 3));
        assert!(report.patterns().iter().any(|p| p.pattern().len() == 3));
    }

    #[test]
    fn strict_thresholds_give_empty_output() {
        let (_, dseq) = paper_dseq();
        let cfg = StpmConfig {
            min_season: 10,
            min_density: Threshold::Absolute(10),
            ..config()
        };
        let report = ApsGrowth::mine_sequences(&dseq, &cfg).unwrap();
        assert_eq!(report.total_patterns(), 0);
    }
}
