//! APS-growth: the 2-phase adaptation of PS-growth to seasonal temporal
//! pattern mining, used as the experimental baseline.
//!
//! * **Phase 1** mines periodic-frequent itemsets over the transactional view
//!   of `D_SEQ` with `minSup = minSeason · minDensity` (a seasonal pattern
//!   must occur at least that often) and
//!   `maxPer = max(maxPeriod, distmax)` (occurrences may be separated by at
//!   most one inter-season gap).
//! * **Phase 2** turns each periodic itemset into temporal patterns by
//!   re-scanning its supporting granules, classifying the pairwise relations
//!   of every instance combination, and applying the same season checks as
//!   STPM.
//!
//! The output is reported with the same [`MiningReport`] type as the exact
//! miner so that the benchmark harness can compare the three algorithms
//! uniformly.

use crate::psgrowth::{PeriodicItemset, PsGrowth};
use crate::transactions::TransactionDb;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use stpm_core::season::find_seasons;
use stpm_core::{
    classify_relation, MinedEvent, MinedPattern, MiningReport, MiningStats, RelationTriple,
    ResolvedConfig, StpmConfig, TemporalPattern,
};
use stpm_timeseries::{EventInstance, GranulePos, SequenceDatabase};

/// Output of an APS-growth run.
#[derive(Debug, Clone, PartialEq)]
pub struct ApsGrowthReport {
    /// Frequent seasonal events and patterns, in the exact miner's format.
    pub report: MiningReport,
    /// Number of periodic-frequent itemsets produced by phase 1.
    pub phase1_itemsets: usize,
    /// Wall-clock time of phase 1 (PS-growth).
    pub phase1_time: Duration,
    /// Wall-clock time of phase 2 (temporal pattern extraction).
    pub phase2_time: Duration,
    /// Approximate heap footprint of the itemset occurrence lists and pattern
    /// tables, in bytes.
    pub footprint_bytes: usize,
}

impl ApsGrowthReport {
    /// Total wall-clock time of both phases.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.phase1_time + self.phase2_time
    }
}

/// The APS-growth baseline miner.
#[derive(Debug, Clone)]
pub struct ApsGrowth<'a> {
    dseq: &'a SequenceDatabase,
    config: ResolvedConfig,
}

impl<'a> ApsGrowth<'a> {
    /// Creates a baseline miner with the same thresholds as the exact miner.
    ///
    /// # Errors
    /// Propagates configuration-validation errors.
    pub fn new(dseq: &'a SequenceDatabase, config: &StpmConfig) -> stpm_core::Result<Self> {
        Ok(Self {
            dseq,
            config: config.resolve(dseq.num_granules())?,
        })
    }

    /// Runs both phases and assembles the report.
    #[must_use]
    pub fn mine(&self) -> ApsGrowthReport {
        // ---- Phase 1: periodic-frequent itemset mining ----
        let phase1_start = Instant::now();
        let transactions = TransactionDb::from_sequences(self.dseq);
        let min_sup = (self.config.min_season * self.config.min_density).max(1);
        let max_per = self.config.dist_max.max(self.config.max_period);
        let psgrowth = PsGrowth::new(
            min_sup,
            max_per,
            self.config.max_pattern_len,
            self.dseq.num_granules(),
        );
        let (itemsets, tree_footprint) = psgrowth.mine_with_footprint(&transactions);
        let phase1_time = phase1_start.elapsed();

        // ---- Phase 2: temporal pattern extraction + season checks ----
        let phase2_start = Instant::now();
        let mut events_out = Vec::new();
        let mut footprint: usize = tree_footprint
            + itemsets
                .iter()
                .map(|i| i.tids.len() * std::mem::size_of::<GranulePos>() + i.items.len() * 8)
                .sum::<usize>();

        let mut pattern_supports: BTreeMap<TemporalPattern, Vec<GranulePos>> = BTreeMap::new();
        for itemset in &itemsets {
            if itemset.items.len() == 1 {
                let seasons = find_seasons(&itemset.tids, &self.config);
                if seasons.is_frequent(self.config.min_season) {
                    events_out.push(MinedEvent {
                        label: itemset.items[0],
                        support: itemset.tids.clone(),
                        seasons,
                    });
                }
            } else {
                self.extract_patterns(itemset, &mut pattern_supports);
            }
        }

        let mut patterns_out = Vec::new();
        for (pattern, support) in &pattern_supports {
            footprint += support.len() * std::mem::size_of::<GranulePos>()
                + pattern.events().len() * 8
                + pattern.triples().len() * 4;
            let seasons = find_seasons(support, &self.config);
            if seasons.is_frequent(self.config.min_season) {
                patterns_out.push(MinedPattern::new(pattern.clone(), support.clone(), seasons));
            }
        }
        let phase2_time = phase2_start.elapsed();

        let stats = MiningStats {
            num_granules: self.dseq.num_granules(),
            num_events: self.dseq.distinct_events().len(),
            candidate_events: itemsets.iter().filter(|i| i.items.len() == 1).count(),
            frequent_events: events_out.len(),
            levels: Vec::new(),
            total_time: phase1_time + phase2_time,
            single_event_time: phase1_time,
            pattern_time: phase2_time,
            peak_footprint_bytes: footprint,
        };
        ApsGrowthReport {
            report: MiningReport::new(events_out, patterns_out, stats),
            phase1_itemsets: itemsets.len(),
            phase1_time,
            phase2_time,
            footprint_bytes: footprint,
        }
    }

    /// Extracts the temporal patterns realised by one periodic itemset: for
    /// every supporting granule, every combination of instances (one per
    /// item) whose pairwise relations all exist contributes one pattern
    /// occurrence.
    fn extract_patterns(
        &self,
        itemset: &PeriodicItemset,
        out: &mut BTreeMap<TemporalPattern, Vec<GranulePos>>,
    ) {
        for &granule in &itemset.tids {
            let Some(sequence) = self.dseq.sequence_at(granule) else {
                continue;
            };
            let per_item: Vec<Vec<EventInstance>> = itemset
                .items
                .iter()
                .map(|item| sequence.instances_of(*item).copied().collect())
                .collect();
            if per_item.iter().any(Vec::is_empty) {
                continue;
            }
            let mut binding: Vec<EventInstance> = Vec::with_capacity(per_item.len());
            self.enumerate_bindings(itemset, &per_item, granule, &mut binding, out);
        }
    }

    /// Recursively enumerates instance combinations and records the patterns
    /// they realise.
    fn enumerate_bindings(
        &self,
        itemset: &PeriodicItemset,
        per_item: &[Vec<EventInstance>],
        granule: GranulePos,
        binding: &mut Vec<EventInstance>,
        out: &mut BTreeMap<TemporalPattern, Vec<GranulePos>>,
    ) {
        let depth = binding.len();
        if depth == per_item.len() {
            if let Some(pattern) = self.pattern_of_binding(&itemset.items, binding) {
                let support = out.entry(pattern).or_default();
                if support.last() != Some(&granule) {
                    support.push(granule);
                }
            }
            return;
        }
        for instance in &per_item[depth] {
            binding.push(*instance);
            self.enumerate_bindings(itemset, per_item, granule, binding, out);
            binding.pop();
        }
    }

    /// Classifies every pairwise relation of a binding; returns the resulting
    /// pattern when all pairs relate.
    fn pattern_of_binding(
        &self,
        items: &[stpm_timeseries::EventLabel],
        binding: &[EventInstance],
    ) -> Option<TemporalPattern> {
        let mut triples = Vec::with_capacity(items.len() * (items.len() - 1) / 2);
        for i in 0..binding.len() {
            for j in (i + 1)..binding.len() {
                let (a, b) = (&binding[i], &binding[j]);
                let i_u8 = u8::try_from(i).expect("itemset fits u8");
                let j_u8 = u8::try_from(j).expect("itemset fits u8");
                let in_order = stpm_core::relation::chronological_order(
                    &a.interval,
                    &b.interval,
                    i_u8,
                    j_u8,
                );
                let triple = if in_order {
                    classify_relation(
                        &a.interval,
                        &b.interval,
                        self.config.epsilon,
                        self.config.min_overlap,
                    )
                    .map(|r| RelationTriple::new(r, i_u8, j_u8))
                } else {
                    classify_relation(
                        &b.interval,
                        &a.interval,
                        self.config.epsilon,
                        self.config.min_overlap,
                    )
                    .map(|r| RelationTriple::new(r, j_u8, i_u8))
                };
                triples.push(triple?);
            }
        }
        Some(TemporalPattern::from_parts(items.to_vec(), triples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_core::{RelationKind, StpmMiner, Threshold};
    use stpm_timeseries::{Alphabet, SymbolicDatabase, SymbolicSeries};

    fn paper_dseq() -> (SymbolicDatabase, SequenceDatabase) {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let rows: &[(&str, &str)] = &[
            ("C", "110100110000000000111111000000100110000110"),
            ("D", "100100110110000000111111000000100100110110"),
            ("F", "001011001001111000000000111111001001001001"),
            ("M", "111100111110111111000111111111111000111000"),
            ("N", "110111111110111111000000111111111111111000"),
        ];
        let series: Vec<SymbolicSeries> = rows
            .iter()
            .map(|(name, bits)| {
                let labels: Vec<&str> = bits
                    .chars()
                    .map(|c| if c == '1' { "1" } else { "0" })
                    .collect();
                SymbolicSeries::from_labels(name, &labels, alphabet.clone()).unwrap()
            })
            .collect();
        let dsyb = SymbolicDatabase::new(series).unwrap();
        let dseq = dsyb.to_sequence_database(3).unwrap();
        (dsyb, dseq)
    }

    fn config() -> StpmConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (3, 10),
            min_season: 2,
            max_pattern_len: 2,
            ..StpmConfig::default()
        }
    }

    #[test]
    fn baseline_finds_the_headline_pattern() {
        let (dsyb, dseq) = paper_dseq();
        let report = ApsGrowth::new(&dseq, &config()).unwrap().mine();
        let c1 = dsyb.registry().label("C", "1").unwrap();
        let d1 = dsyb.registry().label("D", "1").unwrap();
        let target = TemporalPattern::pair([c1, d1], RelationKind::Contains, false);
        assert!(
            report.report.contains_pattern(&target),
            "APS-growth must also find C:1 ≽ D:1"
        );
        assert!(report.phase1_itemsets > 0);
        assert!(report.footprint_bytes > 0);
        assert_eq!(report.total_time(), report.phase1_time + report.phase2_time);
    }

    #[test]
    fn baseline_output_is_a_subset_of_estpm_output() {
        // APS-growth can only miss patterns (because of the minSup constraint
        // of phase 1), never invent ones the exact miner would reject.
        let (_, dseq) = paper_dseq();
        let cfg = config();
        let exact = StpmMiner::new(&dseq, &cfg).unwrap().mine();
        let baseline = ApsGrowth::new(&dseq, &cfg).unwrap().mine();
        for p in baseline.report.patterns() {
            assert!(
                exact.contains_pattern(p.pattern()),
                "baseline produced a pattern E-STPM did not: {:?}",
                p.pattern()
            );
        }
        for e in baseline.report.events() {
            assert!(
                exact.events().iter().any(|x| x.label == e.label),
                "baseline produced an event E-STPM did not"
            );
        }
    }

    #[test]
    fn baseline_respects_the_pattern_length_cap() {
        let (_, dseq) = paper_dseq();
        let cfg = StpmConfig {
            max_pattern_len: 3,
            ..config()
        };
        let report = ApsGrowth::new(&dseq, &cfg).unwrap().mine();
        assert!(report
            .report
            .patterns()
            .iter()
            .all(|p| p.pattern().len() <= 3));
        assert!(report
            .report
            .patterns()
            .iter()
            .any(|p| p.pattern().len() == 3));
    }

    #[test]
    fn strict_thresholds_give_empty_output() {
        let (_, dseq) = paper_dseq();
        let cfg = StpmConfig {
            min_season: 10,
            min_density: Threshold::Absolute(10),
            ..config()
        };
        let report = ApsGrowth::new(&dseq, &cfg).unwrap().mine();
        assert_eq!(report.report.total_patterns(), 0);
    }
}
