//! The PS-tree: a prefix tree over transactions that keeps, per node, the
//! identifiers (granule positions) of the transactions passing through it.
//!
//! This is the occurrence-list flavour of the Periodic Summary tree of
//! PS-growth: the per-node granule lists are what the algorithm summarises
//! into periods. Keeping the full lists makes the implementation simpler and
//! *more* memory-hungry — matching the paper's observation that the baseline
//! is the least memory-efficient contender.

use std::collections::BTreeMap;
use stpm_timeseries::{EventLabel, GranulePos};

/// A weighted transaction: a sorted item list plus the granules in which this
/// exact item combination was observed (the initial database uses one granule
/// per transaction; conditional databases carry several).
pub type WeightedTransaction = (Vec<EventLabel>, Vec<GranulePos>);

/// One node of the PS-tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsNode {
    /// The item this node represents (`None` only for the root).
    pub item: Option<EventLabel>,
    /// Parent node index (the root points to itself).
    pub parent: usize,
    /// Child node indices.
    pub children: Vec<usize>,
    /// Granules of the transactions whose path includes this node.
    pub tids: Vec<GranulePos>,
}

/// The PS-tree plus its header table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsTree {
    nodes: Vec<PsNode>,
    header: BTreeMap<EventLabel, Vec<usize>>,
    db_len: u64,
}

impl PsTree {
    /// Builds a PS-tree from weighted transactions, dropping items whose
    /// support is below `min_sup` and ordering the surviving items of every
    /// transaction by descending global support (the FP-tree insertion
    /// order).
    #[must_use]
    pub fn build(transactions: &[WeightedTransaction], min_sup: u64, db_len: u64) -> Self {
        // Global supports (weighted by tid counts).
        let mut supports: BTreeMap<EventLabel, u64> = BTreeMap::new();
        for (items, tids) in transactions {
            for item in items {
                *supports.entry(*item).or_insert(0) += tids.len() as u64;
            }
        }
        let mut tree = Self {
            nodes: vec![PsNode {
                item: None,
                parent: 0,
                children: Vec::new(),
                tids: Vec::new(),
            }],
            header: BTreeMap::new(),
            db_len,
        };
        for (items, tids) in transactions {
            let mut kept: Vec<EventLabel> = items
                .iter()
                .copied()
                .filter(|i| supports.get(i).copied().unwrap_or(0) >= min_sup)
                .collect();
            if kept.is_empty() {
                continue;
            }
            // Descending support, ties broken by the label order, makes the
            // insertion order deterministic.
            kept.sort_by(|a, b| supports[b].cmp(&supports[a]).then_with(|| a.cmp(b)));
            tree.insert(&kept, tids);
        }
        tree
    }

    fn insert(&mut self, items: &[EventLabel], tids: &[GranulePos]) {
        let mut current = 0usize;
        for item in items {
            let child = self.nodes[current]
                .children
                .iter()
                .copied()
                .find(|c| self.nodes[*c].item == Some(*item));
            let node_idx = match child {
                Some(idx) => idx,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(PsNode {
                        item: Some(*item),
                        parent: current,
                        children: Vec::new(),
                        tids: Vec::new(),
                    });
                    self.nodes[current].children.push(idx);
                    self.header.entry(*item).or_default().push(idx);
                    idx
                }
            };
            self.nodes[node_idx].tids.extend_from_slice(tids);
            current = node_idx;
        }
    }

    /// Number of nodes, including the root.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of transactions of the original database.
    #[must_use]
    pub fn db_len(&self) -> u64 {
        self.db_len
    }

    /// The items of the header table, in ascending support order (the order
    /// PS-growth processes them in).
    #[must_use]
    pub fn header_items(&self) -> Vec<EventLabel> {
        let mut items: Vec<(EventLabel, u64)> = self
            .header
            .iter()
            .map(|(item, nodes)| {
                let support: u64 = nodes.iter().map(|n| self.nodes[*n].tids.len() as u64).sum();
                (*item, support)
            })
            .collect();
        items.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        items.into_iter().map(|(i, _)| i).collect()
    }

    /// Sorted granules in which `item` occurs (union of its nodes' lists).
    #[must_use]
    pub fn item_tids(&self, item: EventLabel) -> Vec<GranulePos> {
        let mut tids: Vec<GranulePos> = self
            .header
            .get(&item)
            .into_iter()
            .flatten()
            .flat_map(|n| self.nodes[*n].tids.iter().copied())
            .collect();
        tids.sort_unstable();
        tids.dedup();
        tids
    }

    /// The conditional pattern base of `item`: for every node of the item,
    /// the prefix path (ancestors, nearest first excluded root) together with
    /// that node's granules.
    #[must_use]
    pub fn conditional_pattern_base(&self, item: EventLabel) -> Vec<WeightedTransaction> {
        let mut base = Vec::new();
        for &node_idx in self.header.get(&item).into_iter().flatten() {
            let mut path = Vec::new();
            let mut current = self.nodes[node_idx].parent;
            while current != 0 {
                if let Some(i) = self.nodes[current].item {
                    path.push(i);
                }
                current = self.nodes[current].parent;
            }
            if path.is_empty() {
                continue;
            }
            path.reverse();
            base.push((path, self.nodes[node_idx].tids.clone()));
        }
        base
    }

    /// Approximate heap footprint in bytes (nodes + granule lists + header).
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<PsNode>()
                    + n.children.len() * std::mem::size_of::<usize>()
                    + n.tids.len() * std::mem::size_of::<GranulePos>()
            })
            .sum();
        let header_bytes: usize = self
            .header
            .values()
            .map(|v| v.len() * std::mem::size_of::<usize>() + std::mem::size_of::<EventLabel>())
            .sum();
        node_bytes + header_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_timeseries::{SeriesId, SymbolId};

    fn label(series: u32) -> EventLabel {
        EventLabel::new(SeriesId(series), SymbolId(1))
    }

    fn sample_transactions() -> Vec<WeightedTransaction> {
        // a appears 4 times, b 3, c 2, d 1.
        vec![
            (vec![label(0), label(1), label(2)], vec![1]),
            (vec![label(0), label(1)], vec![2]),
            (vec![label(0), label(2)], vec![3]),
            (vec![label(0), label(1), label(3)], vec![4]),
        ]
    }

    #[test]
    fn build_shares_prefixes() {
        let tree = PsTree::build(&sample_transactions(), 1, 4);
        // Root + a + b + c(under ab) + c(under a) + d = 6 nodes.
        assert_eq!(tree.num_nodes(), 6);
        assert_eq!(tree.db_len(), 4);
        assert!(tree.footprint_bytes() > 0);
    }

    #[test]
    fn min_sup_filters_items_at_build_time() {
        let tree = PsTree::build(&sample_transactions(), 2, 4);
        // d (support 1) never enters the tree.
        assert!(tree.item_tids(label(3)).is_empty());
        assert!(!tree.item_tids(label(2)).is_empty());
    }

    #[test]
    fn item_tids_are_sorted_and_complete() {
        let tree = PsTree::build(&sample_transactions(), 1, 4);
        assert_eq!(tree.item_tids(label(0)), vec![1, 2, 3, 4]);
        assert_eq!(tree.item_tids(label(1)), vec![1, 2, 4]);
        assert_eq!(tree.item_tids(label(2)), vec![1, 3]);
        assert_eq!(tree.item_tids(label(3)), vec![4]);
    }

    #[test]
    fn header_items_are_in_ascending_support_order() {
        let tree = PsTree::build(&sample_transactions(), 1, 4);
        let items = tree.header_items();
        assert_eq!(items.first().copied(), Some(label(3)));
        assert_eq!(items.last().copied(), Some(label(0)));
    }

    #[test]
    fn conditional_pattern_base_collects_prefix_paths() {
        let tree = PsTree::build(&sample_transactions(), 1, 4);
        // c occurs under (a, b) with tid 1 and under (a) with tid 3.
        let base = tree.conditional_pattern_base(label(2));
        assert_eq!(base.len(), 2);
        assert!(base.contains(&(vec![label(0), label(1)], vec![1])));
        assert!(base.contains(&(vec![label(0)], vec![3])));
        // The most frequent item has no prefix.
        assert!(tree.conditional_pattern_base(label(0)).is_empty());
    }

    #[test]
    fn empty_database_builds_only_a_root() {
        let tree = PsTree::build(&[], 1, 0);
        assert_eq!(tree.num_nodes(), 1);
        assert!(tree.header_items().is_empty());
    }
}
