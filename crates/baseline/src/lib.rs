//! # stpm-baseline
//!
//! The experimental baseline of the paper: **APS-growth**, an adaptation of
//! the state-of-the-art periodic-frequent itemset miner PS-growth (Kiran et
//! al., "Finding periodic-frequent patterns in temporal databases using
//! periodic summaries") to seasonal *temporal* pattern mining.
//!
//! The adaptation follows the 2-phase process described in Section VI-A of
//! the FreqSTPfTS paper:
//!
//! 1. **Phase 1** — PS-growth mines *periodic-frequent itemsets* over the
//!    transactional view of `D_SEQ` (each granule is a transaction whose
//!    items are the events occurring in it), constrained by `minSup` and
//!    `maxPer` ([`pstree`], [`psgrowth`]).
//! 2. **Phase 2** — temporal patterns are extracted from the periodic
//!    itemsets by re-scanning the supporting granules, classifying the
//!    pairwise relations between the event instances, and applying the same
//!    season checks as STPM ([`adapter`]).
//!
//! Because PS-growth relies on a support threshold and keeps full occurrence
//! information for every frequent itemset, it is slower and more
//! memory-hungry than E-STPM/A-STPM — which is exactly the behaviour the
//! paper's evaluation quantifies.
//!
//! Like the other miners of the workspace, [`ApsGrowth`] implements the
//! [`MiningEngine`](stpm_core::MiningEngine) trait and reports through the
//! unified [`EngineReport`](stpm_core::EngineReport).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapter;
pub mod psgrowth;
pub mod pstree;
pub mod transactions;

pub use adapter::ApsGrowth;
pub use psgrowth::{PeriodicItemset, PsGrowth};
pub use pstree::PsTree;
pub use transactions::TransactionDb;
