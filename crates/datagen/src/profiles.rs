//! Dataset profiles: the Table V characteristics of the four evaluation
//! datasets, plus the knobs a specification can override (series count,
//! sequence count, seed) for the scalability experiments.

/// The four application-domain datasets of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// RE — renewable energy (ENTSO-E generation/consumption + weather, Spain).
    RenewableEnergy,
    /// SC — smart city (New York City traffic + weather).
    SmartCity,
    /// INF — influenza surveillance + weather (Kawasaki, Japan).
    Influenza,
    /// HFM — hand-foot-mouth disease surveillance + weather (Kawasaki, Japan).
    HandFootMouth,
}

impl DatasetProfile {
    /// All four profiles in the order the paper reports them.
    #[must_use]
    pub fn all() -> [DatasetProfile; 4] {
        [
            DatasetProfile::RenewableEnergy,
            DatasetProfile::SmartCity,
            DatasetProfile::Influenza,
            DatasetProfile::HandFootMouth,
        ]
    }

    /// Short name used in tables and figures ("RE", "SC", "INF", "HFM").
    #[must_use]
    pub fn short_name(&self) -> &'static str {
        match self {
            DatasetProfile::RenewableEnergy => "RE",
            DatasetProfile::SmartCity => "SC",
            DatasetProfile::Influenza => "INF",
            DatasetProfile::HandFootMouth => "HFM",
        }
    }

    /// Number of temporal sequences (granules of `D_SEQ`) of the real
    /// dataset (Table V).
    #[must_use]
    pub fn num_sequences(&self) -> u64 {
        match self {
            DatasetProfile::RenewableEnergy => 1460,
            DatasetProfile::SmartCity => 1249,
            DatasetProfile::Influenza => 608,
            DatasetProfile::HandFootMouth => 730,
        }
    }

    /// Number of time series of the real dataset (Table V).
    #[must_use]
    pub fn num_series(&self) -> usize {
        match self {
            DatasetProfile::RenewableEnergy => 21,
            DatasetProfile::SmartCity => 14,
            DatasetProfile::Influenza => 25,
            DatasetProfile::HandFootMouth => 24,
        }
    }

    /// Number of distinct events of the real dataset (Table V); determines
    /// the alphabet size per series.
    #[must_use]
    pub fn num_events(&self) -> usize {
        match self {
            DatasetProfile::RenewableEnergy => 102,
            DatasetProfile::SmartCity => 56,
            DatasetProfile::Influenza => 124,
            DatasetProfile::HandFootMouth => 115,
        }
    }

    /// Symbols per series (alphabet size), derived from Table V.
    #[must_use]
    pub fn symbols_per_series(&self) -> usize {
        self.num_events().div_ceil(self.num_series()).max(2)
    }

    /// Seasonal period of the synthetic surrogate, in granules of `D_SEQ`.
    ///
    /// The paper's datasets exhibit seasonality at several scales (weekly,
    /// monthly, yearly) which is why `minSeason` values up to 20 are
    /// meaningful over 2–4 years of data. The surrogate compresses this into
    /// a single period chosen so that each dataset contains roughly 24
    /// seasonal cycles — keeping the full Table VI `minSeason` range
    /// attainable (documented as a substitution in DESIGN.md).
    #[must_use]
    pub fn season_period(&self) -> u64 {
        match self {
            DatasetProfile::RenewableEnergy => 60,
            DatasetProfile::SmartCity => 52,
            DatasetProfile::Influenza => 25,
            DatasetProfile::HandFootMouth => 30,
        }
    }

    /// Length of one seasonal burst, in granules.
    #[must_use]
    pub fn season_length(&self) -> u64 {
        match self {
            DatasetProfile::RenewableEnergy => 24,
            DatasetProfile::SmartCity => 20,
            DatasetProfile::Influenza => 10,
            DatasetProfile::HandFootMouth => 12,
        }
    }

    /// The `distInterval` recommendation for the surrogate datasets,
    /// consistent with their seasonal period (the paper's Table VI values,
    /// [90, 270] and [30, 90] days, refer to the real data's yearly
    /// seasonality).
    #[must_use]
    pub fn dist_interval(&self) -> (u64, u64) {
        let period = self.season_period();
        let gap = period - self.season_length();
        ((gap / 2).max(2), period * 2)
    }

    /// The sequence-mapping factor used when synthesising the dataset (raw
    /// instants per `D_SEQ` granule).
    #[must_use]
    pub fn mapping_factor(&self) -> u64 {
        4
    }
}

/// A concrete dataset specification: a profile plus the size overrides used
/// by the scalability experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// The domain profile the dataset mimics.
    pub profile: DatasetProfile,
    /// Number of time series to generate.
    pub num_series: usize,
    /// Number of `D_SEQ` granules (temporal sequences) to cover.
    pub num_sequences: u64,
    /// Fraction of series that belong to correlated seasonal groups (the rest
    /// are independent noise series). The paper's real datasets are dominated
    /// by weather/energy/epidemic series that do co-vary.
    pub correlated_fraction: f64,
    /// RNG seed (the generators are fully deterministic given the spec).
    pub seed: u64,
}

impl DatasetSpec {
    /// The specification of the real dataset of a profile (Table V sizes).
    #[must_use]
    pub fn real(profile: DatasetProfile) -> Self {
        Self {
            profile,
            num_series: profile.num_series(),
            num_sequences: profile.num_sequences(),
            correlated_fraction: 0.7,
            seed: 0x5EA5_0000 ^ profile.num_sequences(),
        }
    }

    /// The specification of the synthetic scale-up of a profile, capped to
    /// the requested sizes (the paper uses 10⁴ series and 1000× sequences;
    /// callers pick the slice they can afford).
    #[must_use]
    pub fn synthetic(profile: DatasetProfile, num_series: usize, num_sequences: u64) -> Self {
        Self {
            profile,
            num_series,
            num_sequences,
            correlated_fraction: 0.6,
            seed: 0x5EA5_1111 ^ num_sequences ^ num_series as u64,
        }
    }

    /// Overrides the series and sequence counts (builder style).
    #[must_use]
    pub fn scaled_to(mut self, num_series: usize, num_sequences: u64) -> Self {
        self.num_series = num_series.max(2);
        self.num_sequences = num_sequences.max(10);
        self
    }

    /// Overrides the seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the correlated fraction (builder style).
    #[must_use]
    pub fn with_correlated_fraction(mut self, fraction: f64) -> Self {
        self.correlated_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Total raw instants the generator will produce per series.
    #[must_use]
    pub fn num_instants(&self) -> u64 {
        self.num_sequences * self.profile.mapping_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_characteristics() {
        let re = DatasetProfile::RenewableEnergy;
        assert_eq!(re.num_sequences(), 1460);
        assert_eq!(re.num_series(), 21);
        assert_eq!(re.num_events(), 102);
        assert_eq!(re.short_name(), "RE");
        assert_eq!(DatasetProfile::SmartCity.num_series(), 14);
        assert_eq!(DatasetProfile::Influenza.num_sequences(), 608);
        assert_eq!(DatasetProfile::HandFootMouth.num_events(), 115);
        assert_eq!(DatasetProfile::all().len(), 4);
    }

    #[test]
    fn symbols_per_series_cover_the_event_counts() {
        for profile in DatasetProfile::all() {
            let per_series = profile.symbols_per_series();
            assert!(per_series >= 2);
            assert!(per_series * profile.num_series() >= profile.num_events());
        }
    }

    #[test]
    fn seasonal_structure_fits_inside_the_dataset() {
        for profile in DatasetProfile::all() {
            assert!(profile.season_length() < profile.season_period());
            assert!(profile.season_period() <= profile.num_sequences());
            let (lo, hi) = profile.dist_interval();
            assert!(lo < hi);
        }
    }

    #[test]
    fn spec_builders() {
        let spec = DatasetSpec::real(DatasetProfile::Influenza);
        assert_eq!(spec.num_series, 25);
        assert_eq!(spec.num_sequences, 608);
        assert_eq!(spec.num_instants(), 608 * 4);

        let scaled = spec
            .scaled_to(4, 100)
            .with_seed(7)
            .with_correlated_fraction(2.0);
        assert_eq!(scaled.num_series, 4);
        assert_eq!(scaled.num_sequences, 100);
        assert_eq!(scaled.seed, 7);
        assert_eq!(scaled.correlated_fraction, 1.0);

        let synthetic = DatasetSpec::synthetic(DatasetProfile::SmartCity, 2000, 12490);
        assert_eq!(synthetic.num_series, 2000);
        assert_eq!(synthetic.num_sequences, 12490);
    }

    #[test]
    fn minimum_sizes_are_enforced() {
        let spec = DatasetSpec::real(DatasetProfile::SmartCity).scaled_to(0, 1);
        assert!(spec.num_series >= 2);
        assert!(spec.num_sequences >= 10);
    }
}
