//! A tiny, dependency-free, deterministic pseudo-random number generator.
//!
//! The container this repository builds in has no access to crates.io, so the
//! generator cannot pull in `rand`. The workloads only need a seedable,
//! reproducible stream of uniform `f64`s (plus a Box–Muller Gaussian), which
//! xoshiro256++ seeded through SplitMix64 provides with excellent statistical
//! quality for simulation purposes.

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededRng {
    state: [u64; 4],
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion, as
    /// recommended by the xoshiro authors).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next 64 uniformly distributed bits.
    #[allow(clippy::should_implement_trait)]
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be non-zero");
        // Multiply-shift mapping; the modulo bias is negligible for the
        // simulation-sized bounds used here.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A standard-normal sample via the Box–Muller transform.
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::seed_from_u64(7);
        let mut b = SeededRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SeededRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_in_unit_interval() {
        let mut rng = SeededRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean off: {mean}");
    }

    #[test]
    fn bounded_samples_respect_the_bound() {
        let mut rng = SeededRng::seed_from_u64(3);
        for _ in 0..1_000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn gaussian_has_roughly_standard_moments() {
        let mut rng = SeededRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "gaussian mean off: {mean}");
        assert!((var - 1.0).abs() < 0.05, "gaussian variance off: {var}");
    }
}
