//! Multi-tenant arrival workloads for the service tier: many independent
//! tenants with power-law-distributed sizes, each streaming its dataset in
//! granule-aligned batches, interleaved into one bursty global arrival
//! order.
//!
//! Real multi-tenant fleets are never uniform — a few tenants dominate the
//! data volume while a long tail stays nearly idle, and arrivals cluster
//! in per-tenant bursts rather than interleaving politely. This module
//! reproduces both properties deterministically so the service benchmark
//! and the service chaos tests replay the exact same workload every run.

use crate::generator::{generate, GeneratedDataset};
use crate::profiles::{DatasetProfile, DatasetSpec};
use crate::rng::SeededRng;
use stpm_timeseries::SymbolicDatabase;

/// Specification of a multi-tenant workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantLoadSpec {
    /// Number of tenants.
    pub tenants: usize,
    /// Domain profile every tenant's data mimics.
    pub profile: DatasetProfile,
    /// Granules of the largest tenant; tenant `i` gets
    /// `max_granules / (i+1)^skew` granules, floored at `min_granules`.
    pub max_granules: u64,
    /// Size floor of the long tail.
    pub min_granules: u64,
    /// Series per tenant (kept small — a fleet of modest tenants, not one
    /// giant dataset).
    pub num_series: usize,
    /// Power-law exponent of the tenant-size distribution (1.0 ≈ Zipf).
    pub skew: f64,
    /// Granules per arrival batch.
    pub batch_granules: u64,
    /// Mean burst length: how many consecutive arrivals tend to come from
    /// the same tenant before the interleave switches.
    pub mean_burst: usize,
    /// RNG seed; the whole workload is a pure function of this spec.
    pub seed: u64,
}

impl TenantLoadSpec {
    /// A small, CI-friendly spec: `tenants` tenants of the smart-city
    /// profile with a Zipf size skew.
    #[must_use]
    pub fn quick(tenants: usize, seed: u64) -> Self {
        Self {
            tenants,
            profile: DatasetProfile::SmartCity,
            max_granules: 60,
            min_granules: 12,
            num_series: 3,
            skew: 1.0,
            batch_granules: 6,
            mean_burst: 3,
            seed,
        }
    }
}

/// One tenant's slice of the workload.
#[derive(Debug, Clone)]
pub struct TenantWorkload {
    /// Tenant name (stable across runs; valid as a service tenant name).
    pub name: String,
    /// The tenant's full dataset.
    pub dataset: GeneratedDataset,
    /// The dataset split into granule-aligned arrival batches; feeding
    /// them in order reconstructs the dataset exactly.
    pub batches: Vec<SymbolicDatabase>,
}

/// A complete multi-tenant workload: per-tenant batches plus the global
/// bursty arrival order.
#[derive(Debug, Clone)]
pub struct ServiceLoad {
    /// Per-tenant workloads, index-aligned with [`ServiceLoad::arrivals`].
    pub tenants: Vec<TenantWorkload>,
    /// The interleaved arrival schedule: `(tenant_index, batch_index)`
    /// pairs covering every batch of every tenant exactly once, with
    /// per-tenant batch order preserved.
    pub arrivals: Vec<(usize, usize)>,
}

impl ServiceLoad {
    /// Total batches across all tenants (the length of the schedule).
    #[must_use]
    pub fn total_batches(&self) -> usize {
        self.arrivals.len()
    }

    /// Total granules across all tenants.
    #[must_use]
    pub fn total_granules(&self) -> u64 {
        self.tenants
            .iter()
            .map(|t| t.dataset.dsyb.len() as u64 / t.dataset.mapping_factor.max(1))
            .sum()
    }
}

/// Generates the workload of `spec`. Deterministic: equal specs yield
/// byte-identical workloads (data, names, and arrival order).
///
/// # Panics
/// Panics when `spec.tenants` is zero or `spec.batch_granules` is zero.
#[must_use]
pub fn service_load(spec: &TenantLoadSpec) -> ServiceLoad {
    assert!(spec.tenants > 0, "a workload needs at least one tenant");
    assert!(spec.batch_granules > 0, "batches must hold granules");
    let mut tenants = Vec::with_capacity(spec.tenants);
    for index in 0..spec.tenants {
        let granules = power_law_size(spec, index);
        let dataset = generate(
            &DatasetSpec::real(spec.profile)
                .scaled_to(spec.num_series, granules)
                .with_seed(spec.seed ^ (0x007e_4a17 + index as u64 * 0x9e37_79b9)),
        );
        // No initial bulk window: every granule arrives through a batch.
        let batches = dataset.arrival_batches(0, spec.batch_granules);
        tenants.push(TenantWorkload {
            name: format!("tenant-{index:05}"),
            dataset,
            batches,
        });
    }
    let arrivals = bursty_interleave(&tenants, spec);
    ServiceLoad { tenants, arrivals }
}

/// Tenant `index`'s size in granules: `max / (index+1)^skew`, floored.
fn power_law_size(spec: &TenantLoadSpec, index: usize) -> u64 {
    let rank = (index + 1) as f64;
    let scaled = (spec.max_granules as f64 / rank.powf(spec.skew)).floor() as u64;
    scaled.clamp(spec.min_granules, spec.max_granules)
}

/// Interleaves per-tenant batch sequences into one bursty schedule:
/// repeatedly pick a tenant (weighted by its remaining batches, so heavy
/// tenants dominate the air time the way they dominate the data) and emit
/// a geometric-ish burst of its next batches.
fn bursty_interleave(tenants: &[TenantWorkload], spec: &TenantLoadSpec) -> Vec<(usize, usize)> {
    let mut rng = SeededRng::seed_from_u64(spec.seed ^ 0xb0b5_7a11);
    let mut next_batch: Vec<usize> = vec![0; tenants.len()];
    let mut remaining: Vec<usize> = tenants.iter().map(|t| t.batches.len()).collect();
    let mut total: usize = remaining.iter().sum();
    let mut arrivals = Vec::with_capacity(total);
    while total > 0 {
        // Weighted pick over remaining batches.
        let mut pick = rng.next_below(total as u64) as usize;
        let mut tenant = 0;
        for (index, &left) in remaining.iter().enumerate() {
            if pick < left {
                tenant = index;
                break;
            }
            pick -= left;
        }
        // Burst length 1..=2*mean, mean ≈ mean_burst.
        let cap = (spec.mean_burst.max(1) * 2) as u64;
        let burst = (rng.next_below(cap) + 1) as usize;
        for _ in 0..burst.min(remaining[tenant]) {
            arrivals.push((tenant, next_batch[tenant]));
            next_batch[tenant] += 1;
            remaining[tenant] -= 1;
            total -= 1;
        }
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TenantLoadSpec {
        TenantLoadSpec::quick(7, 42)
    }

    #[test]
    fn schedule_covers_every_batch_exactly_once_in_order() {
        let load = service_load(&spec());
        let mut seen: Vec<Vec<usize>> = vec![Vec::new(); load.tenants.len()];
        for &(tenant, batch) in &load.arrivals {
            seen[tenant].push(batch);
        }
        for (tenant, batches) in seen.iter().enumerate() {
            let expect: Vec<usize> = (0..load.tenants[tenant].batches.len()).collect();
            assert_eq!(
                batches, &expect,
                "tenant {tenant}: every batch exactly once, in order"
            );
        }
    }

    #[test]
    fn deterministic_for_equal_specs() {
        let a = service_load(&spec());
        let b = service_load(&spec());
        assert_eq!(a.arrivals, b.arrivals);
        for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(ta.name, tb.name);
            assert_eq!(ta.dataset.dsyb, tb.dataset.dsyb);
        }
    }

    #[test]
    fn sizes_follow_a_power_law() {
        let load = service_load(&spec());
        let granules: Vec<u64> = load
            .tenants
            .iter()
            .map(|t| t.dataset.dsyb.len() as u64 / t.dataset.mapping_factor.max(1))
            .collect();
        assert!(
            granules.windows(2).all(|w| w[0] >= w[1]),
            "sizes are non-increasing by rank: {granules:?}"
        );
        assert!(
            granules[0] > granules[granules.len() - 1],
            "the head is strictly larger than the tail"
        );
    }

    #[test]
    fn batches_reassemble_each_tenant_exactly() {
        let load = service_load(&spec());
        for tenant in &load.tenants {
            let total: usize = tenant.batches.iter().map(SymbolicDatabase::len).sum();
            assert_eq!(total, tenant.dataset.dsyb.len());
        }
    }

    #[test]
    fn interleave_is_bursty_not_round_robin() {
        let load = service_load(&spec());
        let runs = load
            .arrivals
            .windows(2)
            .filter(|w| w[0].0 == w[1].0)
            .count();
        assert!(
            runs > load.arrivals.len() / 4,
            "adjacent same-tenant arrivals should be common ({runs} of {})",
            load.arrivals.len()
        );
    }
}
