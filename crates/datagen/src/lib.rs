//! # stpm-datagen
//!
//! Synthetic dataset generators mirroring the evaluation workloads of the
//! FreqSTPfTS paper (Section VI-A, Table V).
//!
//! The paper evaluates on three proprietary/real-data domains — renewable
//! energy (RE, Spain), smart city (SC, New York City) and health (INF/HFM,
//! Kawasaki) — plus synthetic scale-ups of each. Those raw datasets are not
//! redistributable, so this crate synthesises time series with the same
//! *statistical shape*: the per-dataset series counts, sequence counts,
//! alphabet sizes and instance densities of Table V, seasonal bursts that
//! repeat with a yearly (or domain-appropriate) period, correlated series
//! groups that produce Follows/Contains/Overlaps relations, and uncorrelated
//! noise series. Every generator is seeded and fully deterministic.
//!
//! See `DESIGN.md` (substitutions section) for why this preserves the
//! behaviour the paper's experiments measure.
//!
//! ## Example
//!
//! ```
//! use stpm_datagen::{DatasetProfile, DatasetSpec, generate};
//!
//! // A laptop-scale slice of the renewable-energy workload.
//! let spec = DatasetSpec::real(DatasetProfile::RenewableEnergy).scaled_to(8, 200);
//! let dataset = generate(&spec);
//! assert_eq!(dataset.dsyb.num_series(), 8);
//! let dseq = dataset.dseq().unwrap();
//! assert_eq!(dseq.num_granules(), 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod profiles;
pub mod rng;
pub mod service_load;

pub use generator::{generate, GeneratedDataset};
pub use profiles::{DatasetProfile, DatasetSpec};
pub use rng::SeededRng;
pub use service_load::{service_load, ServiceLoad, TenantLoadSpec, TenantWorkload};
