//! The seasonal time-series generator.
//!
//! Correlated series are organised in small groups that share a seasonal
//! burst window (e.g. "winter"): the first series of a group is the driver,
//! the others follow it with a small lag so that the symbolised instances
//! exhibit Contains / Overlaps / Follows relations inside each granule. The
//! remaining series are independent noise. Values are continuous and are
//! symbolised with per-series equal-width alphabets sized according to the
//! profile, which exercises the complete Phase 1 pipeline (raw series →
//! `D_SYB` → `D_SEQ`).

use crate::profiles::DatasetSpec;
use crate::rng::SeededRng;
use stpm_timeseries::{
    EqualWidthSymbolizer, Result as TsResult, SequenceDatabase, SymbolicDatabase, SymbolicSeries,
    Symbolizer, TimeSeries,
};

/// A generated dataset: the raw series, their symbolic database, and the
/// mapping factor to use when building `D_SEQ`.
#[derive(Debug, Clone)]
pub struct GeneratedDataset {
    /// The raw (continuous) series.
    pub raw: Vec<TimeSeries>,
    /// The symbolic database `D_SYB`.
    pub dsyb: SymbolicDatabase,
    /// The sequence-mapping factor `m` (raw instants per `D_SEQ` granule).
    pub mapping_factor: u64,
    /// Ids (indices into `raw`) of the series generated as correlated
    /// seasonal series; the rest are noise.
    pub seasonal_series: Vec<usize>,
}

impl GeneratedDataset {
    /// Builds the temporal sequence database of the generated data.
    ///
    /// # Errors
    /// Propagates sequence-mapping errors (never expected for generator
    /// output).
    pub fn dseq(&self) -> TsResult<SequenceDatabase> {
        self.dsyb.to_sequence_database(self.mapping_factor)
    }

    /// The batched-arrival view of the dataset: splits the symbolic database
    /// into an initial window of `initial_granules` granules followed by
    /// batches of `batch_granules` granules each (the trailing batch may be
    /// shorter). Feeding the batches to a streaming miner in order
    /// reconstructs the dataset exactly — this is the workload of the
    /// streaming benchmarks and the streaming/batch equivalence tests.
    ///
    /// # Panics
    /// Panics when `batch_granules` is zero.
    #[must_use]
    pub fn arrival_batches(
        &self,
        initial_granules: u64,
        batch_granules: u64,
    ) -> Vec<SymbolicDatabase> {
        assert!(batch_granules > 0, "batches must hold at least one granule");
        let m = self.mapping_factor;
        let total = self.dsyb.len() as u64;
        let slice = |from: u64, to: u64| {
            let (from, to) = (from as usize, to as usize);
            SymbolicDatabase::new(
                self.dsyb
                    .series()
                    .iter()
                    .map(|s| {
                        SymbolicSeries::new(
                            s.name().to_string(),
                            s.symbols()[from..to].to_vec(),
                            s.alphabet().clone(),
                        )
                    })
                    .collect(),
            )
            .expect("a slice of a valid database is valid")
        };
        let mut batches = Vec::new();
        let mut cursor = (initial_granules * m).min(total);
        if cursor > 0 {
            batches.push(slice(0, cursor));
        }
        let step = batch_granules * m;
        while cursor < total {
            let next = (cursor + step).min(total);
            batches.push(slice(cursor, next));
            cursor = next;
        }
        batches
    }
}

/// Generates a dataset according to `spec`. Fully deterministic for a given
/// spec (including the seed).
#[must_use]
pub fn generate(spec: &DatasetSpec) -> GeneratedDataset {
    let mut rng = SeededRng::seed_from_u64(spec.seed);
    let profile = spec.profile;
    let m = profile.mapping_factor();
    let instants = spec.num_instants() as usize;
    let period_instants = profile.season_period() * m;
    let season_instants = profile.season_length() * m;
    let symbols = profile.symbols_per_series();

    let num_correlated = ((spec.num_series as f64) * spec.correlated_fraction).round() as usize;
    let num_correlated = num_correlated.min(spec.num_series);
    let group_size = 3usize;

    let mut raw = Vec::with_capacity(spec.num_series);
    let mut seasonal_series = Vec::new();

    for series_idx in 0..spec.num_series {
        let name = format!("{}-{:04}", profile.short_name(), series_idx);
        let values = if series_idx < num_correlated {
            seasonal_series.push(series_idx);
            let group = series_idx / group_size;
            let member = series_idx % group_size;
            // Each group owns a phase inside the seasonal period; members lag
            // the driver by one raw instant each, which keeps the pairwise
            // NMI high (they are near-duplicates, like co-located sensors)
            // while still producing Follows/Contains/Overlaps relations at
            // the granule boundaries.
            let phase = (group as u64 * 97) % profile.season_period() * m;
            let lag = member as u64;
            // Members shorten the burst slightly so the driver Contains them.
            let length = season_instants.saturating_sub(member as u64).max(m);
            seasonal_values(
                instants,
                period_instants,
                phase + lag,
                length,
                symbols,
                &mut rng,
            )
        } else {
            noise_values(instants, symbols, &mut rng)
        };
        raw.push(TimeSeries::new(name, values));
    }

    let symbolic: Vec<SymbolicSeries> = raw
        .iter()
        .map(|ts| {
            let symbolizer =
                EqualWidthSymbolizer::fit(ts, symbols).expect("generated series are valid");
            symbolizer
                .symbolize(ts)
                .expect("generated series are valid")
        })
        .collect();
    let dsyb = SymbolicDatabase::new(symbolic).expect("generator produces aligned series");
    GeneratedDataset {
        raw,
        dsyb,
        mapping_factor: m,
        seasonal_series,
    }
}

/// Values of one correlated seasonal series: a high plateau during the
/// seasonal window and a low baseline the rest of the time, plus Gaussian
/// jitter. Using two dominant bands keeps the symbol distribution balanced
/// enough (λ1 ≈ 0.4) that the Corollary 1.1 µ threshold stays attainable for
/// genuinely correlated series — mirroring the moderate pruning ratios the
/// paper reports in Table XI.
fn seasonal_values(
    instants: usize,
    period: u64,
    phase: u64,
    season_len: u64,
    symbols: usize,
    rng: &mut SeededRng,
) -> Vec<f64> {
    let top = symbols as f64;
    (0..instants as u64)
        .map(|t| {
            let pos = (t + period - (phase % period)) % period;
            let base = if pos < season_len {
                // In season: high band.
                top - 0.5
            } else {
                // Off season: low band.
                0.5
            };
            // Jitter is small enough to stay inside the band for the vast
            // majority of samples, but occasionally crosses over (realistic
            // measurement noise).
            base + 0.12 * rng.next_gaussian()
        })
        .collect()
}

/// Values of an uncorrelated noise series: a mean-reverting random walk that
/// spreads over all symbol bands without seasonal structure.
fn noise_values(instants: usize, symbols: usize, rng: &mut SeededRng) -> Vec<f64> {
    let top = symbols as f64;
    let mut level = top / 2.0;
    (0..instants)
        .map(|_| {
            level += 0.6 * rng.next_gaussian();
            // Mean-revert towards the centre and clamp to the value range.
            level = level * 0.9 + (top / 2.0) * 0.1;
            level = level.clamp(0.0, top);
            level
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{DatasetProfile, DatasetSpec};

    fn small_spec() -> DatasetSpec {
        DatasetSpec::real(DatasetProfile::Influenza)
            .scaled_to(6, 320)
            .with_seed(42)
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(a.dsyb, b.dsyb);
        assert_eq!(a.seasonal_series, b.seasonal_series);
        let c = generate(&small_spec().with_seed(43));
        assert_ne!(a.dsyb, c.dsyb);
    }

    #[test]
    fn sizes_match_the_spec() {
        let spec = small_spec();
        let data = generate(&spec);
        assert_eq!(data.raw.len(), 6);
        assert_eq!(data.dsyb.num_series(), 6);
        assert_eq!(data.dsyb.len() as u64, spec.num_instants());
        let dseq = data.dseq().unwrap();
        assert_eq!(dseq.num_granules(), spec.num_sequences);
        assert_eq!(dseq.num_series(), 6);
    }

    #[test]
    fn arrival_batches_reassemble_into_the_original_database() {
        let data = generate(&small_spec());
        // 320 granules at m = 4; initial window of 100 granules, then 60 per
        // batch: 100 + 60·3 + 40 ⇒ 5 batches.
        let batches = data.arrival_batches(100, 60);
        assert_eq!(batches.len(), 5);
        assert_eq!(batches[0].len() as u64, 100 * data.mapping_factor);
        assert_eq!(batches[1].len() as u64, 60 * data.mapping_factor);
        assert_eq!(
            batches.last().unwrap().len() as u64,
            40 * data.mapping_factor
        );
        let mut reassembled = batches[0].clone();
        for batch in &batches[1..] {
            reassembled.append_batch(batch).unwrap();
        }
        assert_eq!(reassembled, data.dsyb);
        // An initial window larger than the dataset degenerates to one batch.
        assert_eq!(data.arrival_batches(10_000, 60).len(), 1);
    }

    #[test]
    fn correlated_fraction_controls_the_seasonal_series_count() {
        let all = generate(&small_spec().with_correlated_fraction(1.0));
        assert_eq!(all.seasonal_series.len(), 6);
        let none = generate(&small_spec().with_correlated_fraction(0.0));
        assert!(none.seasonal_series.is_empty());
        let half = generate(&small_spec().with_correlated_fraction(0.5));
        assert_eq!(half.seasonal_series.len(), 3);
    }

    #[test]
    fn seasonal_series_use_the_high_symbols_periodically() {
        let data = generate(&small_spec().with_correlated_fraction(1.0));
        let series = &data.dsyb.series()[0];
        let probs = series.symbol_probabilities();
        // The top symbol band must be visited (the seasonal bursts) but not
        // dominate (the off-season baseline).
        let top = probs.last().copied().unwrap_or(0.0);
        assert!(top > 0.05, "seasonal burst missing: {probs:?}");
        assert!(top < 0.6, "no off-season baseline: {probs:?}");
    }

    #[test]
    fn noise_series_have_high_entropy() {
        let data = generate(&small_spec().with_correlated_fraction(0.0));
        for series in data.dsyb.series() {
            let probs = series.symbol_probabilities();
            let occupied = probs.iter().filter(|p| **p > 0.01).count();
            assert!(occupied >= 2, "noise series collapsed to one symbol");
        }
    }

    #[test]
    fn generated_data_contains_minable_seasonal_patterns() {
        use stpm_core::{StpmConfig, StpmMiner, Threshold};
        let data = generate(&small_spec().with_correlated_fraction(0.7));
        let dseq = data.dseq().unwrap();
        let config = StpmConfig {
            max_period: Threshold::Absolute(8),
            min_density: Threshold::Absolute(5),
            dist_interval: (20, 200),
            min_season: 2,
            max_pattern_len: 2,
            ..StpmConfig::default()
        };
        let report = StpmMiner::mine_sequences(&dseq, &config).unwrap();
        assert!(
            !report.patterns().is_empty(),
            "the generator must embed minable seasonal 2-event patterns"
        );
    }
}
