//! Table VIII — qualitative evaluation: representative frequent seasonal
//! temporal patterns found in each dataset, with their thresholds and
//! seasonal occurrences.

use super::{config_for, BenchScale, PreparedData};
use crate::params::scaled_real_spec;
use crate::table::TextTable;
use stpm_core::{MiningEngine, StpmMiner};
use stpm_datagen::DatasetProfile;

/// Mines each profile with a representative configuration and lists the
/// highest-season patterns — the reproduction of Table VIII.
#[must_use]
pub fn run(profiles: &[DatasetProfile], scale: &BenchScale, top_k: usize) -> Vec<TextTable> {
    let mut tables = Vec::new();
    for &profile in profiles {
        let prepared = PreparedData::generate(&scale.apply(scaled_real_spec(profile)));
        let mut config = config_for(profile, 0.006, 0.0075, 4);
        config.max_pattern_len = 3;
        let report = StpmMiner
            .mine_with(&prepared.input(), &config)
            .expect("valid configuration");

        let mut patterns: Vec<_> = report.patterns().iter().collect();
        patterns.sort_by_key(|p| {
            (
                std::cmp::Reverse(p.seasons().count()),
                std::cmp::Reverse(p.pattern().len()),
                std::cmp::Reverse(p.support().len()),
            )
        });
        let mut table = TextTable::new(
            &format!(
                "Table VIII (surrogate) — interesting seasonal patterns on {}",
                profile.short_name()
            ),
            &[
                "pattern",
                "#events",
                "seasons",
                "support",
                "season granules (first/last)",
            ],
        );
        for p in patterns.into_iter().take(top_k) {
            let first = p
                .seasons()
                .first_season()
                .and_then(|s| s.first())
                .copied()
                .unwrap_or(0);
            let last = p
                .seasons()
                .last_season()
                .and_then(|s| s.last())
                .copied()
                .unwrap_or(0);
            table.add_row(vec![
                p.pattern().display(report.registry()),
                p.pattern().len().to_string(),
                p.seasons().count().to_string(),
                p.support().len().to_string(),
                format!("H{first} .. H{last}"),
            ]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualitative_run_produces_one_table_per_profile() {
        let tables = run(
            &[DatasetProfile::Influenza, DatasetProfile::SmartCity],
            &BenchScale::quick(),
            5,
        );
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert!(t.render().contains("seasons"));
        }
    }
}
