//! Figures 11–14 and 21–24 — scalability of the mining engines on the
//! synthetic datasets while the number of sequences or the number of time
//! series grows.
//!
//! Every contender is measured through the [`stpm_core::MiningEngine`]
//! trait; engines with a pre-mining phase (A-STPM's MI/µ computation) get an
//! extra column derived generically from their measured phase timings, as in
//! Figures 13/14.

use super::{config_for, BenchScale, PreparedData};
use crate::measure::{measure_all, Measurement};
use crate::params::{
    scalability_param_pairs, sequence_percentages, synthetic_sequences, synthetic_series_points,
};
use crate::table::TextTable;
use stpm_datagen::{DatasetProfile, DatasetSpec};

/// Which dataset dimension the experiment scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAxis {
    /// Vary the number of temporal sequences (Figures 11/12/21/22).
    Sequences,
    /// Vary the number of time series (Figures 13/14/23/24).
    Series,
}

/// One measured scalability point: one measurement per contender, in
/// [`crate::measure::contenders`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// The scaled dimension's value (printed in the first column).
    pub x: String,
    /// One measurement per engine.
    pub measurements: Vec<Measurement>,
}

fn measure_point(spec: &DatasetSpec, min_season: u64, min_density: f64, x: String) -> ScalePoint {
    let prepared = PreparedData::generate(spec);
    let config = config_for(spec.profile, 0.006, min_density, min_season);
    ScalePoint {
        x,
        measurements: measure_all(&prepared.input(), &config),
    }
}

/// Runs one scalability sweep for one profile and one (minSeason, minDensity)
/// pair.
#[must_use]
pub fn sweep(
    profile: DatasetProfile,
    scale: &BenchScale,
    axis: ScaleAxis,
    min_season: u64,
    min_density: f64,
) -> Vec<ScalePoint> {
    let base_series = scale
        .series_override
        .unwrap_or_else(|| synthetic_series_points()[2]);
    let base_sequences = scale
        .sequences_override
        .unwrap_or_else(|| synthetic_sequences(profile));
    match axis {
        ScaleAxis::Sequences => scale
            .thin(&sequence_percentages())
            .iter()
            .map(|&pct| {
                let sequences = (base_sequences * pct / 100).max(20);
                let spec = DatasetSpec::synthetic(profile, base_series, sequences);
                measure_point(&spec, min_season, min_density, format!("{pct}%"))
            })
            .collect(),
        ScaleAxis::Series => {
            let series_points = if let Some(n) = scale.series_override {
                vec![n / 2, n]
            } else {
                synthetic_series_points()
            };
            scale
                .thin(&series_points)
                .iter()
                .map(|&series| {
                    let spec = DatasetSpec::synthetic(profile, series.max(2), base_sequences);
                    measure_point(&spec, min_season, min_density, series.to_string())
                })
                .collect()
        }
    }
}

/// Which engines of a sweep reported a separate MI/pre-mining phase (derived
/// from the data, not from engine names).
fn engines_with_mi(points: &[ScalePoint]) -> Vec<&'static str> {
    let mut names = Vec::new();
    for point in points {
        for m in &point.measurements {
            if !m.mi_time.is_zero() && !names.contains(&m.algorithm) {
                names.push(m.algorithm);
            }
        }
    }
    names
}

/// Runs the scalability experiment for every profile and the three parameter
/// pairs of the paper; returns one table per (profile, pair). Columns: one
/// mining-runtime column per engine, plus one MI column per engine that
/// reported an MI phase.
#[must_use]
pub fn run(profiles: &[DatasetProfile], scale: &BenchScale, axis: ScaleAxis) -> Vec<TextTable> {
    let pairs = scale.thin(&scalability_param_pairs());
    let axis_name = match axis {
        ScaleAxis::Sequences => "#sequences",
        ScaleAxis::Series => "#time series",
    };
    let mut tables = Vec::new();
    for &profile in profiles {
        for &(min_season, min_density) in &pairs {
            let points = sweep(profile, scale, axis, min_season, min_density);
            let mi_engines = engines_with_mi(&points);
            let mut header: Vec<String> = vec![axis_name.to_string()];
            if let Some(first) = points.first() {
                header.extend(
                    first
                        .measurements
                        .iter()
                        .map(|m| format!("{} mining (s)", m.algorithm)),
                );
            }
            header.extend(mi_engines.iter().map(|name| format!("{name} MI (s)")));
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                &format!(
                    "Scalability on {} synthetic, varying {axis_name} (minSeason={min_season}, minDensity={:.1}%) — Figs 11-14/21-24 shape",
                    profile.short_name(),
                    min_density * 100.0
                ),
                &header_refs,
            );
            for point in &points {
                let mut row = vec![point.x.clone()];
                row.extend(
                    point
                        .measurements
                        .iter()
                        .map(|m| format!("{:.4}", m.mining_secs())),
                );
                for name in &mi_engines {
                    let mi = point
                        .measurements
                        .iter()
                        .find(|m| m.algorithm == *name)
                        .map_or(0.0, |m| m.mi_time.as_secs_f64());
                    row.push(format!("{mi:.4}"));
                }
                table.add_row(row);
            }
            tables.push(table);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_sweep_produces_points() {
        let points = sweep(
            DatasetProfile::Influenza,
            &BenchScale::quick(),
            ScaleAxis::Sequences,
            2,
            0.0075,
        );
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.measurements.len(), 3);
            for m in &p.measurements {
                assert!(m.mining_secs() >= 0.0);
            }
        }
    }

    #[test]
    fn series_sweep_produces_points() {
        let points = sweep(
            DatasetProfile::SmartCity,
            &BenchScale::quick(),
            ScaleAxis::Series,
            2,
            0.0075,
        );
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn run_emits_one_table_per_parameter_pair() {
        let tables = run(
            &[DatasetProfile::Influenza],
            &BenchScale::quick(),
            ScaleAxis::Sequences,
        );
        assert_eq!(tables.len(), 2);
    }
}
