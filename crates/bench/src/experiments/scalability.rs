//! Figures 11–14 and 21–24 — scalability of A-STPM, E-STPM and APS-growth on
//! the synthetic datasets while the number of sequences or the number of
//! time series grows.

use super::{config_for, BenchScale};
use crate::measure::{measure_apsgrowth, measure_astpm, measure_estpm};
use crate::params::{
    scalability_param_pairs, sequence_percentages, synthetic_sequences, synthetic_series_points,
};
use crate::table::TextTable;
use stpm_datagen::{generate, DatasetProfile, DatasetSpec};

/// Which dataset dimension the experiment scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAxis {
    /// Vary the number of temporal sequences (Figures 11/12/21/22).
    Sequences,
    /// Vary the number of time series (Figures 13/14/23/24).
    Series,
}

/// One measured scalability point: runtimes in seconds (A-STPM also reports
/// its MI/µ computation time separately, as in Figures 13/14).
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// The scaled dimension's value (printed in the first column).
    pub x: String,
    /// A-STPM mining runtime (excluding MI).
    pub astpm_mining: f64,
    /// A-STPM MI + µ computation time.
    pub astpm_mi: f64,
    /// E-STPM runtime.
    pub estpm: f64,
    /// APS-growth runtime.
    pub apsgrowth: f64,
}

fn measure_point(spec: &DatasetSpec, min_season: u64, min_density: f64, x: String) -> ScalePoint {
    let data = generate(spec);
    let dseq = data.dseq().expect("generated data maps to sequences");
    let config = config_for(spec.profile, 0.006, min_density, min_season);
    let (e, _) = measure_estpm(&dseq, &config);
    let (a, _) = measure_astpm(&data.dsyb, data.mapping_factor, &config);
    let (b, _) = measure_apsgrowth(&dseq, &config);
    ScalePoint {
        x,
        astpm_mining: (a.runtime - a.mi_time).as_secs_f64(),
        astpm_mi: a.mi_time.as_secs_f64(),
        estpm: e.runtime_secs(),
        apsgrowth: b.runtime_secs(),
    }
}

/// Runs one scalability sweep for one profile and one (minSeason, minDensity)
/// pair.
#[must_use]
pub fn sweep(
    profile: DatasetProfile,
    scale: &BenchScale,
    axis: ScaleAxis,
    min_season: u64,
    min_density: f64,
) -> Vec<ScalePoint> {
    let base_series = scale
        .series_override
        .unwrap_or_else(|| synthetic_series_points()[2]);
    let base_sequences = scale
        .sequences_override
        .unwrap_or_else(|| synthetic_sequences(profile));
    match axis {
        ScaleAxis::Sequences => scale
            .thin(&sequence_percentages())
            .iter()
            .map(|&pct| {
                let sequences = (base_sequences * pct / 100).max(20);
                let spec = DatasetSpec::synthetic(profile, base_series, sequences);
                measure_point(&spec, min_season, min_density, format!("{pct}%"))
            })
            .collect(),
        ScaleAxis::Series => {
            let series_points = if let Some(n) = scale.series_override {
                vec![n / 2, n]
            } else {
                synthetic_series_points()
            };
            scale
                .thin(&series_points)
                .iter()
                .map(|&series| {
                    let spec = DatasetSpec::synthetic(profile, series.max(2), base_sequences);
                    measure_point(&spec, min_season, min_density, series.to_string())
                })
                .collect()
        }
    }
}

/// Runs the scalability experiment for every profile and the three parameter
/// pairs of the paper; returns one table per (profile, pair).
#[must_use]
pub fn run(profiles: &[DatasetProfile], scale: &BenchScale, axis: ScaleAxis) -> Vec<TextTable> {
    let pairs = scale.thin(&scalability_param_pairs());
    let axis_name = match axis {
        ScaleAxis::Sequences => "#sequences",
        ScaleAxis::Series => "#time series",
    };
    let mut tables = Vec::new();
    for &profile in profiles {
        for &(min_season, min_density) in &pairs {
            let mut table = TextTable::new(
                &format!(
                    "Scalability on {} synthetic, varying {axis_name} (minSeason={min_season}, minDensity={:.1}%) — Figs 11-14/21-24 shape",
                    profile.short_name(),
                    min_density * 100.0
                ),
                &[
                    axis_name,
                    "A-STPM mining (s)",
                    "A-STPM MI (s)",
                    "E-STPM (s)",
                    "APS-growth (s)",
                ],
            );
            for point in sweep(profile, scale, axis, min_season, min_density) {
                table.add_row(vec![
                    point.x.clone(),
                    format!("{:.4}", point.astpm_mining),
                    format!("{:.4}", point.astpm_mi),
                    format!("{:.4}", point.estpm),
                    format!("{:.4}", point.apsgrowth),
                ]);
            }
            tables.push(table);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_sweep_produces_points() {
        let points = sweep(
            DatasetProfile::Influenza,
            &BenchScale::quick(),
            ScaleAxis::Sequences,
            2,
            0.0075,
        );
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.estpm >= 0.0);
            assert!(p.astpm_mi >= 0.0);
        }
    }

    #[test]
    fn series_sweep_produces_points() {
        let points = sweep(
            DatasetProfile::SmartCity,
            &BenchScale::quick(),
            ScaleAxis::Series,
            2,
            0.0075,
        );
        assert_eq!(points.len(), 2);
    }

    #[test]
    fn run_emits_one_table_per_parameter_pair() {
        let tables = run(
            &[DatasetProfile::Influenza],
            &BenchScale::quick(),
            ScaleAxis::Sequences,
        );
        assert_eq!(tables.len(), 2);
    }
}
