//! Tables VII and XVII (real datasets) plus Tables XII and XVIII (synthetic
//! datasets) — the accuracy of a candidate engine relative to a reference
//! engine for the (minSeason, minDensity) grid.
//!
//! The paper's instance compares A-STPM against E-STPM, but the computation
//! is engine-agnostic: any two [`MiningEngine`]s can be compared because
//! every engine reports through the unified
//! [`EngineReport`](stpm_core::EngineReport) and the accuracy metric lives on
//! that report.

use super::{config_for, BenchScale, PreparedData};
use crate::params::{
    accuracy_grid, scaled_real_spec, synthetic_sequences, synthetic_series_points,
};
use crate::table::TextTable;
use stpm_approx::AStpmMiner;
use stpm_core::{accuracy, MiningEngine, StpmMiner};
use stpm_datagen::{DatasetProfile, DatasetSpec};

/// Accuracy of `candidate` w.r.t. `reference` on one (spec, configuration)
/// point, in percent.
#[must_use]
pub fn accuracy_between(
    spec: &DatasetSpec,
    reference: &dyn MiningEngine,
    candidate: &dyn MiningEngine,
    min_season: u64,
    min_density: f64,
) -> f64 {
    let prepared = PreparedData::generate(spec);
    let input = prepared.input();
    let config = config_for(spec.profile, 0.006, min_density, min_season);
    let reference_report = reference
        .mine_with(&input, &config)
        .expect("valid configuration");
    let candidate_report = candidate
        .mine_with(&input, &config)
        .expect("valid configuration");
    accuracy(&reference_report, &candidate_report)
}

/// The paper's instance: A-STPM accuracy w.r.t. E-STPM.
#[must_use]
pub fn accuracy_for(spec: &DatasetSpec, min_season: u64, min_density: f64) -> f64 {
    accuracy_between(
        spec,
        &StpmMiner,
        &AStpmMiner::new(),
        min_season,
        min_density,
    )
}

/// Tables VII / XVII: A-STPM accuracy on the (surrogate) real datasets.
#[must_use]
pub fn run_real(profiles: &[DatasetProfile], scale: &BenchScale) -> Vec<TextTable> {
    let (seasons, densities) = accuracy_grid();
    let seasons = scale.thin(&seasons);
    let densities = scale.thin(&densities);

    let mut tables = Vec::new();
    for &profile in profiles {
        let spec = scale.apply(scaled_real_spec(profile));
        let mut header: Vec<String> = vec!["minSeason".to_string()];
        header.extend(densities.iter().map(|d| format!("{:.2}%", d * 100.0)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(
            &format!(
                "A-STPM accuracy (%) on {} real (Tables VII/XVII shape)",
                profile.short_name()
            ),
            &header_refs,
        );
        for &min_season in &seasons {
            let mut row = vec![min_season.to_string()];
            for &min_density in &densities {
                row.push(format!(
                    "{:.0}",
                    accuracy_for(&spec, min_season, min_density)
                ));
            }
            table.add_row(row);
        }
        tables.push(table);
    }
    tables
}

/// Tables XII / XVIII: A-STPM accuracy on the synthetic datasets while the
/// number of series grows.
#[must_use]
pub fn run_synthetic(profiles: &[DatasetProfile], scale: &BenchScale) -> Vec<TextTable> {
    let pairs = scale.thin(&crate::params::scalability_param_pairs());
    let series_points = scale.thin(&synthetic_series_points());

    let mut tables = Vec::new();
    for &profile in profiles {
        let mut header: Vec<String> = vec!["#series".to_string()];
        header.extend(pairs.iter().map(|(s, d)| format!("{s}-{:.1}%", d * 100.0)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(
            &format!(
                "A-STPM accuracy (%) on {} synthetic (Tables XII/XVIII shape)",
                profile.short_name()
            ),
            &header_refs,
        );
        for &series in &series_points {
            let spec = scale.apply(DatasetSpec::synthetic(
                profile,
                series,
                synthetic_sequences(profile),
            ));
            let mut row = vec![series.to_string()];
            for &(min_season, min_density) in &pairs {
                row.push(format!(
                    "{:.0}",
                    accuracy_for(&spec, min_season, min_density)
                ));
            }
            table.add_row(row);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_baseline::ApsGrowth;

    #[test]
    fn accuracy_is_a_percentage() {
        let spec = BenchScale::quick().apply(scaled_real_spec(DatasetProfile::Influenza));
        let acc = accuracy_for(&spec, 2, 0.0075);
        assert!((0.0..=100.0).contains(&acc));
    }

    #[test]
    fn accuracy_generalises_to_any_engine_pair() {
        // The same entry point compares the baseline against the exact miner.
        let spec = BenchScale::quick().apply(scaled_real_spec(DatasetProfile::Influenza));
        let acc = accuracy_between(&spec, &StpmMiner, &ApsGrowth, 2, 0.0075);
        assert!((0.0..=100.0).contains(&acc));
    }

    #[test]
    fn real_accuracy_tables_have_grid_shape() {
        let tables = run_real(&[DatasetProfile::Influenza], &BenchScale::quick());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2);
    }

    #[test]
    fn synthetic_accuracy_tables_have_one_row_per_series_point() {
        let tables = run_synthetic(&[DatasetProfile::Influenza], &BenchScale::quick());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2);
    }
}
