//! Single-threaded scaling experiment: E-STPM runtime and peak footprint as
//! the database grows along its two size axes.
//!
//! Unlike the figure/table reproductions, this family exists to track the
//! *constant factor* of the exact miner across revisions of this repository:
//! every run is single-threaded (so the numbers isolate the core data
//! structures from thread scaling), mines up to 3-event patterns (so both the
//! level-2 pair path and the k-event extension path are exercised), and is
//! emitted as machine-readable JSON (`BENCH_scaling.json`) that can be
//! diffed against the checked-in baseline of a previous revision.
//!
//! Two sweeps are measured per dataset profile:
//!
//! * **events axis** — the number of time series (and with it the number of
//!   distinct events) grows while the granule count stays fixed;
//! * **granules axis** — the number of sequences/granules grows while the
//!   series count stays fixed.

use super::{config_for, BenchScale, PreparedData};
use crate::measure::{measure, Measurement};
use crate::table::TextTable;
use stpm_core::StpmMiner;
use stpm_datagen::{DatasetProfile, DatasetSpec};

/// One measured database size of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalePoint {
    /// Number of time series of the generated database.
    pub series: usize,
    /// Number of sequences (granules) of the generated database.
    pub sequences: u64,
    /// Distinct events actually present in `D_SEQ`.
    pub events: usize,
    /// Granules of `D_SEQ` (equals `sequences` for the generators).
    pub granules: u64,
    /// The uniform harness measurement (runtime, peak footprint, patterns).
    pub measurement: Measurement,
    /// `classify_relation` calls the run replaced with level-2
    /// verdict-table lookups at k ≥ 3.
    pub classifier_calls_saved: usize,
    /// Extension candidates the level-2 adjacency matrix pruned before any
    /// support work at k ≥ 3.
    pub adjacency_pruned_candidates: usize,
}

impl ScalePoint {
    /// Runtime in seconds.
    #[must_use]
    pub fn runtime_secs(&self) -> f64 {
        self.measurement.runtime_secs()
    }
}

/// One sweep along one size axis of one profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleSweep {
    /// The size axis the sweep varies: `"events"` or `"granules"`.
    pub axis: &'static str,
    /// Short profile label of the dataset family.
    pub dataset: &'static str,
    /// The measured points, smallest database first.
    pub points: Vec<ScalePoint>,
}

/// Series counts of the events-axis sweep.
#[must_use]
pub fn series_points(scale: &BenchScale) -> Vec<usize> {
    if scale.quick_grid {
        vec![4, 6]
    } else {
        vec![4, 8, 12, 16]
    }
}

/// Sequence counts of the granules-axis sweep.
#[must_use]
pub fn sequence_points(scale: &BenchScale) -> Vec<u64> {
    if scale.quick_grid {
        vec![120, 240]
    } else {
        vec![360, 720, 1440, 2880]
    }
}

/// The fixed series count of the granules-axis sweep; the fixed sequence
/// count of the events-axis sweep is `sequence_points(...)[1]`.
fn fixed_series(scale: &BenchScale) -> usize {
    if scale.quick_grid {
        5
    } else {
        8
    }
}

/// Measures one generated database size, single-threaded.
fn measure_point(profile: DatasetProfile, series: usize, sequences: u64) -> ScalePoint {
    let spec = DatasetSpec::real(profile).scaled_to(series, sequences);
    let prepared = PreparedData::generate(&spec);
    let mut config = config_for(profile, 0.006, 0.0075, 2);
    config.max_pattern_len = 3;
    let config = config.with_threads(1);
    let events = prepared.dseq.distinct_events().len();
    let granules = prepared.dseq.num_granules();
    let (measurement, report) = measure(&StpmMiner, &prepared.input(), &config);
    ScalePoint {
        series,
        sequences,
        events,
        granules,
        measurement,
        classifier_calls_saved: report.classifier_calls_saved(),
        adjacency_pruned_candidates: report.adjacency_pruned_candidates(),
    }
}

/// Runs both sweeps for one profile.
#[must_use]
pub fn collect(profile: DatasetProfile, scale: &BenchScale) -> Vec<ScaleSweep> {
    let series = series_points(scale);
    let sequences = sequence_points(scale);
    let fixed_sequences = sequences[1];
    let fixed = fixed_series(scale);
    let events_axis = ScaleSweep {
        axis: "events",
        dataset: profile.short_name(),
        points: series
            .iter()
            .map(|&s| measure_point(profile, s, fixed_sequences))
            .collect(),
    };
    // The two axes cross at (fixed, fixed_sequences); reuse that point's
    // measurement instead of mining the most expensive shared configuration
    // twice per invocation.
    let granules_axis = ScaleSweep {
        axis: "granules",
        dataset: profile.short_name(),
        points: sequences
            .iter()
            .map(|&q| {
                events_axis
                    .points
                    .iter()
                    .find(|p| p.series == fixed && p.sequences == q)
                    .cloned()
                    .unwrap_or_else(|| measure_point(profile, fixed, q))
            })
            .collect(),
    };
    vec![events_axis, granules_axis]
}

/// Renders one table per sweep.
#[must_use]
pub fn tables(sweeps: &[ScaleSweep]) -> Vec<TextTable> {
    sweeps
        .iter()
        .map(|sweep| {
            let mut table = TextTable::new(
                &format!(
                    "E-STPM single-threaded scaling on {} ({} axis)",
                    sweep.dataset, sweep.axis
                ),
                &[
                    "series",
                    "granules",
                    "events",
                    "runtime (s)",
                    "peak mem (MiB)",
                    "patterns",
                ],
            );
            for point in &sweep.points {
                table.add_row(vec![
                    point.series.to_string(),
                    point.granules.to_string(),
                    point.events.to_string(),
                    format!("{:.4}", point.runtime_secs()),
                    format!("{:.3}", point.measurement.memory_mib()),
                    point.measurement.patterns.to_string(),
                ]);
            }
            table
        })
        .collect()
}

/// Serialises the sweeps as a JSON document (hand-rolled: the workspace is
/// dependency-free). Shape:
///
/// ```json
/// {"experiment":"scaling","threads":1,"sweeps":[
///   {"axis":"events","profile":"RE","points":[
///     {"series":4,"sequences":720,"events":16,"granules":720,
///      "runtime_secs":0.1,"peak_footprint_bytes":4096,"patterns":7,
///      "classifier_calls_saved":123,"adjacency_pruned_candidates":45}]}]}
/// ```
#[must_use]
pub fn to_json(sweeps: &[ScaleSweep]) -> String {
    let rendered: Vec<String> = sweeps
        .iter()
        .map(|sweep| {
            let points: Vec<String> = sweep
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"series\":{},\"sequences\":{},\"events\":{},\
                         \"granules\":{},\"runtime_secs\":{:.6},\
                         \"peak_footprint_bytes\":{},\"patterns\":{},\
                         \"classifier_calls_saved\":{},\
                         \"adjacency_pruned_candidates\":{}}}",
                        p.series,
                        p.sequences,
                        p.events,
                        p.granules,
                        p.runtime_secs(),
                        p.measurement.memory_bytes,
                        p.measurement.patterns,
                        p.classifier_calls_saved,
                        p.adjacency_pruned_candidates
                    )
                })
                .collect();
            format!(
                "{{\"axis\":\"{}\",\"profile\":\"{}\",\"points\":[{}]}}",
                sweep.axis,
                sweep.dataset,
                points.join(",")
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"scaling\",\"threads\":1,\"sweeps\":[{}]}}\n",
        rendered.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_collect_measures_both_axes() {
        let sweeps = collect(DatasetProfile::Influenza, &BenchScale::quick());
        assert_eq!(sweeps.len(), 2);
        assert_eq!(sweeps[0].axis, "events");
        assert_eq!(sweeps[1].axis, "granules");
        for sweep in &sweeps {
            assert_eq!(sweep.dataset, "INF");
            assert_eq!(sweep.points.len(), 2, "quick grids hold two points");
            for point in &sweep.points {
                assert!(point.runtime_secs() >= 0.0);
                assert!(point.events > 0);
                assert!(point.granules > 0);
            }
        }
        // The runs mine up to 3-event patterns, so the k >= 3 reuse
        // machinery must have engaged somewhere in the sweep.
        assert!(
            sweeps
                .iter()
                .flat_map(|s| &s.points)
                .any(|p| p.classifier_calls_saved > 0),
            "verdict-table reuse never engaged"
        );
        // The events axis grows the series count, the granules axis the
        // sequence count.
        assert!(sweeps[0].points[0].series < sweeps[0].points[1].series);
        assert!(sweeps[1].points[0].sequences < sweeps[1].points[1].sequences);
    }

    #[test]
    fn json_is_structurally_sound() {
        let sweeps = collect(DatasetProfile::Influenza, &BenchScale::quick());
        let json = to_json(&sweeps);
        assert!(json.starts_with("{\"experiment\":\"scaling\",\"threads\":1"));
        assert!(json.contains("\"axis\":\"events\""));
        assert!(json.contains("\"axis\":\"granules\""));
        assert!(json.contains("\"peak_footprint_bytes\":"));
        assert!(json.contains("\"classifier_calls_saved\":"));
        assert!(json.contains("\"adjacency_pruned_candidates\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",]") && !json.contains(",}"));
        assert_eq!(tables(&sweeps).len(), 2);
    }
}
