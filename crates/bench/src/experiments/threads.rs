//! Thread-scaling experiment for the sharded parallel level-mining path.
//!
//! Unlike the other experiment families this one has no counterpart in the
//! paper (the original evaluation is single-threaded): it measures how the
//! exact miner speeds up when `StpmConfig::threads` grows, and doubles as a
//! determinism check — every thread count must find the same patterns. The
//! results are also emitted as machine-readable JSON (`BENCH_threads.json`)
//! so the performance trajectory of the repository can be tracked across
//! revisions without scraping tables.

use super::{config_for, BenchScale, PreparedData};
use crate::measure::{measure, Measurement};
use crate::table::TextTable;
use stpm_core::StpmMiner;
use stpm_datagen::{DatasetProfile, DatasetSpec};

/// One measured thread-count point of the sweep: the thread count plus the
/// harness [`Measurement`] of the run (so the threads experiment measures
/// exactly like every other experiment family).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPoint {
    /// Worker threads the level miner was configured with.
    pub threads: usize,
    /// The uniform harness measurement (runtime, memory, pattern count).
    pub measurement: Measurement,
}

impl ThreadPoint {
    /// Runtime in seconds.
    #[must_use]
    pub fn runtime_secs(&self) -> f64 {
        self.measurement.runtime_secs()
    }

    /// Total frequent seasonal patterns found; identical across the sweep by
    /// the determinism guarantee.
    #[must_use]
    pub fn patterns(&self) -> usize {
        self.measurement.patterns
    }
}

/// One profile's sweep: the dataset label plus its measured points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadSweep {
    /// Short profile label of the dataset the sweep ran on.
    pub dataset: &'static str,
    /// The measured points, in the order the thread counts were given.
    pub points: Vec<ThreadPoint>,
}

impl ThreadSweep {
    /// Speedup of every point relative to the first (single-threaded) point.
    #[must_use]
    pub fn speedups(&self) -> Vec<f64> {
        let base = self.points.first().map_or(0.0, ThreadPoint::runtime_secs);
        self.points
            .iter()
            .map(|p| {
                let secs = p.runtime_secs();
                if secs > 0.0 {
                    base / secs
                } else {
                    1.0
                }
            })
            .collect()
    }
}

/// The thread counts the experiment measures by default.
#[must_use]
pub fn thread_counts() -> Vec<usize> {
    vec![1, 2, 4, 8]
}

/// Measures the exact miner on one profile's dataset for every thread count.
///
/// # Panics
/// Panics when two thread counts disagree on the mined patterns — that would
/// break the determinism guarantee of the sharded path.
#[must_use]
pub fn sweep(profile: DatasetProfile, scale: &BenchScale, counts: &[usize]) -> ThreadSweep {
    let spec = scale.apply(DatasetSpec::real(profile));
    let prepared = PreparedData::generate(&spec);
    let base_config = config_for(profile, 0.006, 0.0075, 2);
    let points: Vec<ThreadPoint> = counts
        .iter()
        .map(|&threads| {
            let config = base_config.clone().with_threads(threads);
            let (measurement, _report) = measure(&StpmMiner, &prepared.input(), &config);
            ThreadPoint {
                threads,
                measurement,
            }
        })
        .collect();
    if let Some(first) = points.first() {
        for point in &points {
            assert_eq!(
                point.patterns(),
                first.patterns(),
                "thread count {} changed the mining output",
                point.threads
            );
        }
    }
    ThreadSweep {
        dataset: profile.short_name(),
        points,
    }
}

/// Runs the sweep for every profile.
#[must_use]
pub fn collect(profiles: &[DatasetProfile], scale: &BenchScale) -> Vec<ThreadSweep> {
    let counts = scale.thin(&thread_counts());
    profiles
        .iter()
        .map(|&profile| sweep(profile, scale, &counts))
        .collect()
}

/// Renders one table per sweep: runtime and speedup per thread count.
#[must_use]
pub fn tables(sweeps: &[ThreadSweep]) -> Vec<TextTable> {
    sweeps
        .iter()
        .map(|sweep| {
            let mut table = TextTable::new(
                &format!(
                    "E-STPM thread scaling on {} (sharded level mining)",
                    sweep.dataset
                ),
                &["threads", "runtime (s)", "speedup", "patterns", "mem (MiB)"],
            );
            for (point, speedup) in sweep.points.iter().zip(sweep.speedups()) {
                table.add_row(vec![
                    point.threads.to_string(),
                    format!("{:.4}", point.runtime_secs()),
                    format!("{speedup:.2}x"),
                    point.patterns().to_string(),
                    format!("{:.3}", point.measurement.memory_mib()),
                ]);
            }
            table
        })
        .collect()
}

/// Serialises the sweeps as a JSON document (hand-rolled: the workspace is
/// dependency-free). `available_parallelism` records the machine's core
/// count — speedup is bounded by it, so a 1-core CI runner reporting ~1.0x
/// is expected, not a regression. Shape:
///
/// ```json
/// {"experiment":"threads","available_parallelism":8,"datasets":[
///   {"profile":"RE","points":[
///     {"threads":1,"runtime_secs":0.5,"speedup":1.0,
///      "patterns":12,"memory_bytes":4096}]}]}
/// ```
#[must_use]
pub fn to_json(sweeps: &[ThreadSweep]) -> String {
    let datasets: Vec<String> = sweeps
        .iter()
        .map(|sweep| {
            let points: Vec<String> = sweep
                .points
                .iter()
                .zip(sweep.speedups())
                .map(|(p, speedup)| {
                    format!(
                        "{{\"threads\":{},\"runtime_secs\":{:.6},\"speedup\":{:.4},\
                         \"patterns\":{},\"memory_bytes\":{}}}",
                        p.threads,
                        p.runtime_secs(),
                        speedup,
                        p.patterns(),
                        p.measurement.memory_bytes
                    )
                })
                .collect();
            format!(
                "{{\"profile\":\"{}\",\"points\":[{}]}}",
                sweep.dataset,
                points.join(",")
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"threads\",\"available_parallelism\":{},\"datasets\":[{}]}}\n",
        std::thread::available_parallelism().map_or(1, usize::from),
        datasets.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_every_thread_count_and_is_deterministic() {
        let sweep = sweep(DatasetProfile::Influenza, &BenchScale::quick(), &[1, 2]);
        assert_eq!(sweep.dataset, "INF");
        assert_eq!(sweep.points.len(), 2);
        assert_eq!(sweep.points[0].threads, 1);
        assert_eq!(sweep.points[1].threads, 2);
        assert_eq!(sweep.points[0].patterns(), sweep.points[1].patterns());
        let speedups = sweep.speedups();
        assert_eq!(speedups.len(), 2);
        assert!((speedups[0] - 1.0).abs() < 1e-9 || sweep.points[0].measurement.runtime.is_zero());
    }

    #[test]
    fn json_carries_one_entry_per_thread_count() {
        let sweeps = collect(&[DatasetProfile::Influenza], &BenchScale::quick());
        let json = to_json(&sweeps);
        assert!(json.starts_with("{\"experiment\":\"threads\""));
        assert!(json.matches("\"threads\":").count() >= 2);
        assert!(json.contains("\"profile\":\"INF\""));
        assert!(json.contains("\"speedup\":"));
        // Structurally sound: balanced braces/brackets, no trailing comma.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",]") && !json.contains(",}"));
    }

    #[test]
    fn tables_render_one_row_per_point() {
        let sweeps = collect(&[DatasetProfile::SmartCity], &BenchScale::quick());
        let tables = tables(&sweeps);
        assert_eq!(tables.len(), 1);
    }
}
