//! Crash-recovery experiment: restoring a [`StreamingMiner`] from a
//! snapshot (plus replaying the granules that arrived after it) vs
//! rebuilding the same state with a full batch re-mine.
//!
//! The sweep varies the *tail* — how many granules arrived after the last
//! snapshot and therefore have to be replayed on recovery, exactly the work
//! a write-ahead log hands back after a crash. A tail of zero is the pure
//! restore cost. At every point the recovered pattern set (patterns,
//! supports, seasons) is asserted identical to the batch re-mine of the
//! full prefix, so a surviving JSON file certifies that recovery is exact.

use super::{config_for, BenchScale};
use crate::table::TextTable;
use std::time::{Duration, Instant};
use stpm_core::{canonical_result_set as canonical, StpmMiner, StreamingMiner};
use stpm_datagen::{generate, DatasetProfile, DatasetSpec};

/// One measured crash position of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPoint {
    /// Granules absorbed after the snapshot — the WAL tail replayed on
    /// recovery.
    pub tail_granules: u64,
    /// Total granules of the recovered prefix.
    pub granules: u64,
    /// Distinct events of the recovered prefix.
    pub events: usize,
    /// Size of the snapshot, in bytes.
    pub snapshot_bytes: usize,
    /// Wall-clock time to serialise the snapshot.
    pub snapshot_write: Duration,
    /// Wall-clock time of the recovery path: restore the snapshot and
    /// replay the WAL tail, leaving a miner ready to absorb the next batch.
    pub recovery: Duration,
    /// Wall-clock time of the alternative a snapshot-less service pays to
    /// reach the same resumable state: rebuild `D_SEQ` and re-mine the full
    /// history through a fresh [`StreamingMiner`].
    pub remine: Duration,
    /// Whether the recovered pattern set was identical to the batch
    /// re-mine (the experiment asserts this).
    pub identical: bool,
    /// Frequent patterns (events + k-event patterns) after recovery.
    pub patterns: usize,
}

impl RecoveryPoint {
    /// How many times cheaper recovering is than re-mining from scratch.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let recovery = self.recovery.as_secs_f64();
        if recovery > 0.0 {
            self.remine.as_secs_f64() / recovery
        } else {
            f64::INFINITY
        }
    }
}

/// WAL-tail sizes of the sweep (granules appended after the snapshot),
/// pure restore first.
#[must_use]
pub fn tail_sizes(scale: &BenchScale) -> Vec<u64> {
    if scale.quick_grid {
        vec![0, 10]
    } else {
        vec![0, 60, 120]
    }
}

/// The dataset the crash interrupts: the quick grid matches the other smoke
/// runs, the full grid matches the largest single-threaded streaming
/// configuration (8 series × 720 granules).
fn recovery_spec(profile: DatasetProfile, scale: &BenchScale) -> DatasetSpec {
    if scale.quick_grid {
        scale.apply(DatasetSpec::real(profile))
    } else {
        DatasetSpec::real(profile).scaled_to(8, 720)
    }
}

/// Measures one crash position.
///
/// # Panics
/// Panics when the recovered pattern set diverges from the batch re-mine —
/// exactness is the point of the experiment.
fn measure_point(profile: DatasetProfile, scale: &BenchScale, tail_granules: u64) -> RecoveryPoint {
    let spec = recovery_spec(profile, scale);
    let data = generate(&spec);
    let mut config = config_for(profile, 0.006, 0.0075, 2);
    config.max_pattern_len = 3;
    let config = config.with_threads(1);
    let dseq = data.dseq().expect("generated data maps to sequences");
    let total = dseq.num_granules();
    let cut = total.saturating_sub(tail_granules) as usize;

    // The interrupted run: stream the prefix, snapshot, absorb the tail
    // (which, in a deployment, the WAL holds), then "crash".
    let mut miner =
        StreamingMiner::new(&config, dseq.registry()).expect("benchmark configuration is valid");
    miner
        .append_batch(&dseq.sequences()[..cut])
        .expect("append stays in order");
    let snapshot_start = Instant::now();
    let mut snapshot = Vec::new();
    miner
        .snapshot(&mut snapshot)
        .expect("serialising to a Vec cannot fail");
    let snapshot_write = snapshot_start.elapsed();
    drop(miner);

    // Recovery path: restore the snapshot and replay the WAL tail. The
    // miner is then ready to absorb the next arrival — checkpoint emission
    // is on-demand output work both paths price identically, so it stays
    // outside the timed regions.
    let recovery_start = Instant::now();
    let mut restored =
        StreamingMiner::restore(&mut &snapshot[..]).expect("the snapshot was just written");
    restored
        .append_batch(&dseq.sequences()[cut..])
        .expect("the tail continues the snapshot");
    let recovery = recovery_start.elapsed();

    // The alternative a snapshot-less service pays to reach the same
    // resumable state: rebuild `D_SEQ` from the symbolic history and replay
    // every granule through a fresh streaming miner.
    let remine_start = Instant::now();
    let full_dseq = data
        .dsyb
        .to_sequence_database(data.mapping_factor)
        .expect("the prefix holds at least one granule");
    let mut remined = StreamingMiner::new(&config, full_dseq.registry())
        .expect("benchmark configuration is valid");
    remined
        .append_batch(full_dseq.sequences())
        .expect("append stays in order");
    let remine = remine_start.elapsed();

    // Exactness: both paths, and the batch engine, agree on the full prefix.
    let report = restored.checkpoint().expect("a granule has been absorbed");
    let replayed = remined.checkpoint().expect("a granule has been absorbed");
    let batch =
        StpmMiner::mine_sequences(&full_dseq, &config).expect("benchmark configuration is valid");
    let recovered_set = canonical(report.events(), report.patterns());
    assert_eq!(
        recovered_set,
        canonical(replayed.events(), replayed.patterns()),
        "recovery with a {tail_granules}-granule tail diverged from the streaming re-mine"
    );
    assert_eq!(
        recovered_set,
        canonical(batch.events(), batch.patterns()),
        "recovery with a {tail_granules}-granule tail diverged from the batch re-mine"
    );
    RecoveryPoint {
        tail_granules,
        granules: total,
        events: dseq.distinct_events().len(),
        snapshot_bytes: snapshot.len(),
        snapshot_write,
        recovery,
        remine,
        identical: true,
        patterns: report.total_patterns(),
    }
}

/// Runs the crash-position sweep for one profile.
#[must_use]
pub fn collect(profile: DatasetProfile, scale: &BenchScale) -> Vec<RecoveryPoint> {
    tail_sizes(scale)
        .into_iter()
        .map(|tail| measure_point(profile, scale, tail))
        .collect()
}

/// Renders the sweep as a table.
#[must_use]
pub fn table(profile: DatasetProfile, points: &[RecoveryPoint]) -> TextTable {
    let mut table = TextTable::new(
        &format!(
            "Recovery from snapshot + WAL tail vs full re-mine on {} (exact)",
            profile.short_name()
        ),
        &[
            "tail granules",
            "snapshot (KiB)",
            "write (ms)",
            "recover (ms)",
            "re-mine (ms)",
            "speedup",
            "patterns",
        ],
    );
    for point in points {
        table.add_row(vec![
            point.tail_granules.to_string(),
            format!("{:.1}", point.snapshot_bytes as f64 / 1024.0),
            format!("{:.3}", point.snapshot_write.as_secs_f64() * 1e3),
            format!("{:.3}", point.recovery.as_secs_f64() * 1e3),
            format!("{:.3}", point.remine.as_secs_f64() * 1e3),
            format!("{:.2}x", point.speedup()),
            point.patterns.to_string(),
        ]);
    }
    table
}

/// Serialises the sweep as a JSON document (hand-rolled: the workspace is
/// dependency-free).
#[must_use]
pub fn to_json(profile: DatasetProfile, points: &[RecoveryPoint]) -> String {
    let rendered: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"tail_granules\":{},\"granules\":{},\"events\":{},\
                 \"snapshot_bytes\":{},\"snapshot_write_secs\":{:.6},\
                 \"recovery_secs\":{:.6},\"remine_secs\":{:.6},\
                 \"speedup\":{:.3},\"identical\":{},\"patterns\":{}}}",
                p.tail_granules,
                p.granules,
                p.events,
                p.snapshot_bytes,
                p.snapshot_write.as_secs_f64(),
                p.recovery.as_secs_f64(),
                p.remine.as_secs_f64(),
                p.speedup(),
                p.identical,
                p.patterns
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"recovery\",\"threads\":1,\"profile\":\"{}\",\"points\":[{}]}}\n",
        profile.short_name(),
        rendered.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_recovers_exactly_at_every_crash_position() {
        let points = collect(DatasetProfile::Influenza, &BenchScale::quick());
        assert_eq!(points.len(), 2);
        for point in &points {
            assert!(point.identical, "recovery diverged");
            assert!(point.snapshot_bytes > 0, "snapshot came out empty");
            assert!(point.patterns > 0, "mining came unwired");
            assert!(point.granules > 0);
            assert!(point.speedup().is_finite() || point.recovery.is_zero());
        }
        assert_eq!(points[0].tail_granules, 0);
        assert!(points[1].tail_granules > 0);
    }

    #[test]
    fn json_is_structurally_sound() {
        let points = collect(DatasetProfile::Influenza, &BenchScale::quick());
        let json = to_json(DatasetProfile::Influenza, &points);
        assert!(json.starts_with("{\"experiment\":\"recovery\""));
        assert!(json.contains("\"tail_granules\":"));
        assert!(json.contains("\"recovery_secs\":"));
        assert!(json.contains("\"speedup\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",]") && !json.contains(",}"));
        let rendered = table(DatasetProfile::Influenza, &points);
        let _ = rendered;
    }
}
