//! Service-tier throughput/latency experiment: a fleet of simulated
//! tenants (power-law sizes, bursty arrival interleave from
//! [`stpm_datagen::service_load()`]) is driven through a [`Service`] with a
//! memory budget far below the fleet's working set, measuring sustained
//! acknowledged appends/sec and append-latency percentiles.
//!
//! The run is *adversarial on purpose*: the storage backend is the
//! in-memory [`FaultyFs`] with periodic transient I/O faults armed (so the
//! retry path is exercised and `io_retries` is live), and the budget
//! forces continuous cold-tenant eviction and rehydration. At the end the
//! experiment asserts the robustness counters moved, that residency ended
//! under budget, and that a sampled tenant's pattern set is identical to a
//! direct single-tenant pipeline fed the same batches — so a surviving
//! JSON file certifies the service tier degraded *gracefully* and mined
//! *exactly* while being starved and faulted.

use super::BenchScale;
use crate::table::TextTable;
use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::time::{Duration, Instant};
use stpm_core::{failpoints, FaultyFs, MemoryBudget, RetryPolicy, StpmConfig, Threshold};
use stpm_datagen::{service_load, ServiceLoad, TenantLoadSpec};
use stpm_service::{Request, Response, Service, ServiceConfig, ServiceError};

/// One measured fleet size.
#[derive(Debug, Clone, PartialEq)]
pub struct ServicePoint {
    /// Simulated tenants.
    pub tenants: usize,
    /// Batches in the arrival schedule.
    pub total_appends: u64,
    /// Appends acknowledged (every batch, once retries drained).
    pub acked_appends: u64,
    /// Typed `Overloaded` rejections absorbed by the closed-loop driver.
    pub overloaded: u64,
    /// Other typed errors retried by the driver (transient I/O).
    pub retried_errors: u64,
    /// Wall-clock time of the whole drive.
    pub wall: Duration,
    /// Median acknowledged-append latency (submit → ack).
    pub p50: Duration,
    /// 99th-percentile acknowledged-append latency.
    pub p99: Duration,
    /// Cold-tenant evictions performed by the budget enforcer.
    pub evictions: u64,
    /// Rehydrations of evicted tenants on touch.
    pub rehydrations: u64,
    /// Transient I/O retries absorbed across the fleet.
    pub io_retries: u64,
    /// Resident bytes at the end of the run.
    pub resident_bytes: u64,
    /// The configured memory budget.
    pub budget_bytes: u64,
    /// Whether the run ended within its budget (asserted).
    pub under_budget: bool,
    /// Whether the sampled tenant's patterns matched a direct pipeline
    /// (asserted).
    pub identical: bool,
}

impl ServicePoint {
    /// Sustained acknowledged appends per second.
    #[must_use]
    pub fn appends_per_sec(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall > 0.0 {
            self.acked_appends as f64 / wall
        } else {
            f64::INFINITY
        }
    }
}

/// Fleet sizes of the sweep.
#[must_use]
pub fn fleet_sizes(scale: &BenchScale) -> Vec<usize> {
    if scale.quick_grid {
        vec![50, 200]
    } else {
        vec![1000, 2500]
    }
}

/// The workload of one fleet size: a long tail of small tenants under a
/// few heavy ones, every batch granule-aligned.
fn load_for(tenants: usize) -> ServiceLoad {
    let mut spec = TenantLoadSpec::quick(tenants, 0x5e2_71ce);
    spec.max_granules = 48;
    spec.min_granules = 8;
    spec.num_series = 2;
    spec.batch_granules = 8;
    service_load(&spec)
}

fn thresholds() -> StpmConfig {
    StpmConfig {
        max_period: Threshold::Absolute(3),
        min_density: Threshold::Absolute(2),
        dist_interval: (2, 40),
        min_season: 1,
        max_pattern_len: 2,
        ..StpmConfig::default()
    }
}

/// Service config for a fleet: a memory budget of roughly 2 KiB per tenant
/// — far below the working set, so the enforcer must evict continuously.
fn config_for_fleet(load: &ServiceLoad) -> ServiceConfig {
    let mut config = ServiceConfig::new("bench-svc");
    config.mapping_factor = load.tenants[0].dataset.mapping_factor;
    config.thresholds = thresholds();
    config.workers = 4;
    config.tenant_queue_depth = 8;
    config.global_queue_depth = 256;
    config.memory_budget = Some(MemoryBudget::bytes((load.tenants.len() as u64) * 2048));
    config.retry = RetryPolicy::immediate(4);
    config
}

struct InFlight {
    tenant: usize,
    batch: usize,
    sent: Instant,
    rx: Receiver<Response>,
    attempts: u32,
}

/// Measures one fleet size.
///
/// # Panics
/// Panics when an append never acknowledges, the run ends over budget,
/// the robustness counters stayed flat, or the sampled tenant's patterns
/// diverge from a direct pipeline.
#[allow(clippy::too_many_lines)]
fn measure_point(tenants: usize) -> ServicePoint {
    let load = load_for(tenants);
    let config = config_for_fleet(&load);
    let fs = FaultyFs::with_seed(0xBEEF);
    // Arm periodic transient faults on the hot durable paths so the retry
    // machinery (and its counters) are exercised by the measurement itself.
    for i in 1..=16_u64 {
        fs.transient_nth(failpoints::WAL_APPEND, i * 97, 1);
        fs.transient_nth(failpoints::SNAPSHOT_WRITE, i * 61, 1);
    }
    let service = Service::start_with_storage(config.clone(), Arc::new(fs.clone()));

    // Closed-loop driver: up to `window` requests in flight, at most one
    // per tenant (per-tenant order must hold even under rejections).
    let window = 64_usize;
    let mut pending: VecDeque<InFlight> = VecDeque::new();
    let mut busy: HashSet<usize> = HashSet::new();
    let mut latencies: Vec<Duration> = Vec::with_capacity(load.arrivals.len());
    let mut overloaded = 0_u64;
    let mut retried_errors = 0_u64;
    let submit = |service: &Service, tenant: usize, batch: usize| -> InFlight {
        let rx = service.submit(Request::Append {
            tenant: load.tenants[tenant].name.clone(),
            deadline_ms: 0,
            batch: load.tenants[tenant].batches[batch].clone(),
        });
        InFlight {
            tenant,
            batch,
            sent: Instant::now(),
            rx,
            attempts: 1,
        }
    };
    let started = Instant::now();
    let mut drain_one =
        |pending: &mut VecDeque<InFlight>, busy: &mut HashSet<usize>, service: &Service| {
            let mut flight = pending.pop_front().expect("drain with work in flight");
            match flight.rx.recv().expect("the service answers every request") {
                Response::Appended { .. } => {
                    latencies.push(flight.sent.elapsed());
                    busy.remove(&flight.tenant);
                }
                Response::Error(e) => {
                    match e {
                        ServiceError::Overloaded { .. } => overloaded += 1,
                        _ => retried_errors += 1,
                    }
                    flight.attempts += 1;
                    assert!(
                        flight.attempts < 64,
                        "tenant {} batch {}: append never acknowledged",
                        flight.tenant,
                        flight.batch
                    );
                    let mut retry = submit(service, flight.tenant, flight.batch);
                    retry.attempts = flight.attempts;
                    pending.push_back(retry);
                }
                other => panic!("unexpected append response: {other:?}"),
            }
        };
    for &(tenant, batch) in &load.arrivals {
        while busy.contains(&tenant) || pending.len() >= window {
            drain_one(&mut pending, &mut busy, &service);
        }
        busy.insert(tenant);
        pending.push_back(submit(&service, tenant, batch));
    }
    while !pending.is_empty() {
        drain_one(&mut pending, &mut busy, &service);
    }
    let wall = started.elapsed();

    // Exactness sample: the heaviest tenant (most batches, most eviction
    // round trips) must match a direct single-tenant pipeline.
    let sample = &load.tenants[0];
    let service_patterns = match service.call(Request::Patterns {
        tenant: sample.name.clone(),
    }) {
        Response::Patterns { patterns } => patterns,
        other => panic!("patterns query failed: {other:?}"),
    };
    let mut direct = freqstpfts::Pipeline::builder()
        .mapping_factor(config.mapping_factor)
        .thresholds(config.thresholds.clone())
        .into_streaming();
    for batch in &sample.batches {
        direct
            .append_symbolic(batch)
            .expect("the direct pipeline absorbs the same batches");
    }
    let direct_patterns: Vec<String> = direct
        .checkpoint()
        .expect("the direct pipeline mines")
        .pattern_set()
        .into_iter()
        .collect();
    assert_eq!(
        service_patterns, direct_patterns,
        "tenant {}: the service tier changed what gets mined",
        sample.name
    );

    let stats = service.stats();
    let budget_bytes = stats.budget_bytes;
    let under_budget = stats.resident_bytes <= budget_bytes;
    assert!(
        under_budget,
        "run ended over budget: {} resident vs {} budget",
        stats.resident_bytes, budget_bytes
    );
    assert!(stats.evictions > 0, "the budget never forced an eviction");
    assert!(stats.rehydrations > 0, "no cold tenant was ever rehydrated");
    assert!(stats.io_retries > 0, "the armed transient faults never bit");
    assert_eq!(
        stats.acked_appends,
        load.arrivals.len() as u64,
        "every batch must eventually be acknowledged"
    );
    latencies.sort_unstable();
    let percentile = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let index = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[index]
    };
    let point = ServicePoint {
        tenants,
        total_appends: load.arrivals.len() as u64,
        acked_appends: stats.acked_appends,
        overloaded,
        retried_errors,
        wall,
        p50: percentile(0.50),
        p99: percentile(0.99),
        evictions: stats.evictions,
        rehydrations: stats.rehydrations,
        io_retries: stats.io_retries,
        resident_bytes: stats.resident_bytes,
        budget_bytes,
        under_budget,
        identical: true,
    };
    service.kill();
    point
}

/// Runs the fleet-size sweep.
#[must_use]
pub fn collect(scale: &BenchScale) -> Vec<ServicePoint> {
    fleet_sizes(scale).into_iter().map(measure_point).collect()
}

/// Renders the sweep as a table.
#[must_use]
pub fn table(points: &[ServicePoint]) -> TextTable {
    let mut table = TextTable::new(
        "Service tier under memory pressure and transient faults (exact)",
        &[
            "tenants",
            "appends",
            "appends/s",
            "p50 (ms)",
            "p99 (ms)",
            "evictions",
            "rehydrations",
            "io retries",
            "resident/budget (KiB)",
        ],
    );
    for point in points {
        table.add_row(vec![
            point.tenants.to_string(),
            point.acked_appends.to_string(),
            format!("{:.0}", point.appends_per_sec()),
            format!("{:.3}", point.p50.as_secs_f64() * 1e3),
            format!("{:.3}", point.p99.as_secs_f64() * 1e3),
            point.evictions.to_string(),
            point.rehydrations.to_string(),
            point.io_retries.to_string(),
            format!(
                "{:.0}/{:.0}",
                point.resident_bytes as f64 / 1024.0,
                point.budget_bytes as f64 / 1024.0
            ),
        ]);
    }
    table
}

/// Serialises the sweep as a JSON document (hand-rolled: the workspace is
/// dependency-free).
#[must_use]
pub fn to_json(points: &[ServicePoint]) -> String {
    let rendered: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"tenants\":{},\"total_appends\":{},\"acked_appends\":{},\
                 \"overloaded\":{},\"retried_errors\":{},\"wall_secs\":{:.6},\
                 \"appends_per_sec\":{:.1},\"p50_secs\":{:.6},\"p99_secs\":{:.6},\
                 \"evictions\":{},\"rehydrations\":{},\"io_retries\":{},\
                 \"resident_bytes\":{},\"budget_bytes\":{},\
                 \"under_budget\":{},\"identical\":{}}}",
                p.tenants,
                p.total_appends,
                p.acked_appends,
                p.overloaded,
                p.retried_errors,
                p.wall.as_secs_f64(),
                p.appends_per_sec(),
                p.p50.as_secs_f64(),
                p.p99.as_secs_f64(),
                p.evictions,
                p.rehydrations,
                p.io_retries,
                p.resident_bytes,
                p.budget_bytes,
                p.under_budget,
                p.identical
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"service\",\"points\":[{}]}}\n",
        rendered.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_stays_under_budget_and_mines_exactly() {
        let points = collect(&BenchScale::quick());
        assert_eq!(points.len(), 2);
        for point in &points {
            assert!(point.identical, "service-tier mining diverged");
            assert!(point.under_budget, "residency escaped the budget");
            assert_eq!(point.acked_appends, point.total_appends);
            assert!(point.evictions > 0);
            assert!(point.rehydrations > 0);
            assert!(point.io_retries > 0);
            assert!(point.p99 >= point.p50);
        }
    }
}
