//! Figures 7–10 and 17–20 — runtime and memory comparison of A-STPM, E-STPM
//! and APS-growth on the (surrogate) real datasets while varying one
//! threshold at a time (minSeason, minDensity, maxPeriod).

use super::{config_for, BenchScale};
use crate::measure::{measure_apsgrowth, measure_astpm, measure_estpm};
use crate::params::{scaled_real_spec, ParamGrid};
use crate::table::TextTable;
use stpm_datagen::{generate, DatasetProfile};

/// Which quantity the produced tables report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Wall-clock runtime in seconds (Figures 7/8/17/18).
    Runtime,
    /// Estimated peak data-structure footprint in MiB (Figures 9/10/19/20).
    Memory,
}

/// One measured sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The varied parameter's value (printed in the first column).
    pub x: String,
    /// A-STPM measurement (runtime seconds, memory MiB).
    pub astpm: (f64, f64),
    /// E-STPM measurement.
    pub estpm: (f64, f64),
    /// APS-growth measurement.
    pub apsgrowth: (f64, f64),
}

/// Runs one sweep (varying minSeason, minDensity or maxPeriod) on one
/// profile and returns the measured points.
#[must_use]
pub fn sweep(
    profile: DatasetProfile,
    scale: &BenchScale,
    vary: &str,
) -> Vec<SweepPoint> {
    let grid = ParamGrid::default();
    let spec = scale.apply(scaled_real_spec(profile));
    let data = generate(&spec);
    let dseq = data.dseq().expect("generated data maps to sequences");

    let defaults = (0.006_f64, 0.0075_f64, 4_u64);
    let points: Vec<(String, f64, f64, u64)> = match vary {
        "minSeason" => scale
            .thin(&grid.min_season)
            .iter()
            .map(|&s| (s.to_string(), defaults.0, defaults.1, s))
            .collect(),
        "minDensity" => scale
            .thin(&grid.min_density)
            .iter()
            .map(|&d| (format!("{:.2}%", d * 100.0), defaults.0, d, defaults.2))
            .collect(),
        _ => scale
            .thin(&grid.max_period)
            .iter()
            .map(|&p| (format!("{:.1}%", p * 100.0), p, defaults.1, defaults.2))
            .collect(),
    };

    points
        .into_iter()
        .map(|(label, max_period, min_density, min_season)| {
            let config = config_for(profile, max_period, min_density, min_season);
            let (e, _) = measure_estpm(&dseq, &config);
            let (a, _) = measure_astpm(&data.dsyb, data.mapping_factor, &config);
            let (b, _) = measure_apsgrowth(&dseq, &config);
            SweepPoint {
                x: label,
                astpm: (a.runtime_secs(), a.memory_mib()),
                estpm: (e.runtime_secs(), e.memory_mib()),
                apsgrowth: (b.runtime_secs(), b.memory_mib()),
            }
        })
        .collect()
}

/// Runs the three sweeps for every profile and renders one table per
/// (profile, sweep) pair for the requested metric.
#[must_use]
pub fn run(profiles: &[DatasetProfile], scale: &BenchScale, metric: Metric) -> Vec<TextTable> {
    let metric_name = match metric {
        Metric::Runtime => "runtime (s)",
        Metric::Memory => "memory (MiB)",
    };
    let mut tables = Vec::new();
    for &profile in profiles {
        for vary in ["minSeason", "minDensity", "maxPeriod"] {
            let mut table = TextTable::new(
                &format!(
                    "{metric_name} on {} while varying {vary} (Figs 7-10/17-20 shape)",
                    profile.short_name()
                ),
                &[vary, "A-STPM", "E-STPM", "APS-growth"],
            );
            for point in sweep(profile, scale, vary) {
                let pick = |pair: (f64, f64)| match metric {
                    Metric::Runtime => pair.0,
                    Metric::Memory => pair.1,
                };
                table.add_row(vec![
                    point.x.clone(),
                    format!("{:.4}", pick(point.astpm)),
                    format!("{:.4}", pick(point.estpm)),
                    format!("{:.4}", pick(point.apsgrowth)),
                ]);
            }
            tables.push(table);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_grid_value() {
        let points = sweep(DatasetProfile::Influenza, &BenchScale::quick(), "minSeason");
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.estpm.0 >= 0.0);
            assert!(p.estpm.1 > 0.0);
            assert!(p.apsgrowth.1 > 0.0);
        }
    }

    #[test]
    fn run_emits_three_sweeps_per_profile() {
        let tables = run(
            &[DatasetProfile::Influenza],
            &BenchScale::quick(),
            Metric::Runtime,
        );
        assert_eq!(tables.len(), 3);
        let memory = run(
            &[DatasetProfile::Influenza],
            &BenchScale::quick(),
            Metric::Memory,
        );
        assert_eq!(memory.len(), 3);
        assert!(memory[0].render().contains("memory"));
    }
}
