//! Figures 7–10 and 17–20 — runtime and memory comparison of the mining
//! engines on the (surrogate) real datasets while varying one threshold at a
//! time (minSeason, minDensity, maxPeriod).
//!
//! The sweep is engine-agnostic: every contender returned by
//! [`crate::measure::contenders`] is measured through the
//! [`stpm_core::MiningEngine`] trait, and the tables derive their columns
//! from the measured engine names.

use super::{config_for, BenchScale, PreparedData};
use crate::measure::{measure_all, Measurement};
use crate::params::{scaled_real_spec, ParamGrid};
use crate::table::TextTable;
use stpm_datagen::DatasetProfile;

/// Which quantity the produced tables report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Wall-clock runtime in seconds (Figures 7/8/17/18).
    Runtime,
    /// Estimated peak data-structure footprint in MiB (Figures 9/10/19/20).
    Memory,
}

/// One measured sweep point: one measurement per contender, in
/// [`crate::measure::contenders`] order.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The varied parameter's value (printed in the first column).
    pub x: String,
    /// One measurement per engine.
    pub measurements: Vec<Measurement>,
}

/// The grid points of one sweep: (label, maxPeriod, minDensity, minSeason).
pub(crate) fn sweep_points(scale: &BenchScale, vary: &str) -> Vec<(String, f64, f64, u64)> {
    let grid = ParamGrid::default();
    let defaults = (0.006_f64, 0.0075_f64, 4_u64);
    match vary {
        "minSeason" => scale
            .thin(&grid.min_season)
            .iter()
            .map(|&s| (s.to_string(), defaults.0, defaults.1, s))
            .collect(),
        "minDensity" => scale
            .thin(&grid.min_density)
            .iter()
            .map(|&d| (format!("{:.2}%", d * 100.0), defaults.0, d, defaults.2))
            .collect(),
        _ => scale
            .thin(&grid.max_period)
            .iter()
            .map(|&p| (format!("{:.1}%", p * 100.0), p, defaults.1, defaults.2))
            .collect(),
    }
}

/// Runs one sweep (varying minSeason, minDensity or maxPeriod) on one
/// profile and returns the measured points.
#[must_use]
pub fn sweep(profile: DatasetProfile, scale: &BenchScale, vary: &str) -> Vec<SweepPoint> {
    let prepared = PreparedData::generate(&scale.apply(scaled_real_spec(profile)));

    sweep_points(scale, vary)
        .into_iter()
        .map(|(label, max_period, min_density, min_season)| {
            let config = config_for(profile, max_period, min_density, min_season);
            SweepPoint {
                x: label,
                measurements: measure_all(&prepared.input(), &config),
            }
        })
        .collect()
}

/// Runs the three sweeps for every profile and renders one table per
/// (profile, sweep) pair for the requested metric, with one column per
/// measured engine.
#[must_use]
pub fn run(profiles: &[DatasetProfile], scale: &BenchScale, metric: Metric) -> Vec<TextTable> {
    let metric_name = match metric {
        Metric::Runtime => "runtime (s)",
        Metric::Memory => "memory (MiB)",
    };
    let mut tables = Vec::new();
    for &profile in profiles {
        for vary in ["minSeason", "minDensity", "maxPeriod"] {
            let points = sweep(profile, scale, vary);
            let mut header: Vec<String> = vec![vary.to_string()];
            if let Some(first) = points.first() {
                header.extend(first.measurements.iter().map(|m| m.algorithm.to_string()));
            }
            let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
            let mut table = TextTable::new(
                &format!(
                    "{metric_name} on {} while varying {vary} (Figs 7-10/17-20 shape)",
                    profile.short_name()
                ),
                &header_refs,
            );
            for point in points {
                let mut row = vec![point.x.clone()];
                row.extend(point.measurements.iter().map(|m| {
                    format!(
                        "{:.4}",
                        match metric {
                            Metric::Runtime => m.runtime_secs(),
                            Metric::Memory => m.memory_mib(),
                        }
                    )
                }));
                table.add_row(row);
            }
            tables.push(table);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_one_point_per_grid_value() {
        let points = sweep(DatasetProfile::Influenza, &BenchScale::quick(), "minSeason");
        assert_eq!(points.len(), 2);
        for p in &points {
            assert_eq!(p.measurements.len(), 3);
            for m in &p.measurements {
                assert!(m.runtime_secs() >= 0.0);
            }
        }
    }

    #[test]
    fn run_emits_three_sweeps_per_profile() {
        let tables = run(
            &[DatasetProfile::Influenza],
            &BenchScale::quick(),
            Metric::Runtime,
        );
        assert_eq!(tables.len(), 3);
        let memory = run(
            &[DatasetProfile::Influenza],
            &BenchScale::quick(),
            Metric::Memory,
        );
        assert_eq!(memory.len(), 3);
        assert!(memory[0].render().contains("memory"));
        // The engine columns come from the engines themselves.
        assert!(memory[0].render().contains("E-STPM"));
        assert!(memory[0].render().contains("APS-growth"));
    }
}
