//! Tables XI, XV, XVI — the percentage of time series and events pruned by
//! A-STPM on the synthetic datasets, as the number of series grows.
//!
//! The percentages are read from the engine-agnostic
//! [`PruningSummary`](stpm_core::PruningSummary) of the unified report, so
//! any engine that prunes can be plugged into [`pruning_for`].

use super::{config_for, BenchScale, PreparedData};
use crate::params::{scalability_param_pairs, synthetic_sequences, synthetic_series_points};
use crate::table::TextTable;
use stpm_approx::AStpmMiner;
use stpm_core::MiningEngine;
use stpm_datagen::{DatasetProfile, DatasetSpec};

/// Pruned-series and pruned-events percentages of one engine on one
/// configuration point.
#[must_use]
pub fn pruning_for(
    spec: &DatasetSpec,
    engine: &dyn MiningEngine,
    min_season: u64,
    min_density: f64,
) -> (f64, f64) {
    let prepared = PreparedData::generate(spec);
    let config = config_for(spec.profile, 0.006, min_density, min_season);
    let report = engine
        .mine_with(&prepared.input(), &config)
        .expect("valid configuration");
    (
        report.pruning().pruned_series_pct(),
        report.pruning().pruned_events_pct(),
    )
}

/// Runs the pruning-ratio sweep for each profile: rows = #series, columns =
/// the three (minSeason, minDensity) pairs, once for series % and once for
/// events %.
#[must_use]
pub fn run(profiles: &[DatasetProfile], scale: &BenchScale) -> Vec<TextTable> {
    let engine = AStpmMiner::new();
    let pairs = scale.thin(&scalability_param_pairs());
    let series_points = scale.thin(&synthetic_series_points());

    let mut tables = Vec::new();
    for &profile in profiles {
        let mut header: Vec<String> = vec!["#series".to_string()];
        for (s, d) in &pairs {
            header.push(format!("series% {s}-{:.1}%", d * 100.0));
        }
        for (s, d) in &pairs {
            header.push(format!("events% {s}-{:.1}%", d * 100.0));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(
            &format!(
                "Pruned time series and events by {} on {} (Tables XI/XV/XVI shape)",
                engine.name(),
                profile.short_name()
            ),
            &header_refs,
        );
        for &series in &series_points {
            let spec = scale.apply(DatasetSpec::synthetic(
                profile,
                series,
                synthetic_sequences(profile),
            ));
            let mut row = vec![series.to_string()];
            let results: Vec<(f64, f64)> = pairs
                .iter()
                .map(|&(min_season, min_density)| {
                    pruning_for(&spec, &engine, min_season, min_density)
                })
                .collect();
            for (series_pct, _) in &results {
                row.push(format!("{series_pct:.2}"));
            }
            for (_, events_pct) in &results {
                row.push(format!("{events_pct:.2}"));
            }
            table.add_row(row);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::scaled_real_spec;
    use stpm_core::StpmMiner;

    #[test]
    fn pruning_percentages_are_bounded() {
        let spec = BenchScale::quick().apply(scaled_real_spec(DatasetProfile::HandFootMouth));
        let (series_pct, events_pct) = pruning_for(&spec, &AStpmMiner::new(), 2, 0.0075);
        assert!((0.0..=100.0).contains(&series_pct));
        assert!((0.0..=100.0).contains(&events_pct));
    }

    #[test]
    fn non_pruning_engines_report_zero() {
        let spec = BenchScale::quick().apply(scaled_real_spec(DatasetProfile::HandFootMouth));
        let (series_pct, events_pct) = pruning_for(&spec, &StpmMiner, 2, 0.0075);
        assert_eq!(series_pct, 0.0);
        assert_eq!(events_pct, 0.0);
    }

    #[test]
    fn noise_heavy_datasets_see_more_pruning() {
        let scale = BenchScale::quick();
        let correlated = scale
            .apply(scaled_real_spec(DatasetProfile::Influenza))
            .with_correlated_fraction(1.0);
        let noisy = scale
            .apply(scaled_real_spec(DatasetProfile::Influenza))
            .with_correlated_fraction(0.3);
        let (p_corr, _) = pruning_for(&correlated, &AStpmMiner::new(), 4, 0.0075);
        let (p_noisy, _) = pruning_for(&noisy, &AStpmMiner::new(), 4, 0.0075);
        assert!(
            p_noisy >= p_corr,
            "noisy {p_noisy}% should prune at least as much as correlated {p_corr}%"
        );
    }

    #[test]
    fn run_produces_grid_tables() {
        let tables = run(&[DatasetProfile::Influenza], &BenchScale::quick());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 2);
    }
}
