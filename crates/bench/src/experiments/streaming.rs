//! Streaming (incremental) mining experiment: amortized append cost of the
//! [`StreamingMiner`] vs a full batch re-mine of the same prefix, across
//! arrival batch sizes.
//!
//! The stream replays a generated dataset through its batched-arrival view
//! ([`stpm_datagen::GeneratedDataset::arrival_batches`]): each batch is
//! folded into the growing symbolic database, the *new* granules are built
//! (`SequenceDatabase::append_from_symbolic`) and absorbed
//! (`StreamingMiner::append`), and — for the comparison — the full prefix is
//! re-mined from scratch with the batch engine (`D_SEQ` rebuild included,
//! because that is the cost a batch-only system pays on every arrival).
//!
//! At **every** checkpoint the streaming pattern set (patterns, supports,
//! seasons) is asserted identical to the batch re-mine — the experiment
//! panics on the first divergence, so a surviving JSON file certifies
//! exactness over the whole sweep.

use super::{config_for, BenchScale};
use crate::table::TextTable;
use std::time::{Duration, Instant};
use stpm_core::{canonical_result_set as canonical, StpmMiner, StreamingMiner};
use stpm_datagen::{generate, DatasetProfile, DatasetSpec};
use stpm_timeseries::SequenceDatabase;

/// One measured arrival-batch size of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingPoint {
    /// Granules per arrival batch.
    pub batch_granules: u64,
    /// Number of append/checkpoint steps the stream was replayed in.
    pub checkpoints: usize,
    /// Checkpoints whose streaming output was identical to the batch
    /// re-mine (the experiment asserts this equals `checkpoints`).
    pub identical_checkpoints: usize,
    /// Total granules of the replayed dataset.
    pub granules: u64,
    /// Distinct events of the final prefix.
    pub events: usize,
    /// Total wall-clock time of all streaming *appends*: building the new
    /// granules plus absorbing them — the O(delta) work.
    pub append_total: Duration,
    /// Total wall-clock time of all checkpoint *emissions*: frequency gate,
    /// season materialisation and output cloning — O(output) work that any
    /// consumer of the full result set pays, batch re-mines included.
    pub emit_total: Duration,
    /// Total wall-clock time of the batch re-mines (`D_SEQ` rebuild +
    /// mining) at the same checkpoints.
    pub remine_total: Duration,
    /// Frequent patterns (events + k-event patterns) at the final
    /// checkpoint.
    pub patterns_final: usize,
    /// Persistent footprint of the streaming state after the final append.
    pub streaming_memory_bytes: usize,
    /// Peak footprint of the final batch re-mine.
    pub batch_memory_bytes: usize,
}

impl StreamingPoint {
    /// Mean append (absorption) cost per checkpoint, in seconds.
    #[must_use]
    pub fn amortized_append_secs(&self) -> f64 {
        self.append_total.as_secs_f64() / self.checkpoints.max(1) as f64
    }

    /// Mean checkpoint-emission cost, in seconds.
    #[must_use]
    pub fn amortized_emit_secs(&self) -> f64 {
        self.emit_total.as_secs_f64() / self.checkpoints.max(1) as f64
    }

    /// Mean batch re-mine cost per checkpoint, in seconds.
    #[must_use]
    pub fn amortized_remine_secs(&self) -> f64 {
        self.remine_total.as_secs_f64() / self.checkpoints.max(1) as f64
    }

    /// How many times cheaper the amortized append is than the amortized
    /// re-mine.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        let append = self.append_total.as_secs_f64();
        if append > 0.0 {
            self.remine_total.as_secs_f64() / append
        } else {
            f64::INFINITY
        }
    }
}

/// Arrival batch sizes of the sweep, smallest (most checkpoints) first.
#[must_use]
pub fn batch_sizes(scale: &BenchScale) -> Vec<u64> {
    if scale.quick_grid {
        vec![10, 20]
    } else {
        vec![30, 60, 120]
    }
}

/// The dataset spec the stream replays: the quick grid matches the other
/// smoke runs, the full grid matches the largest single-threaded scaling
/// configuration (8 series × 720 granules).
fn stream_spec(profile: DatasetProfile, scale: &BenchScale) -> DatasetSpec {
    if scale.quick_grid {
        scale.apply(DatasetSpec::real(profile))
    } else {
        DatasetSpec::real(profile).scaled_to(8, 720)
    }
}

/// Replays one batch size through the stream, asserting batch/streaming
/// identity at every checkpoint.
///
/// # Panics
/// Panics when a checkpoint's streaming output diverges from the batch
/// re-mine of the same prefix — exactness is the point of the experiment.
fn measure_point(
    profile: DatasetProfile,
    scale: &BenchScale,
    batch_granules: u64,
) -> StreamingPoint {
    let spec = stream_spec(profile, scale);
    let data = generate(&spec);
    let mut config = config_for(profile, 0.006, 0.0075, 2);
    config.max_pattern_len = 3;
    let config = config.with_threads(1);
    let m = data.mapping_factor;

    let batches = data.arrival_batches(batch_granules, batch_granules);
    let mut dsyb = batches[0].clone();
    let mut dseq =
        SequenceDatabase::from_sequences(Vec::new(), dsyb.registry().clone(), m, dsyb.num_series());
    let mut miner =
        StreamingMiner::new(&config, dsyb.registry()).expect("benchmark configuration is valid");

    let mut append_total = Duration::ZERO;
    let mut emit_total = Duration::ZERO;
    let mut remine_total = Duration::ZERO;
    let mut identical_checkpoints = 0usize;
    let mut patterns_final = 0usize;
    let mut batch_memory_bytes = 0usize;
    for (index, batch) in batches.iter().enumerate() {
        if index > 0 {
            dsyb.append_batch(batch).expect("batches share the schema");
        }
        // Streaming side: build only the new granules and absorb them (the
        // O(delta) append) …
        let append_start = Instant::now();
        let appended = dseq
            .append_from_symbolic(&dsyb)
            .expect("the grown database extends the built prefix");
        miner.append_batch(appended).expect("append stays in order");
        append_total += append_start.elapsed();
        // … then emit the checkpoint (O(output) — the cost of materialising
        // the full result set, which a batch run pays inside its mine too).
        let emit_start = Instant::now();
        let report = miner.checkpoint().expect("a granule has been absorbed");
        emit_total += emit_start.elapsed();
        // Batch side: rebuild D_SEQ from scratch and re-mine the full prefix.
        let remine_start = Instant::now();
        let full_dseq = dsyb
            .to_sequence_database(m)
            .expect("the prefix holds at least one granule");
        let remined = StpmMiner::mine_sequences(&full_dseq, &config)
            .expect("benchmark configuration is valid");
        remine_total += remine_start.elapsed();

        let streaming_set = canonical(report.events(), report.patterns());
        let batch_set = canonical(remined.events(), remined.patterns());
        assert_eq!(
            streaming_set, batch_set,
            "streaming checkpoint {index} diverged from the batch re-mine \
             (batch size {batch_granules})"
        );
        identical_checkpoints += 1;
        patterns_final = report.total_patterns();
        batch_memory_bytes = remined.stats().peak_footprint_bytes;
    }
    StreamingPoint {
        batch_granules,
        checkpoints: batches.len(),
        identical_checkpoints,
        granules: miner.num_granules(),
        events: dseq.distinct_events().len(),
        append_total,
        emit_total,
        remine_total,
        patterns_final,
        streaming_memory_bytes: miner.footprint_bytes(),
        batch_memory_bytes,
    }
}

/// Runs the batch-size sweep for one profile.
#[must_use]
pub fn collect(profile: DatasetProfile, scale: &BenchScale) -> Vec<StreamingPoint> {
    batch_sizes(scale)
        .into_iter()
        .map(|batch| measure_point(profile, scale, batch))
        .collect()
}

/// Renders the sweep as a table.
#[must_use]
pub fn table(profile: DatasetProfile, points: &[StreamingPoint]) -> TextTable {
    let mut table = TextTable::new(
        &format!(
            "Streaming append vs full re-mine on {} (exact at every checkpoint)",
            profile.short_name()
        ),
        &[
            "batch granules",
            "checkpoints",
            "append (ms, amortized)",
            "emit (ms, amortized)",
            "re-mine (ms, amortized)",
            "speedup",
            "patterns",
        ],
    );
    for point in points {
        table.add_row(vec![
            point.batch_granules.to_string(),
            point.checkpoints.to_string(),
            format!("{:.3}", point.amortized_append_secs() * 1e3),
            format!("{:.3}", point.amortized_emit_secs() * 1e3),
            format!("{:.3}", point.amortized_remine_secs() * 1e3),
            format!("{:.2}x", point.speedup()),
            point.patterns_final.to_string(),
        ]);
    }
    table
}

/// Serialises the sweep as a JSON document (hand-rolled: the workspace is
/// dependency-free).
#[must_use]
pub fn to_json(profile: DatasetProfile, points: &[StreamingPoint]) -> String {
    let rendered: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"batch_granules\":{},\"checkpoints\":{},\
                 \"identical_checkpoints\":{},\"granules\":{},\"events\":{},\
                 \"append_total_secs\":{:.6},\"emit_total_secs\":{:.6},\
                 \"remine_total_secs\":{:.6},\
                 \"amortized_append_secs\":{:.6},\"amortized_emit_secs\":{:.6},\
                 \"amortized_remine_secs\":{:.6},\
                 \"speedup\":{:.3},\"patterns_final\":{},\
                 \"streaming_memory_bytes\":{},\"batch_memory_bytes\":{}}}",
                p.batch_granules,
                p.checkpoints,
                p.identical_checkpoints,
                p.granules,
                p.events,
                p.append_total.as_secs_f64(),
                p.emit_total.as_secs_f64(),
                p.remine_total.as_secs_f64(),
                p.amortized_append_secs(),
                p.amortized_emit_secs(),
                p.amortized_remine_secs(),
                p.speedup(),
                p.patterns_final,
                p.streaming_memory_bytes,
                p.batch_memory_bytes
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"streaming\",\"threads\":1,\"profile\":\"{}\",\"points\":[{}]}}\n",
        profile.short_name(),
        rendered.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_is_exact_at_every_checkpoint() {
        let points = collect(DatasetProfile::Influenza, &BenchScale::quick());
        assert_eq!(points.len(), 2);
        for point in &points {
            assert_eq!(
                point.identical_checkpoints, point.checkpoints,
                "a checkpoint diverged"
            );
            assert!(point.checkpoints >= 2, "the sweep must stream in batches");
            assert!(point.patterns_final > 0, "mining came unwired");
            assert!(point.granules > 0);
            assert!(point.streaming_memory_bytes > 0);
        }
        // Smaller batches mean more checkpoints.
        assert!(points[0].checkpoints > points[1].checkpoints);
    }

    #[test]
    fn json_is_structurally_sound() {
        let points = collect(DatasetProfile::Influenza, &BenchScale::quick());
        let json = to_json(DatasetProfile::Influenza, &points);
        assert!(json.starts_with("{\"experiment\":\"streaming\""));
        assert!(json.contains("\"batch_granules\":"));
        assert!(json.contains("\"amortized_append_secs\":"));
        assert!(json.contains("\"speedup\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",]") && !json.contains(",}"));
        let rendered = table(DatasetProfile::Influenza, &points);
        let _ = rendered;
    }
}
