//! Kernel-throughput experiment: the four vectorizable kernel families of
//! `stpm_core::simd` measured tier by tier (scalar, then every SIMD tier
//! the host CPU supports), at 10⁷–10⁸-element scale per measured call.
//!
//! Unlike the figure/table reproductions this family exists to track the
//! *kernel constant factor* across revisions, and to prove two things on
//! every run:
//!
//! * **parity** — every tier's output is byte-identical to the scalar
//!   twin's on the measured inputs (asserted, not sampled), and a small
//!   end-to-end mine records its pattern count so CI can diff counts
//!   across dispatch legs (`STPM_FORCE_SCALAR=1` vs detected);
//! * **throughput** — min/median per-call time and elements/sec per tier,
//!   emitted as machine-readable JSON (`BENCH_kernels.json`) diffable
//!   against the committed baseline by
//!   `scripts/check_kernels_regression.py`.
//!
//! Tiers where a kernel keeps its scalar twin (e.g. `intersect` on SSE2)
//! are measured and reported like any other — honest ≈1.0× ratios are
//! part of the record, not hidden.

use super::config_for;
use crate::measure::measure;
use crate::table::TextTable;
use std::hint::black_box;
use std::time::Instant;
use stpm_core::simd::{self, Kernels};
use stpm_core::StpmMiner;
use stpm_datagen::{DatasetProfile, DatasetSpec};

/// Minimum and median per-call time of one measured loop, in nanoseconds.
/// The median is the headline number (robust against scheduler noise on
/// shared runners); the minimum bounds the best case the hardware reached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingStats {
    /// Fastest observed per-call time, in nanoseconds.
    pub min_ns: f64,
    /// Median observed per-call time, in nanoseconds.
    pub median_ns: f64,
}

/// Times `f` over `samples` batches of `iters` calls each and returns the
/// minimum and median per-call time. Shared by this experiment and by
/// `benches/kernels.rs`, so the micro-benchmarks and the CI-gated JSON
/// report the same statistics.
pub fn time_samples<T>(samples: usize, iters: u32, mut f: impl FnMut() -> T) -> TimingStats {
    for _ in 0..iters.min(3) {
        black_box(f());
    }
    let mut per_call_ns: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / f64::from(iters.max(1))
        })
        .collect();
    per_call_ns.sort_by(f64::total_cmp);
    TimingStats {
        min_ns: per_call_ns[0],
        median_ns: per_call_ns[per_call_ns.len() / 2],
    }
}

/// Formats a per-call time with an auto-selected unit, for table output.
#[must_use]
pub fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    }
}

/// One tier's measurement of one kernel workload.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTiming {
    /// Tier name (`"scalar"`, `"sse2"`, `"avx2"`).
    pub tier: &'static str,
    /// Per-call timing statistics.
    pub stats: TimingStats,
    /// Elements processed per second, from the median per-call time.
    pub elements_per_sec: f64,
}

impl KernelTiming {
    fn new(tier: &'static str, elements: usize, stats: TimingStats) -> Self {
        let elements_per_sec = if stats.median_ns > 0.0 {
            elements as f64 * 1e9 / stats.median_ns
        } else {
            0.0
        };
        Self {
            tier,
            stats,
            elements_per_sec,
        }
    }

    /// Speedup of this tier over a scalar median (`>1` means faster).
    #[must_use]
    pub fn speedup_over(&self, scalar_median_ns: f64) -> f64 {
        if self.stats.median_ns > 0.0 {
            scalar_median_ns / self.stats.median_ns
        } else {
            0.0
        }
    }
}

/// One kernel workload: the input size, the scalar-reference output
/// fingerprint (every tier is asserted byte-identical before timing), and
/// one [`KernelTiming`] per supported tier, scalar first.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPoint {
    /// Kernel family name.
    pub kernel: &'static str,
    /// Elements processed per call (set elements, words, bytes, or support
    /// entries, depending on the kernel).
    pub elements: usize,
    /// Output size (matches / surviving bits / run length) — compared
    /// across dispatch legs by the CI parity matrix.
    pub matches: u64,
    /// Order-sensitive FNV-style fingerprint of the scalar output —
    /// compared across dispatch legs by the CI parity matrix.
    pub checksum: u64,
    /// Per-tier timings, scalar first.
    pub timings: Vec<KernelTiming>,
}

impl KernelPoint {
    /// The scalar tier's median per-call time in nanoseconds.
    #[must_use]
    pub fn scalar_median_ns(&self) -> f64 {
        self.timings[0].stats.median_ns
    }

    /// The best (fastest-median) tier of this point.
    #[must_use]
    pub fn best(&self) -> &KernelTiming {
        self.timings
            .iter()
            .min_by(|a, b| a.stats.median_ns.total_cmp(&b.stats.median_ns))
            .expect("every point has at least the scalar tier")
    }
}

/// A full run of the kernel experiment on this host.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelsRun {
    /// Best tier the CPU supports (ignoring `STPM_FORCE_SCALAR`).
    pub detected: &'static str,
    /// Tier the process-wide dispatch actually chose.
    pub chosen: &'static str,
    /// Whether `STPM_FORCE_SCALAR` forced the scalar table.
    pub force_scalar: bool,
    /// Whether this was a quick (smoke-scale) run.
    pub quick: bool,
    /// One point per kernel family.
    pub points: Vec<KernelPoint>,
    /// Pattern count of a small end-to-end mine through the process-wide
    /// dispatch — must be identical across CI dispatch legs.
    pub patterns: usize,
}

/// Input sizes and sampling depth of one run. `full()` measures each call
/// at 10⁷–10⁸ elements; `quick()` shrinks everything to smoke scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelScale {
    /// Marks quick runs in the JSON so the regression gate can refuse to
    /// compare a quick run against the full baseline.
    pub quick: bool,
    /// Timed batches per tier (min/median are taken over these).
    pub samples: usize,
    /// Length of *each* sorted input set of the intersection kernels.
    pub set_len: usize,
    /// Words per bitset row of the `and_words` kernel.
    pub row_words: usize,
    /// Bytes per verdict block of the `verdict_any` kernel.
    pub block_bytes: usize,
    /// Support entries of the `run_end` kernel.
    pub support_len: usize,
}

impl KernelScale {
    /// The CI-gated full scale: every kernel call processes 10⁷–10⁸
    /// elements, so per-call noise is well under the gate's tolerance.
    #[must_use]
    pub fn full() -> Self {
        Self {
            quick: false,
            samples: 9,
            set_len: 5_000_000,
            row_words: 4_194_304,
            block_bytes: 33_554_432,
            support_len: 10_000_000,
        }
    }

    /// A seconds-scale smoke configuration used by tests and the CI parity
    /// matrix (where only parity fields are compared, never timings).
    #[must_use]
    pub fn quick() -> Self {
        Self {
            quick: true,
            samples: 7,
            set_len: 20_000,
            row_words: 16_384,
            block_bytes: 131_072,
            support_len: 100_000,
        }
    }

    /// Calls per timed batch: quick runs batch more calls to keep the
    /// clock readings meaningful, full runs aggregate to ≥10⁷ elements.
    fn iters_for(&self, elements: usize) -> u32 {
        if self.quick {
            8
        } else {
            u32::try_from(10_000_000usize.div_ceil(elements.max(1)).max(1)).unwrap_or(1)
        }
    }
}

fn fingerprint(acc: u64, value: u64) -> u64 {
    (acc ^ value).wrapping_mul(0x0000_0100_0000_01b3)
}

fn checksum_u64(values: &[u64]) -> u64 {
    values
        .iter()
        .fold(0xcbf2_9ce4_8422_2325, |h, &v| fingerprint(h, v))
}

/// The two sorted sets of the intersection workloads: pseudo-random
/// membership draws from a shared increasing universe — the shape of real
/// support lists (irregular gaps, ≈50% overlap, equal lengths → linear
/// regime), where the scalar merge's branches are data-dependent. A
/// regular-stride workload would hand the scalar loop perfect branch
/// prediction and understate every merge kernel.
fn intersection_sets(set_len: usize) -> (Vec<u64>, Vec<u64>) {
    let mut a = Vec::with_capacity(set_len);
    let mut b = Vec::with_capacity(set_len);
    let mut state = 0x243f_6a88_85a3_08d3u64;
    let mut t = 0u64;
    while a.len() < set_len || b.len() < set_len {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        t += 1 + (state >> 61); // gap in 1..=8
        if state & (1 << 20) != 0 && a.len() < set_len {
            a.push(t);
        }
        if state & (1 << 40) != 0 && b.len() < set_len {
            b.push(t);
        }
    }
    (a, b)
}

fn point_intersect(tiers: &[&'static Kernels], scale: &KernelScale) -> KernelPoint {
    let (a, b) = intersection_sets(scale.set_len);
    let elements = a.len() + b.len();
    let mut reference = Vec::new();
    tiers[0].intersect(&a, &b, &mut reference);
    let timings = tiers
        .iter()
        .map(|tier| {
            let mut out = Vec::with_capacity(reference.len() + 8);
            tier.intersect(&a, &b, &mut out);
            assert_eq!(
                out,
                reference,
                "tier {} diverges from scalar on intersect",
                tier.name()
            );
            let stats = time_samples(scale.samples, scale.iters_for(elements), || {
                out.clear();
                tier.intersect(black_box(&a), black_box(&b), &mut out);
                out.len()
            });
            KernelTiming::new(tier.name(), elements, stats)
        })
        .collect();
    KernelPoint {
        kernel: "intersect",
        elements,
        matches: reference.len() as u64,
        checksum: checksum_u64(&reference),
        timings,
    }
}

fn point_intersect_positions(tiers: &[&'static Kernels], scale: &KernelScale) -> KernelPoint {
    let (a, b) = intersection_sets(scale.set_len);
    let elements = a.len() + b.len();
    let (mut ref_vals, mut ref_pa, mut ref_pb) = (Vec::new(), Vec::new(), Vec::new());
    tiers[0].intersect_positions(&a, &b, &mut ref_vals, &mut ref_pa, &mut ref_pb);
    let checksum = ref_pa
        .iter()
        .chain(ref_pb.iter())
        .fold(checksum_u64(&ref_vals), |h, &p| {
            fingerprint(h, u64::from(p))
        });
    let timings = tiers
        .iter()
        .map(|tier| {
            let (mut vals, mut pa, mut pb) = (Vec::new(), Vec::new(), Vec::new());
            tier.intersect_positions(&a, &b, &mut vals, &mut pa, &mut pb);
            assert_eq!(
                (&vals, &pa, &pb),
                (&ref_vals, &ref_pa, &ref_pb),
                "tier {} diverges from scalar on intersect_positions",
                tier.name()
            );
            let stats = time_samples(scale.samples, scale.iters_for(elements), || {
                vals.clear();
                pa.clear();
                pb.clear();
                tier.intersect_positions(black_box(&a), black_box(&b), &mut vals, &mut pa, &mut pb);
                vals.len()
            });
            KernelTiming::new(tier.name(), elements, stats)
        })
        .collect();
    KernelPoint {
        kernel: "intersect_positions",
        elements,
        matches: ref_vals.len() as u64,
        checksum,
        timings,
    }
}

fn point_and_words(tiers: &[&'static Kernels], scale: &KernelScale) -> KernelPoint {
    let base: Vec<u64> = (0..scale.row_words as u64)
        .map(|w| 0x9e37_79b9_7f4a_7c15u64.rotate_left((w % 64) as u32) | 1)
        .collect();
    let row: Vec<u64> = (0..scale.row_words as u64)
        .map(|w| 0xc2b2_ae3d_27d4_eb4fu64.rotate_right((w % 64) as u32) | (1 << (w % 64)))
        .collect();
    let reference: Vec<u64> = base.iter().zip(&row).map(|(&x, &y)| x & y).collect();
    let elements = scale.row_words;
    let timings = tiers
        .iter()
        .map(|tier| {
            let mut acc = base.clone();
            tier.and_words(&mut acc, &row);
            assert_eq!(
                acc,
                reference,
                "tier {} diverges from scalar on and_words",
                tier.name()
            );
            // AND is idempotent, so repeated applications time the pure
            // kernel without a reset copy in the loop.
            let stats = time_samples(scale.samples, scale.iters_for(elements), || {
                tier.and_words(black_box(&mut acc), black_box(&row));
                acc[0]
            });
            KernelTiming::new(tier.name(), elements, stats)
        })
        .collect();
    KernelPoint {
        kernel: "and_words",
        elements,
        matches: reference.iter().map(|w| u64::from(w.count_ones())).sum(),
        checksum: checksum_u64(&reference),
        timings,
    }
}

fn point_verdict_any(tiers: &[&'static Kernels], scale: &KernelScale) -> KernelPoint {
    // All-NONE block: the worst case (full scan, no early exit) — the shape
    // the miner's granule veto hits on unrelated pairs.
    let cold = vec![0u8; scale.block_bytes];
    let mut hot = cold.clone();
    *hot.last_mut().expect("block is non-empty") = 3;
    let elements = cold.len();
    let timings = tiers
        .iter()
        .map(|tier| {
            assert!(
                !tier.verdict_any(&cold) && tier.verdict_any(&hot),
                "tier {} diverges from scalar on verdict_any",
                tier.name()
            );
            let stats = time_samples(scale.samples, scale.iters_for(elements), || {
                tier.verdict_any(black_box(&cold))
            });
            KernelTiming::new(tier.name(), elements, stats)
        })
        .collect();
    KernelPoint {
        kernel: "verdict_any",
        elements,
        matches: 0,
        checksum: elements as u64,
        timings,
    }
}

fn point_run_end(tiers: &[&'static Kernels], scale: &KernelScale) -> KernelPoint {
    const MAX_PERIOD: u64 = 8;
    // One maximal dense run spanning the whole support (every gap ≤ the
    // period), so a single call scans `support_len` entries.
    let mut support = Vec::with_capacity(scale.support_len);
    let mut t = 0u64;
    for i in 0..scale.support_len as u64 {
        t += 1 + (i % MAX_PERIOD);
        support.push(t);
    }
    // A gapped variant checks parity at run boundaries, not just the
    // full-span fast case.
    let gapped: Vec<u64> = support
        .iter()
        .enumerate()
        .map(|(i, &v)| v + (i as u64 / 97) * (MAX_PERIOD * 3))
        .collect();
    let elements = support.len();
    let reference_end = tiers[0].run_end(&support, 0, MAX_PERIOD);
    let timings = tiers
        .iter()
        .map(|tier| {
            assert_eq!(
                tier.run_end(&support, 0, MAX_PERIOD),
                reference_end,
                "tier {} diverges from scalar on run_end",
                tier.name()
            );
            for start in [0usize, 1, 95, 96, 97, 200] {
                if start < gapped.len() {
                    assert_eq!(
                        tier.run_end(&gapped, start, MAX_PERIOD),
                        tiers[0].run_end(&gapped, start, MAX_PERIOD),
                        "tier {} diverges from scalar on gapped run_end",
                        tier.name()
                    );
                }
            }
            let stats = time_samples(scale.samples, scale.iters_for(elements), || {
                tier.run_end(black_box(&support), 0, MAX_PERIOD)
            });
            KernelTiming::new(tier.name(), elements, stats)
        })
        .collect();
    KernelPoint {
        kernel: "run_end",
        elements,
        matches: reference_end as u64,
        checksum: reference_end as u64,
        timings,
    }
}

/// A small end-to-end mine through the process-wide dispatch: its pattern
/// count is the cross-leg invariant of the CI parity matrix (scalar and
/// vectorized legs must report the same count).
fn end_to_end_patterns() -> usize {
    let spec = DatasetSpec::real(DatasetProfile::Influenza)
        .scaled_to(6, 160)
        .with_seed(11);
    let prepared = super::PreparedData::generate(&spec);
    let config = config_for(DatasetProfile::Influenza, 0.006, 0.0075, 2).with_threads(1);
    measure(&StpmMiner, &prepared.input(), &config).0.patterns
}

/// Runs the whole experiment: every kernel family, every tier the host CPU
/// supports, parity asserted before every timed loop.
///
/// # Panics
/// Panics if any tier's output diverges from the scalar twin's.
#[must_use]
pub fn collect(scale: &KernelScale) -> KernelsRun {
    let tiers = simd::tiers();
    let points = vec![
        point_intersect(&tiers, scale),
        point_intersect_positions(&tiers, scale),
        point_and_words(&tiers, scale),
        point_verdict_any(&tiers, scale),
        point_run_end(&tiers, scale),
    ];
    KernelsRun {
        detected: simd::detected().name(),
        chosen: simd::kernels().name(),
        force_scalar: simd::force_scalar_requested(),
        quick: scale.quick,
        points,
        patterns: end_to_end_patterns(),
    }
}

/// Renders the run as one table: a row per (kernel, tier).
#[must_use]
pub fn table(run: &KernelsRun) -> TextTable {
    let mut table = TextTable::new(
        &format!(
            "Kernel throughput (detected: {}, dispatch: {}{})",
            run.detected,
            run.chosen,
            if run.quick { ", quick" } else { "" }
        ),
        &[
            "kernel",
            "tier",
            "elements",
            "min/call",
            "median/call",
            "Melem/s",
            "vs scalar",
        ],
    );
    for point in &run.points {
        let scalar_median = point.scalar_median_ns();
        for timing in &point.timings {
            table.add_row(vec![
                point.kernel.to_string(),
                timing.tier.to_string(),
                point.elements.to_string(),
                format_ns(timing.stats.min_ns),
                format_ns(timing.stats.median_ns),
                format!("{:.1}", timing.elements_per_sec / 1e6),
                format!("{:.2}x", timing.speedup_over(scalar_median)),
            ]);
        }
    }
    table
}

/// Serialises a run as a JSON document (hand-rolled: the workspace is
/// dependency-free). Shape:
///
/// ```json
/// {"experiment":"kernels","detected":"avx2","chosen":"avx2",
///  "force_scalar":false,"quick":false,"patterns":17,"kernels":[
///    {"kernel":"intersect","elements":10000000,"matches":1666667,
///     "checksum":123,"tiers":[
///       {"tier":"scalar","min_ns":1.0,"median_ns":2.0,
///        "elements_per_sec":3.0,"speedup_vs_scalar":1.0}]}]}
/// ```
#[must_use]
pub fn to_json(run: &KernelsRun) -> String {
    let points: Vec<String> = run
        .points
        .iter()
        .map(|point| {
            let scalar_median = point.scalar_median_ns();
            let tiers: Vec<String> = point
                .timings
                .iter()
                .map(|timing| {
                    format!(
                        "{{\"tier\":\"{}\",\"min_ns\":{:.1},\"median_ns\":{:.1},\
                         \"elements_per_sec\":{:.1},\"speedup_vs_scalar\":{:.4}}}",
                        timing.tier,
                        timing.stats.min_ns,
                        timing.stats.median_ns,
                        timing.elements_per_sec,
                        timing.speedup_over(scalar_median)
                    )
                })
                .collect();
            format!(
                "{{\"kernel\":\"{}\",\"elements\":{},\"matches\":{},\
                 \"checksum\":{},\"tiers\":[{}]}}",
                point.kernel,
                point.elements,
                point.matches,
                point.checksum,
                tiers.join(",")
            )
        })
        .collect();
    format!(
        "{{\"experiment\":\"kernels\",\"detected\":\"{}\",\"chosen\":\"{}\",\
         \"force_scalar\":{},\"quick\":{},\"patterns\":{},\"kernels\":[{}]}}\n",
        run.detected,
        run.chosen,
        run.force_scalar,
        run.quick,
        run.patterns,
        points.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_collect_measures_every_kernel_on_every_tier() {
        let run = collect(&KernelScale::quick());
        assert!(run.quick);
        let kernels: Vec<&str> = run.points.iter().map(|p| p.kernel).collect();
        assert_eq!(
            kernels,
            [
                "intersect",
                "intersect_positions",
                "and_words",
                "verdict_any",
                "run_end"
            ]
        );
        let tier_count = simd::tiers().len();
        for point in &run.points {
            assert_eq!(point.timings.len(), tier_count);
            assert_eq!(point.timings[0].tier, "scalar");
            for timing in &point.timings {
                assert!(timing.stats.min_ns <= timing.stats.median_ns);
                assert!(timing.elements_per_sec > 0.0);
            }
        }
        assert!(run.patterns > 0, "the end-to-end mine must find patterns");
        // The two intersection workloads share inputs, so their match
        // counts agree.
        assert_eq!(run.points[0].matches, run.points[1].matches);
    }

    #[test]
    fn json_is_structurally_sound() {
        let run = collect(&KernelScale::quick());
        let json = to_json(&run);
        assert!(json.starts_with("{\"experiment\":\"kernels\""));
        assert!(json.contains("\"detected\":"));
        assert!(json.contains("\"force_scalar\":"));
        assert!(json.contains("\"quick\":true"));
        assert!(json.contains("\"checksum\":"));
        assert!(json.contains("\"speedup_vs_scalar\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",]") && !json.contains(",}"));
        assert!(!table(&run).is_empty());
    }

    #[test]
    fn timing_helpers_are_sane() {
        let stats = time_samples(5, 10, || std::hint::black_box(21u64) * 2);
        assert!(stats.min_ns >= 0.0 && stats.min_ns <= stats.median_ns);
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(12_300.0), "12.300 µs");
        assert_eq!(format_ns(12_300_000.0), "12.300 ms");
        let timing = KernelTiming::new(
            "scalar",
            1_000,
            TimingStats {
                min_ns: 500.0,
                median_ns: 1_000.0,
            },
        );
        assert!((timing.elements_per_sec - 1e9).abs() < 1.0);
        assert!((timing.speedup_over(2_000.0) - 2.0).abs() < 1e-9);
    }
}
