//! Tables IX, X, XIII, XIV — the number of frequent seasonal temporal
//! patterns found by the exact engine for each (maxPeriod, minSeason,
//! minDensity) combination of the Table VI grid.

use super::{config_for, BenchScale, PreparedData};
use crate::params::{pattern_count_grid, scaled_real_spec};
use crate::table::TextTable;
use stpm_core::{MiningEngine, StpmMiner};
use stpm_datagen::DatasetProfile;

/// Runs the pattern-count grid for each profile and returns one table per
/// profile (rows = maxPeriod, columns = (minSeason, minDensity) pairs).
#[must_use]
pub fn run(profiles: &[DatasetProfile], scale: &BenchScale) -> Vec<TextTable> {
    let (periods, pairs) = pattern_count_grid();
    let periods = scale.thin(&periods);
    let pairs = scale.thin(&pairs);

    let mut tables = Vec::new();
    for &profile in profiles {
        let prepared = PreparedData::generate(&scale.apply(scaled_real_spec(profile)));

        let mut header: Vec<String> = vec!["maxPeriod (%)".to_string()];
        header.extend(pairs.iter().map(|(s, d)| format!("{s}-{:.2}%", d * 100.0)));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(
            &format!(
                "Number of seasonal patterns on {} (Tables IX/X/XIII/XIV shape)",
                profile.short_name()
            ),
            &header_refs,
        );

        for &period in &periods {
            let mut row = vec![format!("{:.1}", period * 100.0)];
            for &(min_season, min_density) in &pairs {
                let config = config_for(profile, period, min_density, min_season);
                let report = StpmMiner
                    .mine_with(&prepared.input(), &config)
                    .expect("valid configuration");
                row.push(report.total_patterns().to_string());
            }
            table.add_row(row);
        }
        tables.push(table);
    }
    tables
}

/// The pattern count of one configuration point, for the monotonicity checks
/// the paper highlights in its qualitative analysis of Tables IX/X.
#[must_use]
pub fn counts_for(
    profile: DatasetProfile,
    scale: &BenchScale,
    period: f64,
    min_season: u64,
    min_density: f64,
) -> usize {
    let prepared = PreparedData::generate(&scale.apply(scaled_real_spec(profile)));
    let config = config_for(profile, period, min_density, min_season);
    StpmMiner
        .mine_with(&prepared.input(), &config)
        .expect("valid configuration")
        .total_patterns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_table_per_profile_with_grid_rows() {
        let tables = run(&[DatasetProfile::Influenza], &BenchScale::quick());
        assert_eq!(tables.len(), 1);
        assert!(tables[0].len() >= 2);
    }

    #[test]
    fn larger_max_period_does_not_shrink_the_pattern_count_materially() {
        // A larger maxPeriod admits more candidate seasons, so the count
        // grows in the common case; it is not strictly monotone, though —
        // merging two near support sets into one can drop a borderline
        // pattern below minSeason. Allow a small tolerance for that effect.
        let scale = BenchScale::quick();
        let small = counts_for(DatasetProfile::Influenza, &scale, 0.002, 4, 0.0075);
        let large = counts_for(DatasetProfile::Influenza, &scale, 0.01, 4, 0.0075);
        assert!(
            large * 20 >= small * 19,
            "large {large} much smaller than small {small}"
        );
    }

    #[test]
    fn larger_min_season_never_increases_the_pattern_count() {
        let scale = BenchScale::quick();
        let lenient = counts_for(DatasetProfile::Influenza, &scale, 0.006, 2, 0.0075);
        let strict = counts_for(DatasetProfile::Influenza, &scale, 0.006, 12, 0.0075);
        assert!(strict <= lenient, "strict {strict} > lenient {lenient}");
    }
}
