//! One module per experiment family of the paper's evaluation. Every module
//! exposes a `run(...)` entry point returning [`TextTable`](crate::TextTable)s
//! that print the same rows/series the paper reports; the binaries in
//! `src/bin/` are thin wrappers around these functions.

pub mod ablation;
pub mod accuracy;
pub mod epsilon;
pub mod kernels;
pub mod pattern_counts;
pub mod pruning_ratio;
pub mod qualitative;
pub mod recovery;
pub mod runtime_memory;
pub mod scalability;
pub mod scaling;
pub mod service;
pub mod streaming;
pub mod threads;

use crate::params::scaled_dist_interval;
use stpm_core::{MiningInput, StpmConfig, Threshold};
use stpm_datagen::{generate, DatasetProfile, DatasetSpec, GeneratedDataset};
use stpm_timeseries::SequenceDatabase;

/// A generated dataset together with its sequence database, ready to be
/// handed to any [`stpm_core::MiningEngine`] as a [`MiningInput`].
#[derive(Debug, Clone)]
pub struct PreparedData {
    /// The generated dataset (raw series + `D_SYB` + mapping factor).
    pub data: GeneratedDataset,
    /// The sequence database `D_SEQ` built from it.
    pub dseq: SequenceDatabase,
}

impl PreparedData {
    /// Generates a dataset and builds its sequence database.
    #[must_use]
    pub fn generate(spec: &DatasetSpec) -> Self {
        let data = generate(spec);
        let dseq = data.dseq().expect("generated data maps to sequences");
        Self { data, dseq }
    }

    /// The engine input view of the prepared data.
    #[must_use]
    pub fn input(&self) -> MiningInput<'_> {
        MiningInput::new(&self.data.dsyb, &self.dseq, self.data.mapping_factor)
    }
}

/// Controls how large an experiment run is: `full()` follows the paper's
/// grids and the `STPM_BENCH_SCALE` environment variable, `quick()` shrinks
/// both the datasets and the parameter grids so that unit tests and smoke
/// runs finish in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchScale {
    /// Overrides the number of series of every generated dataset.
    pub series_override: Option<usize>,
    /// Overrides the number of sequences of every generated dataset.
    pub sequences_override: Option<u64>,
    /// Uses a reduced parameter grid (first/last point of each sweep).
    pub quick_grid: bool,
}

impl BenchScale {
    /// The paper-faithful scale (modulated by `STPM_BENCH_SCALE`).
    #[must_use]
    pub fn full() -> Self {
        Self {
            series_override: None,
            sequences_override: None,
            quick_grid: false,
        }
    }

    /// A seconds-scale smoke configuration used by tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            series_override: Some(6),
            sequences_override: Some(180),
            quick_grid: true,
        }
    }

    /// Applies the overrides to a dataset specification.
    #[must_use]
    pub fn apply(&self, spec: stpm_datagen::DatasetSpec) -> stpm_datagen::DatasetSpec {
        let series = self.series_override.unwrap_or(spec.num_series);
        let sequences = self.sequences_override.unwrap_or(spec.num_sequences);
        spec.scaled_to(series, sequences)
    }

    /// Thins a sweep down to its end points when `quick_grid` is set.
    #[must_use]
    pub fn thin<T: Clone>(&self, values: &[T]) -> Vec<T> {
        if !self.quick_grid || values.len() <= 2 {
            values.to_vec()
        } else {
            vec![values[0].clone(), values[values.len() - 1].clone()]
        }
    }
}

/// Builds the miner configuration for one grid point of a profile.
#[must_use]
pub fn config_for(
    profile: DatasetProfile,
    max_period: f64,
    min_density: f64,
    min_season: u64,
) -> StpmConfig {
    StpmConfig {
        max_period: Threshold::Fraction(max_period),
        min_density: Threshold::Fraction(min_density),
        dist_interval: scaled_dist_interval(profile),
        min_season,
        max_pattern_len: 2,
        ..StpmConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_shrinks_specs_and_grids() {
        let scale = BenchScale::quick();
        let spec = scale.apply(stpm_datagen::DatasetSpec::real(
            DatasetProfile::RenewableEnergy,
        ));
        assert_eq!(spec.num_series, 6);
        assert_eq!(spec.num_sequences, 180);
        assert_eq!(scale.thin(&[1, 2, 3, 4, 5]), vec![1, 5]);
        assert_eq!(scale.thin(&[1, 2]), vec![1, 2]);

        let full = BenchScale::full();
        let spec = full.apply(stpm_datagen::DatasetSpec::real(
            DatasetProfile::RenewableEnergy,
        ));
        assert_eq!(spec.num_series, 21);
        assert_eq!(full.thin(&[1, 2, 3]), vec![1, 2, 3]);
    }

    #[test]
    fn config_for_builds_fractional_thresholds() {
        let config = config_for(DatasetProfile::Influenza, 0.004, 0.0075, 8);
        assert_eq!(config.min_season, 8);
        assert_eq!(config.max_period, Threshold::Fraction(0.004));
        assert_eq!(config.min_density, Threshold::Fraction(0.0075));
    }
}
