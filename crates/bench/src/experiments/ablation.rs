//! Figures 15, 16, 25, 26 — effectiveness of the two pruning techniques:
//! E-STPM run with NoPrune / Apriori / Trans / All while varying minSeason,
//! minDensity and maxPeriod.

use super::{config_for, BenchScale};
use crate::params::{scaled_real_spec, ParamGrid};
use crate::table::TextTable;
use std::time::Instant;
use stpm_core::{PruningMode, StpmMiner};
use stpm_datagen::{generate, DatasetProfile};
use stpm_timeseries::SequenceDatabase;

/// Runtime (seconds) of E-STPM under one pruning mode and one configuration.
#[must_use]
pub fn runtime_for(
    dseq: &SequenceDatabase,
    profile: DatasetProfile,
    mode: PruningMode,
    max_period: f64,
    min_density: f64,
    min_season: u64,
) -> (f64, usize) {
    let config = config_for(profile, max_period, min_density, min_season).with_pruning(mode);
    let start = Instant::now();
    let report = StpmMiner::new(dseq, &config)
        .expect("valid configuration")
        .mine();
    (start.elapsed().as_secs_f64(), report.total_patterns())
}

/// Runs the pruning ablation for every profile: one table per (profile,
/// varied parameter), with one column per pruning mode.
#[must_use]
pub fn run(profiles: &[DatasetProfile], scale: &BenchScale) -> Vec<TextTable> {
    let grid = ParamGrid::default();
    let defaults = (0.006_f64, 0.0075_f64, 4_u64);
    let mut tables = Vec::new();
    for &profile in profiles {
        let spec = scale.apply(scaled_real_spec(profile));
        let data = generate(&spec);
        let dseq = data.dseq().expect("generated data maps to sequences");

        for vary in ["minSeason", "minDensity", "maxPeriod"] {
            let points: Vec<(String, f64, f64, u64)> = match vary {
                "minSeason" => scale
                    .thin(&grid.min_season)
                    .iter()
                    .map(|&s| (s.to_string(), defaults.0, defaults.1, s))
                    .collect(),
                "minDensity" => scale
                    .thin(&grid.min_density)
                    .iter()
                    .map(|&d| (format!("{:.2}%", d * 100.0), defaults.0, d, defaults.2))
                    .collect(),
                _ => scale
                    .thin(&grid.max_period)
                    .iter()
                    .map(|&p| (format!("{:.1}%", p * 100.0), p, defaults.1, defaults.2))
                    .collect(),
            };
            let mut table = TextTable::new(
                &format!(
                    "E-STPM pruning ablation on {} while varying {vary} (Figs 15/16/25/26 shape) — runtime (s)",
                    profile.short_name()
                ),
                &[vary, "NoPrune", "Apriori", "Trans", "All"],
            );
            for (label, max_period, min_density, min_season) in points {
                let mut row = vec![label];
                let mut pattern_counts = Vec::new();
                for mode in PruningMode::all_modes() {
                    let (runtime, patterns) =
                        runtime_for(&dseq, profile, mode, max_period, min_density, min_season);
                    pattern_counts.push(patterns);
                    row.push(format!("{runtime:.4}"));
                }
                debug_assert!(
                    pattern_counts.windows(2).all(|w| w[0] == w[1]),
                    "pruning must not change the mined output"
                );
                table.add_row(row);
            }
            tables.push(table);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_all_four_modes() {
        let tables = run(&[DatasetProfile::Influenza], &BenchScale::quick());
        assert_eq!(tables.len(), 3);
        let rendered = tables[0].render();
        assert!(rendered.contains("NoPrune"));
        assert!(rendered.contains("All"));
    }

    #[test]
    fn pruning_modes_produce_identical_outputs() {
        let scale = BenchScale::quick();
        let spec = scale.apply(scaled_real_spec(DatasetProfile::HandFootMouth));
        let data = generate(&spec);
        let dseq = data.dseq().unwrap();
        let counts: Vec<usize> = PruningMode::all_modes()
            .iter()
            .map(|&mode| {
                runtime_for(&dseq, DatasetProfile::HandFootMouth, mode, 0.006, 0.0075, 2).1
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
