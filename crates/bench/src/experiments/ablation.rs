//! Figures 15, 16, 25, 26 — effectiveness of the two pruning techniques:
//! E-STPM run with NoPrune / Apriori / Trans / All while varying minSeason,
//! minDensity and maxPeriod.
//!
//! The pruning mode travels inside [`StpmConfig`](stpm_core::StpmConfig), so
//! the ablation drives the exact engine through the same
//! [`stpm_core::MiningEngine`] path as every other experiment.

use super::runtime_memory::sweep_points;
use super::{config_for, BenchScale, PreparedData};
use crate::measure::measure;
use crate::params::scaled_real_spec;
use crate::table::TextTable;
use stpm_core::{MiningInput, PruningMode, StpmMiner};
use stpm_datagen::DatasetProfile;

/// Runtime (seconds) and pattern count of E-STPM under one pruning mode and
/// one configuration.
#[must_use]
pub fn runtime_for(
    input: &MiningInput<'_>,
    profile: DatasetProfile,
    mode: PruningMode,
    max_period: f64,
    min_density: f64,
    min_season: u64,
) -> (f64, usize) {
    let config = config_for(profile, max_period, min_density, min_season).with_pruning(mode);
    let (measurement, _) = measure(&StpmMiner, input, &config);
    (measurement.runtime_secs(), measurement.patterns)
}

/// Runs the pruning ablation for every profile: one table per (profile,
/// varied parameter), with one column per pruning mode.
#[must_use]
pub fn run(profiles: &[DatasetProfile], scale: &BenchScale) -> Vec<TextTable> {
    let mut tables = Vec::new();
    for &profile in profiles {
        let prepared = PreparedData::generate(&scale.apply(scaled_real_spec(profile)));

        for vary in ["minSeason", "minDensity", "maxPeriod"] {
            let points = sweep_points(scale, vary);
            let mut table = TextTable::new(
                &format!(
                    "E-STPM pruning ablation on {} while varying {vary} (Figs 15/16/25/26 shape) — runtime (s)",
                    profile.short_name()
                ),
                &[vary, "NoPrune", "Apriori", "Trans", "All"],
            );
            for (label, max_period, min_density, min_season) in points {
                let mut row = vec![label];
                let mut pattern_counts = Vec::new();
                for mode in PruningMode::all_modes() {
                    let (runtime, patterns) = runtime_for(
                        &prepared.input(),
                        profile,
                        mode,
                        max_period,
                        min_density,
                        min_season,
                    );
                    pattern_counts.push(patterns);
                    row.push(format!("{runtime:.4}"));
                }
                debug_assert!(
                    pattern_counts.windows(2).all(|w| w[0] == w[1]),
                    "pruning must not change the mined output"
                );
                table.add_row(row);
            }
            tables.push(table);
        }
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_all_four_modes() {
        let tables = run(&[DatasetProfile::Influenza], &BenchScale::quick());
        assert_eq!(tables.len(), 3);
        let rendered = tables[0].render();
        assert!(rendered.contains("NoPrune"));
        assert!(rendered.contains("All"));
    }

    #[test]
    fn pruning_modes_produce_identical_outputs() {
        let scale = BenchScale::quick();
        let prepared =
            PreparedData::generate(&scale.apply(scaled_real_spec(DatasetProfile::HandFootMouth)));
        let counts: Vec<usize> = PruningMode::all_modes()
            .iter()
            .map(|&mode| {
                runtime_for(
                    &prepared.input(),
                    DatasetProfile::HandFootMouth,
                    mode,
                    0.006,
                    0.0075,
                    2,
                )
                .1
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
