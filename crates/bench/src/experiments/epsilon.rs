//! Tables XIX and XX — sensitivity of the extracted pattern set to the
//! tolerance buffer ε: the number of extracted patterns per ε value and the
//! percentage of patterns lost relative to the smallest ε.

use super::{config_for, BenchScale, PreparedData};
use crate::params::scaled_real_spec;
use crate::table::TextTable;
use stpm_core::{MiningEngine, StpmMiner};
use stpm_datagen::DatasetProfile;

/// Number of frequent seasonal patterns for one ε value.
#[must_use]
pub fn patterns_for_epsilon(profile: DatasetProfile, scale: &BenchScale, epsilon: u64) -> usize {
    let prepared = PreparedData::generate(&scale.apply(scaled_real_spec(profile)));
    let config = config_for(profile, 0.002, 0.005, 4).with_epsilon(epsilon);
    StpmMiner
        .mine_with(&prepared.input(), &config)
        .expect("valid configuration")
        .total_patterns()
}

/// Runs the ε sweep (ε ∈ {0, 1, 2} finest-granularity granules — one coarse
/// time unit per step, mirroring the paper's 1/2/3 hour and 1/2/3 day
/// sweeps) and reports counts plus the pattern-loss percentage w.r.t. ε = 0.
#[must_use]
pub fn run(profiles: &[DatasetProfile], scale: &BenchScale) -> Vec<TextTable> {
    let epsilons: Vec<u64> = if scale.quick_grid {
        vec![0, 2]
    } else {
        vec![0, 1, 2]
    };
    let mut tables = Vec::new();
    for &profile in profiles {
        let mut table = TextTable::new(
            &format!(
                "Extracted patterns vs tolerance buffer ε on {} (Tables XIX/XX shape)",
                profile.short_name()
            ),
            &["epsilon (granules)", "#patterns", "pattern loss (%)"],
        );
        let mut reference = None;
        for &eps in &epsilons {
            let count = patterns_for_epsilon(profile, scale, eps);
            let reference_count = *reference.get_or_insert(count);
            let loss = if reference_count == 0 {
                0.0
            } else {
                100.0 * (reference_count.saturating_sub(count)) as f64 / reference_count as f64
            };
            table.add_row(vec![
                eps.to_string(),
                count.to_string(),
                format!("{loss:.2}"),
            ]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_sweep_produces_loss_column() {
        let tables = run(&[DatasetProfile::Influenza], &BenchScale::quick());
        assert_eq!(tables.len(), 1);
        let rendered = tables[0].render();
        assert!(rendered.contains("pattern loss"));
        assert_eq!(tables[0].len(), 2);
    }

    #[test]
    fn mining_succeeds_for_every_epsilon() {
        for eps in [0, 1, 3] {
            let _ = patterns_for_epsilon(DatasetProfile::HandFootMouth, &BenchScale::quick(), eps);
        }
    }
}
