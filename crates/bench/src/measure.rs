//! Uniform measurement of the three contenders: runtime, estimated memory
//! footprint and output size.

use std::time::{Duration, Instant};
use stpm_approx::{AStpmConfig, AStpmMiner, AStpmReport};
use stpm_baseline::{ApsGrowth, ApsGrowthReport};
use stpm_core::{MiningReport, StpmConfig, StpmMiner};
use stpm_timeseries::{SequenceDatabase, SymbolicDatabase};

/// One measured run of one algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Algorithm label ("E-STPM", "A-STPM", "APS-growth").
    pub algorithm: &'static str,
    /// Wall-clock runtime of the mining call.
    pub runtime: Duration,
    /// Estimated peak heap footprint of the algorithm's data structures, in
    /// bytes (the quantity plotted by the paper's memory figures).
    pub memory_bytes: usize,
    /// Total number of frequent seasonal patterns found (events + k-event
    /// patterns).
    pub patterns: usize,
    /// Wall-clock time of the MI/µ computation (A-STPM only, zero otherwise).
    pub mi_time: Duration,
}

impl Measurement {
    /// Runtime in seconds (convenience for table output).
    #[must_use]
    pub fn runtime_secs(&self) -> f64 {
        self.runtime.as_secs_f64()
    }

    /// Memory in mebibytes (convenience for table output).
    #[must_use]
    pub fn memory_mib(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// Runs and measures the exact miner.
#[must_use]
pub fn measure_estpm(dseq: &SequenceDatabase, config: &StpmConfig) -> (Measurement, MiningReport) {
    let start = Instant::now();
    let report = StpmMiner::new(dseq, config)
        .expect("benchmark configurations are valid")
        .mine();
    let runtime = start.elapsed();
    (
        Measurement {
            algorithm: "E-STPM",
            runtime,
            memory_bytes: report.stats().peak_footprint_bytes,
            patterns: report.total_patterns(),
            mi_time: Duration::ZERO,
        },
        report,
    )
}

/// Runs and measures the approximate miner (operates on `D_SYB` because the
/// series pruning happens before the sequence mapping).
#[must_use]
pub fn measure_astpm(
    dsyb: &SymbolicDatabase,
    mapping_factor: u64,
    config: &StpmConfig,
) -> (Measurement, AStpmReport) {
    let approx_config = AStpmConfig::new(config.clone());
    let start = Instant::now();
    let report = AStpmMiner::new(dsyb, mapping_factor, &approx_config)
        .expect("benchmark configurations are valid")
        .mine()
        .expect("benchmark datasets are valid");
    let runtime = start.elapsed();
    (
        Measurement {
            algorithm: "A-STPM",
            runtime,
            memory_bytes: report.report().stats().peak_footprint_bytes,
            patterns: report.report().total_patterns(),
            mi_time: report.mi_time(),
        },
        report,
    )
}

/// Runs and measures the APS-growth baseline.
#[must_use]
pub fn measure_apsgrowth(
    dseq: &SequenceDatabase,
    config: &StpmConfig,
) -> (Measurement, ApsGrowthReport) {
    let start = Instant::now();
    let report = ApsGrowth::new(dseq, config)
        .expect("benchmark configurations are valid")
        .mine();
    let runtime = start.elapsed();
    (
        Measurement {
            algorithm: "APS-growth",
            runtime,
            memory_bytes: report.footprint_bytes,
            patterns: report.report.total_patterns(),
            mi_time: Duration::ZERO,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamGrid;
    use stpm_datagen::{generate, DatasetProfile, DatasetSpec};

    fn tiny_dataset() -> (SymbolicDatabase, SequenceDatabase, u64) {
        let spec = DatasetSpec::real(DatasetProfile::Influenza)
            .scaled_to(5, 150)
            .with_seed(9);
        let data = generate(&spec);
        let dseq = data.dseq().unwrap();
        (data.dsyb, dseq, data.mapping_factor)
    }

    #[test]
    fn all_three_algorithms_are_measurable() {
        let (dsyb, dseq, m) = tiny_dataset();
        let config = ParamGrid::default_config(DatasetProfile::Influenza);

        let (e, _) = measure_estpm(&dseq, &config);
        assert_eq!(e.algorithm, "E-STPM");
        assert!(e.memory_bytes > 0);
        assert!(e.runtime_secs() >= 0.0);

        let (a, _) = measure_astpm(&dsyb, m, &config);
        assert_eq!(a.algorithm, "A-STPM");
        assert!(a.memory_mib() >= 0.0);

        let (b, _) = measure_apsgrowth(&dseq, &config);
        assert_eq!(b.algorithm, "APS-growth");
        assert!(b.memory_bytes > 0);
    }

    #[test]
    fn approximate_memory_does_not_exceed_exact_memory() {
        // A-STPM mines a projection of the database, so its data-structure
        // footprint cannot exceed E-STPM's on the same configuration.
        let (dsyb, dseq, m) = tiny_dataset();
        let config = ParamGrid::default_config(DatasetProfile::Influenza);
        let (e, _) = measure_estpm(&dseq, &config);
        let (a, _) = measure_astpm(&dsyb, m, &config);
        assert!(a.memory_bytes <= e.memory_bytes);
        assert!(a.patterns <= e.patterns);
    }
}
