//! Uniform measurement of mining engines: runtime, estimated memory
//! footprint and output size, engine-agnostic through the
//! [`MiningEngine`] trait.

use std::time::{Duration, Instant};
use stpm_approx::AStpmMiner;
use stpm_baseline::ApsGrowth;
use stpm_core::engine::phases;
use stpm_core::{EngineReport, MiningEngine, MiningInput, StpmConfig, StpmMiner};

/// The paper's three contenders, in the order its tables list them:
/// A-STPM, E-STPM, APS-growth.
#[must_use]
pub fn contenders() -> Vec<Box<dyn MiningEngine>> {
    vec![
        Box::new(AStpmMiner::new()),
        Box::new(StpmMiner),
        Box::new(ApsGrowth),
    ]
}

/// One measured run of one engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Measurement {
    /// Engine label (from [`MiningEngine::name`]).
    pub algorithm: &'static str,
    /// Wall-clock runtime of the mining call.
    pub runtime: Duration,
    /// Estimated peak heap footprint of the engine's data structures, in
    /// bytes (the quantity plotted by the paper's memory figures).
    pub memory_bytes: usize,
    /// Total number of frequent seasonal patterns found (events + k-event
    /// patterns).
    pub patterns: usize,
    /// Wall-clock time of the engine's MI/µ pre-mining phase (zero for
    /// engines without one).
    pub mi_time: Duration,
}

impl Measurement {
    /// Runtime in seconds (convenience for table output).
    #[must_use]
    pub fn runtime_secs(&self) -> f64 {
        self.runtime.as_secs_f64()
    }

    /// Memory in mebibytes (convenience for table output).
    #[must_use]
    pub fn memory_mib(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Runtime of the mining proper, excluding the MI/µ pre-phase, in
    /// seconds (Figures 13/14 plot the two separately).
    #[must_use]
    pub fn mining_secs(&self) -> f64 {
        (self.runtime.saturating_sub(self.mi_time)).as_secs_f64()
    }
}

/// Runs and measures one engine on one input.
#[must_use]
pub fn measure(
    engine: &dyn MiningEngine,
    input: &MiningInput<'_>,
    config: &StpmConfig,
) -> (Measurement, EngineReport) {
    let start = Instant::now();
    let report = engine
        .mine_with(input, config)
        .expect("benchmark datasets and configurations are valid");
    let runtime = start.elapsed();
    (
        Measurement {
            algorithm: report.engine(),
            runtime,
            memory_bytes: report.memory_bytes(),
            patterns: report.total_patterns(),
            mi_time: report.phase_time(phases::MI),
        },
        report,
    )
}

/// Runs and measures every contender on the same input.
#[must_use]
pub fn measure_all(input: &MiningInput<'_>, config: &StpmConfig) -> Vec<Measurement> {
    contenders()
        .iter()
        .map(|engine| measure(engine.as_ref(), input, config).0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::PreparedData;
    use crate::params::ParamGrid;
    use stpm_datagen::{DatasetProfile, DatasetSpec};

    fn tiny_dataset() -> PreparedData {
        PreparedData::generate(
            &DatasetSpec::real(DatasetProfile::Influenza)
                .scaled_to(5, 150)
                .with_seed(9),
        )
    }

    #[test]
    fn all_three_contenders_are_measurable() {
        let prepared = tiny_dataset();
        let config = ParamGrid::default_config(DatasetProfile::Influenza);
        let measurements = measure_all(&prepared.input(), &config);
        let names: Vec<&str> = measurements.iter().map(|m| m.algorithm).collect();
        assert_eq!(names, vec!["A-STPM", "E-STPM", "APS-growth"]);
        for m in &measurements {
            assert!(m.memory_bytes > 0 || m.patterns == 0);
            assert!(m.runtime_secs() >= 0.0);
            assert!(m.memory_mib() >= 0.0);
            assert!(m.mining_secs() <= m.runtime_secs());
        }
    }

    #[test]
    fn approximate_memory_does_not_exceed_exact_memory() {
        // A-STPM mines a projection of the database, so its data-structure
        // footprint cannot exceed E-STPM's on the same configuration.
        let prepared = tiny_dataset();
        let config = ParamGrid::default_config(DatasetProfile::Influenza);
        let input = prepared.input();
        let (a, _) = measure(&AStpmMiner::new(), &input, &config);
        let (e, _) = measure(&StpmMiner, &input, &config);
        assert!(a.memory_bytes <= e.memory_bytes);
        assert!(a.patterns <= e.patterns);
    }
}
