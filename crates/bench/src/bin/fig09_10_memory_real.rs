//! Figures 9 and 10: memory comparison on RE and INF (real).
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::runtime_memory::{run, Metric};
    use stpm_datagen::DatasetProfile::{Influenza, RenewableEnergy};
    for table in run(&[RenewableEnergy, Influenza], &scale(), Metric::Memory) {
        table.print();
    }
}
