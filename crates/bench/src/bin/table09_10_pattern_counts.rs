//! Tables IX and X: number of seasonal patterns on RE and INF.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::pattern_counts;
    use stpm_datagen::DatasetProfile::{Influenza, RenewableEnergy};
    for table in pattern_counts::run(&[RenewableEnergy, Influenza], &scale()) {
        table.print();
    }
}
