//! Table XI: time series and events pruned by A-STPM on RE and INF synthetic.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::pruning_ratio;
    use stpm_datagen::DatasetProfile::{Influenza, RenewableEnergy};
    for table in pruning_ratio::run(&[RenewableEnergy, Influenza], &scale()) {
        table.print();
    }
}
