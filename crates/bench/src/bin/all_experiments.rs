//! Runs every table and figure reproduction in sequence (pass --quick for a smoke run).
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::*;
    use stpm_datagen::DatasetProfile;
    let s = scale();
    let re_inf = [DatasetProfile::RenewableEnergy, DatasetProfile::Influenza];
    let sc_hfm = [DatasetProfile::SmartCity, DatasetProfile::HandFootMouth];
    let all = DatasetProfile::all();

    println!("### Qualitative (Table VIII) ###");
    for t in qualitative::run(&all, &s, 11) {
        t.print();
    }
    println!("### Pattern counts (Tables IX/X/XIII/XIV) ###");
    for t in pattern_counts::run(&all, &s) {
        t.print();
    }
    println!("### A-STPM accuracy, real (Tables VII/XVII) ###");
    for t in accuracy::run_real(&all, &s) {
        t.print();
    }
    println!("### A-STPM accuracy, synthetic (Tables XII/XVIII) ###");
    for t in accuracy::run_synthetic(&all, &s) {
        t.print();
    }
    println!("### A-STPM pruning ratios (Tables XI/XV/XVI) ###");
    for t in pruning_ratio::run(&all, &s) {
        t.print();
    }
    println!("### Epsilon sensitivity (Tables XIX/XX) ###");
    for t in epsilon::run(&all, &s) {
        t.print();
    }
    println!("### Runtime comparison (Figs 7/8/17/18) ###");
    for t in runtime_memory::run(&re_inf, &s, runtime_memory::Metric::Runtime) {
        t.print();
    }
    for t in runtime_memory::run(&sc_hfm, &s, runtime_memory::Metric::Runtime) {
        t.print();
    }
    println!("### Memory comparison (Figs 9/10/19/20) ###");
    for t in runtime_memory::run(&re_inf, &s, runtime_memory::Metric::Memory) {
        t.print();
    }
    for t in runtime_memory::run(&sc_hfm, &s, runtime_memory::Metric::Memory) {
        t.print();
    }
    println!("### Scalability in #sequences (Figs 11/12/21/22) ###");
    for t in scalability::run(&all, &s, scalability::ScaleAxis::Sequences) {
        t.print();
    }
    println!("### Scalability in #time series (Figs 13/14/23/24) ###");
    for t in scalability::run(&all, &s, scalability::ScaleAxis::Series) {
        t.print();
    }
    println!("### Pruning ablation (Figs 15/16/25/26) ###");
    for t in ablation::run(&all, &s) {
        t.print();
    }
    println!("### Thread scaling (sharded level mining) ###");
    for t in threads::tables(&threads::collect(&all, &s)) {
        t.print();
    }
    println!("### Kernel throughput (scalar vs detected SIMD tiers) ###");
    let kernel_scale = if s.quick_grid {
        kernels::KernelScale::quick()
    } else {
        kernels::KernelScale::full()
    };
    kernels::table(&kernels::collect(&kernel_scale)).print();
    println!("### Single-threaded scaling (events / granules axes) ###");
    for t in scaling::tables(&scaling::collect(DatasetProfile::RenewableEnergy, &s)) {
        t.print();
    }
    println!("### Streaming append vs full re-mine ###");
    streaming::table(
        DatasetProfile::RenewableEnergy,
        &streaming::collect(DatasetProfile::RenewableEnergy, &s),
    )
    .print();
    println!("### Recovery from snapshot vs full re-mine ###");
    recovery::table(
        DatasetProfile::RenewableEnergy,
        &recovery::collect(DatasetProfile::RenewableEnergy, &s),
    )
    .print();
    println!("### Service tier under memory pressure + transient faults ###");
    service::table(&service::collect(&s)).print();
}
