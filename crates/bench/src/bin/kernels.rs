//! Kernel-throughput experiment: the vectorizable `stpm_core::simd` kernels
//! measured scalar vs every SIMD tier the host supports, with parity
//! asserted before every timed loop. Prints the per-tier table and writes
//! `BENCH_kernels.json` (`--quick` runs a smoke grid and writes
//! `BENCH_kernels_quick.json` instead, so it can never clobber the
//! checked-in full-run baseline). Diff the JSON against the baseline at the
//! repository root with `scripts/check_kernels_regression.py`; the CI
//! parity matrix compares `--quick` runs across `STPM_FORCE_SCALAR` legs
//! with `scripts/check_kernels_parity.py`.
use stpm_bench::experiments::kernels::{self, KernelScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, path) = if quick {
        (KernelScale::quick(), "BENCH_kernels_quick.json")
    } else {
        (KernelScale::full(), "BENCH_kernels.json")
    };

    let run = kernels::collect(&scale);
    kernels::table(&run).print();
    let json = kernels::to_json(&run);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len());
}
