//! Crash recovery: restoring streaming state from a snapshot (plus a WAL
//! tail replay) vs a full batch re-mine, with recovered/batch pattern-set
//! identity asserted at every crash position. Writes `BENCH_recovery.json`
//! (`--quick` runs a smoke grid and writes `BENCH_recovery_quick.json`
//! instead, so it can never clobber the checked-in full-run baseline).
use stpm_bench::experiments::{recovery, BenchScale};
use stpm_datagen::DatasetProfile;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, path) = if quick {
        (BenchScale::quick(), "BENCH_recovery_quick.json")
    } else {
        (BenchScale::full(), "BENCH_recovery.json")
    };

    let profile = DatasetProfile::RenewableEnergy;
    let points = recovery::collect(profile, &scale);
    recovery::table(profile, &points).print();
    let json = recovery::to_json(profile, &points);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len());
}
