//! Figures 21-24: scalability on SC and HFM synthetic.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::scalability::{run, ScaleAxis};
    use stpm_datagen::DatasetProfile::{HandFootMouth, SmartCity};
    for table in run(&[SmartCity, HandFootMouth], &scale(), ScaleAxis::Sequences) {
        table.print();
    }
    for table in run(&[SmartCity, HandFootMouth], &scale(), ScaleAxis::Series) {
        table.print();
    }
}
