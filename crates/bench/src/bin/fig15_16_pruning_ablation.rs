//! Figures 15 and 16: pruning-technique ablation of E-STPM on RE and INF.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::ablation;
    use stpm_datagen::DatasetProfile::{Influenza, RenewableEnergy};
    for table in ablation::run(&[RenewableEnergy, Influenza], &scale()) {
        table.print();
    }
}
