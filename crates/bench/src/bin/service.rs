//! Service tier under memory pressure: a power-law fleet of tenants driven
//! through the multi-tenant daemon with a budget far below the working set
//! and transient I/O faults armed, measuring sustained appends/sec and
//! append-latency percentiles while asserting under-budget residency, live
//! eviction/rehydration/retry counters, and pattern-set identity against a
//! direct pipeline. Writes `BENCH_service.json` (`--quick` runs a smoke
//! grid and writes `BENCH_service_quick.json` instead, so it can never
//! clobber the checked-in full-run baseline).
use stpm_bench::experiments::{service, BenchScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, path) = if quick {
        (BenchScale::quick(), "BENCH_service_quick.json")
    } else {
        (BenchScale::full(), "BENCH_service.json")
    };

    let points = service::collect(&scale);
    service::table(&points).print();
    let json = service::to_json(&points);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len());
}
