//! Streaming (incremental) mining vs full batch re-mine: amortized append
//! cost across arrival batch sizes, with batch/streaming pattern-set
//! identity asserted at every checkpoint. Writes `BENCH_streaming.json`
//! (`--quick` runs a smoke grid and writes `BENCH_streaming_quick.json`
//! instead, so it can never clobber the checked-in full-run baseline).
use stpm_bench::experiments::{streaming, BenchScale};
use stpm_datagen::DatasetProfile;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, path) = if quick {
        (BenchScale::quick(), "BENCH_streaming_quick.json")
    } else {
        (BenchScale::full(), "BENCH_streaming.json")
    };

    let profile = DatasetProfile::RenewableEnergy;
    let points = streaming::collect(profile, &scale);
    streaming::table(profile, &points).print();
    let json = streaming::to_json(profile, &points);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len());
}
