//! Table VII: A-STPM accuracy on the RE and INF (surrogate) real datasets.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::accuracy;
    use stpm_datagen::DatasetProfile::{Influenza, RenewableEnergy};
    for table in accuracy::run_real(&[RenewableEnergy, Influenza], &scale()) {
        table.print();
    }
}
