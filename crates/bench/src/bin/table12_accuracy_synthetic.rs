//! Table XII: A-STPM accuracy on the RE and INF synthetic datasets.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::accuracy;
    use stpm_datagen::DatasetProfile::{Influenza, RenewableEnergy};
    for table in accuracy::run_synthetic(&[RenewableEnergy, Influenza], &scale()) {
        table.print();
    }
}
