//! Tables XIX and XX: pattern loss under the tolerance buffer epsilon.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::epsilon;
    use stpm_datagen::DatasetProfile;
    for table in epsilon::run(&DatasetProfile::all(), &scale()) {
        table.print();
    }
}
