//! Figures 11 and 12: scalability varying the number of sequences (RE, INF synthetic).
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::scalability::{run, ScaleAxis};
    use stpm_datagen::DatasetProfile::{Influenza, RenewableEnergy};
    for table in run(
        &[RenewableEnergy, Influenza],
        &scale(),
        ScaleAxis::Sequences,
    ) {
        table.print();
    }
}
