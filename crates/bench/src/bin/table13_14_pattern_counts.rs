//! Tables XIII and XIV: number of seasonal patterns on SC and HFM.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::pattern_counts;
    use stpm_datagen::DatasetProfile::{HandFootMouth, SmartCity};
    for table in pattern_counts::run(&[SmartCity, HandFootMouth], &scale()) {
        table.print();
    }
}
