//! Single-threaded scaling of the exact miner: runtime and peak footprint vs
//! the number of events and the number of granules, printed as tables and
//! written to `BENCH_scaling.json` (`--quick` runs a smoke grid and writes
//! `BENCH_scaling_quick.json` instead, so it can never clobber the
//! checked-in full-run baseline). The JSON is comparable across revisions:
//! diff it against the baseline at the repository root to see the
//! constant-factor trajectory of the core.
use stpm_bench::experiments::{scaling, BenchScale};
use stpm_datagen::DatasetProfile;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, path) = if quick {
        (BenchScale::quick(), "BENCH_scaling_quick.json")
    } else {
        (BenchScale::full(), "BENCH_scaling.json")
    };

    let sweeps = scaling::collect(DatasetProfile::RenewableEnergy, &scale);
    for table in scaling::tables(&sweeps) {
        table.print();
    }
    let json = scaling::to_json(&sweeps);
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path} ({} bytes)", json.len());
}
