//! Tables XV and XVI: time series and events pruned by A-STPM on SC and HFM synthetic.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::pruning_ratio;
    use stpm_datagen::DatasetProfile::{HandFootMouth, SmartCity};
    for table in pruning_ratio::run(&[SmartCity, HandFootMouth], &scale()) {
        table.print();
    }
}
