//! Table XVIII: A-STPM accuracy on the SC and HFM synthetic datasets.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::accuracy;
    use stpm_datagen::DatasetProfile::{HandFootMouth, SmartCity};
    for table in accuracy::run_synthetic(&[SmartCity, HandFootMouth], &scale()) {
        table.print();
    }
}
