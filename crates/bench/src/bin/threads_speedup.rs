//! Thread-scaling of the sharded parallel level miner: runtime and speedup
//! at 1/2/4/8 worker threads, printed as tables and written to
//! `BENCH_threads.json` (pass --quick for a smoke run on a tiny dataset).
use stpm_bench::experiments::{threads, BenchScale};
use stpm_datagen::DatasetProfile;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        BenchScale::quick()
    } else {
        BenchScale::full()
    };
    let profiles: Vec<DatasetProfile> = if quick {
        vec![DatasetProfile::Influenza]
    } else {
        DatasetProfile::all().to_vec()
    };

    let sweeps = threads::collect(&profiles, &scale);
    for table in threads::tables(&sweeps) {
        table.print();
    }
    let json = threads::to_json(&sweeps);
    std::fs::write("BENCH_threads.json", &json).expect("writing BENCH_threads.json");
    println!("wrote BENCH_threads.json ({} bytes)", json.len());
}
