//! Figures 25 and 26: pruning-technique ablation of E-STPM on SC and HFM.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::ablation;
    use stpm_datagen::DatasetProfile::{HandFootMouth, SmartCity};
    for table in ablation::run(&[SmartCity, HandFootMouth], &scale()) {
        table.print();
    }
}
