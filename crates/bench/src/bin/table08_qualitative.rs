//! Table VIII: representative seasonal temporal patterns per dataset.
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::qualitative;
    use stpm_datagen::DatasetProfile;
    for table in qualitative::run(&DatasetProfile::all(), &scale(), 11) {
        table.print();
    }
}
