//! Figures 17-20: runtime and memory comparison on SC and HFM (real).
use stpm_bench::experiments::BenchScale;

fn scale() -> BenchScale {
    if std::env::args().any(|a| a == "--quick") {
        BenchScale::quick()
    } else {
        BenchScale::full()
    }
}

fn main() {
    use stpm_bench::experiments::runtime_memory::{run, Metric};
    use stpm_datagen::DatasetProfile::{HandFootMouth, SmartCity};
    for table in run(&[SmartCity, HandFootMouth], &scale(), Metric::Runtime) {
        table.print();
    }
    for table in run(&[SmartCity, HandFootMouth], &scale(), Metric::Memory) {
        table.print();
    }
}
