//! Parameter grids (Table VI of the paper) and dataset-scaling helpers.

use stpm_core::{StpmConfig, Threshold};
use stpm_datagen::{DatasetProfile, DatasetSpec};

/// The user-defined parameter values of Table VI.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGrid {
    /// `maxPeriod` values, as fractions of `|D_SEQ|` (Table VI: 0.2%–1.0%).
    pub max_period: Vec<f64>,
    /// `minDensity` values, as fractions of `|D_SEQ|` (Table VI: 0.5%–1.5%).
    pub min_density: Vec<f64>,
    /// `minSeason` values (Table VI: 4–20).
    pub min_season: Vec<u64>,
}

impl Default for ParamGrid {
    fn default() -> Self {
        Self {
            max_period: vec![0.002, 0.004, 0.006, 0.008, 0.010],
            min_density: vec![0.005, 0.0075, 0.010, 0.0125, 0.015],
            min_season: vec![4, 8, 12, 16, 20],
        }
    }
}

impl ParamGrid {
    /// The default value used for a parameter while another one is varied
    /// (middle of the Table VI range).
    #[must_use]
    pub fn default_config(profile: DatasetProfile) -> StpmConfig {
        StpmConfig {
            max_period: Threshold::Fraction(0.006),
            min_density: Threshold::Fraction(0.0075),
            dist_interval: scaled_dist_interval(profile),
            min_season: 4,
            max_pattern_len: 2,
            ..StpmConfig::default()
        }
    }
}

/// The paper's `distInterval` recommendation for a profile, shrunk by the
/// bench scale so that scaled-down databases still contain several seasons.
#[must_use]
pub fn scaled_dist_interval(profile: DatasetProfile) -> (u64, u64) {
    let (lo, hi) = profile.dist_interval();
    let scale = bench_scale();
    (
        ((lo as f64 * scale).round() as u64).max(2),
        ((hi as f64 * scale).round() as u64).max(10),
    )
}

/// The benchmark scale factor, read from `STPM_BENCH_SCALE` (default 1.0 =
/// the Table V sizes for the real datasets; smaller values shrink the
/// sequence counts for quick smoke runs).
#[must_use]
pub fn bench_scale() -> f64 {
    std::env::var("STPM_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0 && *v <= 1.0)
        .unwrap_or(1.0)
}

/// The scaled specification of a *real* dataset (Table V sizes × scale).
#[must_use]
pub fn scaled_real_spec(profile: DatasetProfile) -> DatasetSpec {
    let scale = bench_scale();
    let spec = DatasetSpec::real(profile);
    spec.scaled_to(
        ((spec.num_series as f64 * scale.max(0.5)).round() as usize).max(6),
        ((spec.num_sequences as f64 * scale).round() as u64).max(120),
    )
}

/// The scaled specification of a *synthetic* dataset used by the scalability
/// experiments: `series` time series and `sequences` granules, both already
/// chosen by the caller (the harness divides the paper's 2 000–10 000 series
/// and 10⁵–10⁶ sequences by a constant factor).
#[must_use]
pub fn scaled_synthetic_spec(
    profile: DatasetProfile,
    series: usize,
    sequences: u64,
) -> DatasetSpec {
    DatasetSpec::synthetic(profile, series, sequences)
}

/// The synthetic series counts of Tables XI/XII (2 000 … 10 000), divided by
/// the bench divisor so they stay laptop-sized; the ratios between the points
/// are preserved.
#[must_use]
pub fn synthetic_series_points() -> Vec<usize> {
    let divisor = synthetic_divisor();
    [2_000usize, 4_000, 6_000, 8_000, 10_000]
        .iter()
        .map(|n| (n / divisor).max(4))
        .collect()
}

/// The sequence percentages of Figures 11/12 (20% … 100% of the synthetic
/// sequence count).
#[must_use]
pub fn sequence_percentages() -> Vec<u64> {
    vec![20, 40, 60, 80, 100]
}

/// Divisor applied to the paper's synthetic sizes (paper: 10⁴ series,
/// ~10⁵–10⁶ sequences). Controlled by `STPM_BENCH_SYN_DIVISOR`, default 100.
#[must_use]
pub fn synthetic_divisor() -> usize {
    std::env::var("STPM_BENCH_SYN_DIVISOR")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|v| *v >= 1)
        .unwrap_or(100)
}

/// The synthetic sequence count of a profile divided by the bench divisor
/// (the paper multiplies the real sequence counts by 1 000).
#[must_use]
pub fn synthetic_sequences(profile: DatasetProfile) -> u64 {
    (profile.num_sequences() * 1_000 / synthetic_divisor() as u64 / 10).max(200)
}

/// The (minSeason, minDensity%) pairs used by the scalability and pruning
/// tables: (12, 0.5%), (16, 0.75%), (20, 1.0%).
#[must_use]
pub fn scalability_param_pairs() -> Vec<(u64, f64)> {
    vec![(12, 0.005), (16, 0.0075), (20, 0.010)]
}

/// The (minSeason, minDensity%) grid of the accuracy tables
/// (Tables VII/XVII): minSeason ∈ {8,12,16,20} × minDensity ∈ {0.5,0.75,1.0}%.
#[must_use]
pub fn accuracy_grid() -> (Vec<u64>, Vec<f64>) {
    (vec![8, 12, 16, 20], vec![0.005, 0.0075, 0.010])
}

/// The (maxPeriod%, minSeason, minDensity%) grid of the pattern-count tables
/// (Tables IX/X/XIII/XIV).
#[must_use]
pub fn pattern_count_grid() -> (Vec<f64>, Vec<(u64, f64)>) {
    (
        vec![0.002, 0.004, 0.006],
        vec![
            (8, 0.005),
            (8, 0.0075),
            (8, 0.010),
            (12, 0.005),
            (12, 0.0075),
            (12, 0.010),
            (16, 0.005),
            (16, 0.0075),
            (16, 0.010),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_matches_table_vi() {
        let grid = ParamGrid::default();
        assert_eq!(grid.max_period.len(), 5);
        assert_eq!(grid.min_density.len(), 5);
        assert_eq!(grid.min_season, vec![4, 8, 12, 16, 20]);
    }

    #[test]
    fn bench_scale_is_in_unit_interval() {
        let s = bench_scale();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn scaled_real_spec_preserves_profile() {
        let spec = scaled_real_spec(DatasetProfile::RenewableEnergy);
        assert_eq!(spec.profile, DatasetProfile::RenewableEnergy);
        assert!(spec.num_series >= 6);
        assert!(spec.num_sequences >= 120);
        assert!(spec.num_sequences <= 1460);
    }

    #[test]
    fn synthetic_points_preserve_ordering() {
        let points = synthetic_series_points();
        assert_eq!(points.len(), 5);
        for w in points.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(sequence_percentages(), vec![20, 40, 60, 80, 100]);
        assert!(synthetic_sequences(DatasetProfile::Influenza) >= 200);
    }

    #[test]
    fn grids_are_well_formed() {
        let (seasons, densities) = accuracy_grid();
        assert_eq!(seasons.len(), 4);
        assert_eq!(densities.len(), 3);
        let (periods, pairs) = pattern_count_grid();
        assert_eq!(periods.len(), 3);
        assert_eq!(pairs.len(), 9);
        assert_eq!(scalability_param_pairs().len(), 3);
    }

    #[test]
    fn dist_interval_scaling_keeps_bounds_ordered() {
        for profile in DatasetProfile::all() {
            let (lo, hi) = scaled_dist_interval(profile);
            assert!(lo < hi);
        }
    }

    #[test]
    fn default_config_uses_profile_interval() {
        let config = ParamGrid::default_config(DatasetProfile::Influenza);
        assert_eq!(config.min_season, 4);
        assert_eq!(config.max_pattern_len, 2);
    }
}
