//! # stpm-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! FreqSTPfTS evaluation (Section VI and the appendix of the paper).
//!
//! Each experiment is a library function (under [`experiments`]) plus a thin
//! binary in `src/bin/` that prints the same rows or series the paper
//! reports. The harness is engine-agnostic: every experiment drives its
//! miners through the [`stpm_core::MiningEngine`] trait and reads the
//! unified [`stpm_core::EngineReport`], so adding a fourth engine means
//! adding it to [`measure::contenders`] — nothing else. The default
//! contenders are the paper's three:
//!
//! * **E-STPM** — the exact miner (`stpm-core`),
//! * **A-STPM** — the approximate, mutual-information-based miner
//!   (`stpm-approx`),
//! * **APS-growth** — the adapted PS-growth baseline (`stpm-baseline`).
//!
//! Because the original testbed (32-core EPYC, 512 GB RAM) and the raw
//! datasets are unavailable, the harness defaults to laptop-scale slices of
//! the Table V workloads; set the environment variable `STPM_BENCH_SCALE`
//! (a value in `(0, 1]`, default `0.2`) to grow them towards the paper's
//! sizes. Relative results — who wins and by roughly what factor — are the
//! quantities `EXPERIMENTS.md` tracks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod measure;
pub mod params;
pub mod table;

pub use measure::{contenders, measure, measure_all, Measurement};
pub use params::{bench_scale, scaled_real_spec, scaled_synthetic_spec, ParamGrid};
pub use table::TextTable;
