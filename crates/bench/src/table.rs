//! A minimal fixed-width text-table printer for experiment output.

/// A simple text table: a header row plus data rows, rendered with aligned
/// columns — enough to reproduce the paper's tables on stdout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (missing cells are rendered empty, extra cells are
    /// kept).
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, width) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                line.push_str(&format!(" {cell:width$} |"));
            }
            line
        };
        let separator = {
            let mut line = String::from("+");
            for width in &widths {
                line.push_str(&"-".repeat(width + 2));
                line.push('+');
            }
            line
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&separator);
        out.push('\n');
        out.push_str(&render_row(&self.header));
        out.push('\n');
        out.push_str(&separator);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out.push_str(&separator);
        out.push('\n');
        out
    }

    /// Renders and prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimal places (table-cell helper).
#[must_use]
pub fn fmt2(value: f64) -> String {
    format!("{value:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.add_row(vec!["short".into(), "1".into()]);
        t.add_row(vec!["a-much-longer-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("| name"));
        assert!(s.contains("a-much-longer-name"));
        // All body lines have the same width.
        let widths: Vec<usize> = s.lines().skip(1).map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_ragged_rows() {
        let mut t = TextTable::new("Ragged", &["a", "b", "c"]);
        t.add_row(vec!["1".into()]);
        t.add_row(vec!["1".into(), "2".into(), "3".into(), "4".into()]);
        let s = t.render();
        assert!(s.lines().count() >= 6);
    }

    #[test]
    fn fmt2_rounds() {
        assert_eq!(fmt2(1.2345), "1.23");
        assert_eq!(fmt2(0.0), "0.00");
    }
}
