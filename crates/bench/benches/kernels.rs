//! Criterion micro-benchmarks of the mining kernels: relation
//! classification, support-set intersection, season extraction, NMI
//! computation, PS-tree construction, and small end-to-end runs of the three
//! miners.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use stpm_approx::{normalized_mi, AStpmConfig, AStpmMiner};
use stpm_baseline::{ApsGrowth, PsGrowth, TransactionDb};
use stpm_bench::experiments::config_for;
use stpm_bench::params::scaled_real_spec;
use stpm_core::season::find_seasons;
use stpm_core::{classify_relation, support, StpmConfig, StpmMiner, Threshold};
use stpm_datagen::{generate, DatasetProfile, DatasetSpec};
use stpm_timeseries::Interval;

fn bench_dataset() -> stpm_datagen::GeneratedDataset {
    let spec = DatasetSpec::real(DatasetProfile::Influenza)
        .scaled_to(8, 300)
        .with_seed(11);
    generate(&spec)
}

fn bench_config() -> StpmConfig {
    StpmConfig {
        max_period: Threshold::Absolute(4),
        min_density: Threshold::Absolute(3),
        dist_interval: (5, 60),
        min_season: 2,
        max_pattern_len: 2,
        ..StpmConfig::default()
    }
}

fn relation_kernel(c: &mut Criterion) {
    let pairs: Vec<(Interval, Interval)> = (0..256u64)
        .map(|i| {
            (
                Interval::new(i, i + (i % 7)),
                Interval::new(i + (i % 3), i + 5 + (i % 11)),
            )
        })
        .collect();
    c.bench_function("relation/classify_256_pairs", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for (a, bnd) in &pairs {
                if classify_relation(black_box(a), black_box(bnd), 0, 1).is_some() {
                    count += 1;
                }
            }
            black_box(count)
        });
    });
}

fn support_kernel(c: &mut Criterion) {
    let a: Vec<u64> = (0..4096).filter(|x| x % 2 == 0).collect();
    let b: Vec<u64> = (0..4096).filter(|x| x % 3 == 0).collect();
    c.bench_function("support/intersect_4k", |b_| {
        b_.iter(|| black_box(support::intersect(black_box(&a), black_box(&b))));
    });
}

fn season_kernel(c: &mut Criterion) {
    let support: Vec<u64> = (1..2000u64).filter(|x| x % 17 < 6).collect();
    let config = bench_config().resolve(2000).unwrap();
    c.bench_function("season/find_seasons_2k", |b| {
        b.iter(|| black_box(find_seasons(black_box(&support), &config)));
    });
}

fn nmi_kernel(c: &mut Criterion) {
    let data = bench_dataset();
    let x = &data.dsyb.series()[0];
    let y = &data.dsyb.series()[1];
    c.bench_function("approx/nmi_1200_instants", |b| {
        b.iter(|| black_box(normalized_mi(black_box(x), black_box(y))));
    });
}

fn pstree_kernel(c: &mut Criterion) {
    let data = bench_dataset();
    let dseq = data.dseq().unwrap();
    let transactions = TransactionDb::from_sequences(&dseq);
    c.bench_function("baseline/psgrowth_small", |b| {
        b.iter_batched(
            || transactions.clone(),
            |db| black_box(PsGrowth::new(6, 40, 2, db.len() as u64).mine(&db)),
            BatchSize::SmallInput,
        );
    });
}

fn end_to_end(c: &mut Criterion) {
    let data = bench_dataset();
    let dseq = data.dseq().unwrap();
    let config = config_for(DatasetProfile::Influenza, 0.006, 0.0075, 2);

    c.bench_function("mine/estpm_small", |b| {
        b.iter(|| black_box(StpmMiner::new(&dseq, &config).unwrap().mine()));
    });
    c.bench_function("mine/astpm_small", |b| {
        b.iter(|| {
            black_box(
                AStpmMiner::new(&data.dsyb, data.mapping_factor, &AStpmConfig::new(config.clone()))
                    .unwrap()
                    .mine()
                    .unwrap(),
            )
        });
    });
    c.bench_function("mine/apsgrowth_small", |b| {
        b.iter(|| black_box(ApsGrowth::new(&dseq, &config).unwrap().mine()));
    });
    // Guard that the scaled specs used by the experiment binaries stay valid.
    let _ = scaled_real_spec(DatasetProfile::RenewableEnergy);
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = relation_kernel, support_kernel, season_kernel, nmi_kernel, pstree_kernel, end_to_end
);
criterion_main!(kernels);
