//! Micro-benchmarks of the mining kernels: relation classification,
//! support-set intersection, season extraction, NMI computation, PS-growth,
//! and small end-to-end runs of the three engines.
//!
//! The build container has no access to crates.io, so instead of criterion
//! this is a `harness = false` benchmark built on the same timing helpers
//! as the CI-gated kernel experiment (`experiments/kernels.rs`): min and
//! median per-call time over `SAMPLES` batches, plus elements/sec where the
//! workload has a natural element count. Run with `cargo bench`.

use std::hint::black_box;
use stpm_approx::{normalized_mi, AStpmMiner};
use stpm_baseline::{ApsGrowth, PsGrowth, TransactionDb};
use stpm_bench::experiments::config_for;
use stpm_bench::experiments::kernels::{format_ns, time_samples};
use stpm_bench::params::scaled_real_spec;
use stpm_core::season::{find_seasons, support_is_frequent};
use stpm_core::{
    classify_relation, support, MiningEngine, MiningInput, StpmConfig, StpmMiner, Threshold,
    VerdictTable,
};
use stpm_datagen::{generate, DatasetProfile, DatasetSpec};
use stpm_timeseries::{EventLabel, Interval, SeriesId, SymbolId};

const SAMPLES: usize = 20;

/// Times `f` with the shared sampler and prints min/median per call; when
/// the workload has a natural element count, throughput is printed too (the
/// same statistic the kernel experiment gates in CI).
fn bench_function<T>(name: &str, iters: u32, elements: usize, mut f: impl FnMut() -> T) {
    let stats = time_samples(SAMPLES, iters, &mut f);
    let throughput = if elements > 0 && stats.median_ns > 0.0 {
        format!(
            "{:>9.1} Melem/s",
            elements as f64 * 1e9 / stats.median_ns / 1e6
        )
    } else {
        String::new()
    };
    println!(
        "{name:<44} min {:>12}  median {:>12}  {throughput}",
        format_ns(stats.min_ns),
        format_ns(stats.median_ns)
    );
}

fn bench_dataset() -> stpm_datagen::GeneratedDataset {
    let spec = DatasetSpec::real(DatasetProfile::Influenza)
        .scaled_to(8, 300)
        .with_seed(11);
    generate(&spec)
}

fn bench_config() -> StpmConfig {
    StpmConfig {
        max_period: Threshold::Absolute(4),
        min_density: Threshold::Absolute(3),
        dist_interval: (5, 60),
        min_season: 2,
        max_pattern_len: 2,
        ..StpmConfig::default()
    }
}

fn relation_kernel() {
    let pairs: Vec<(Interval, Interval)> = (0..256u64)
        .map(|i| {
            (
                Interval::new(i, i + (i % 7)),
                Interval::new(i + (i % 3), i + 5 + (i % 11)),
            )
        })
        .collect();
    bench_function("relation/classify_256_pairs", 1000, pairs.len(), || {
        let mut count = 0usize;
        for (a, b) in &pairs {
            if classify_relation(black_box(a), black_box(b), 0, 1).is_some() {
                count += 1;
            }
        }
        count
    });
}

fn support_kernel() {
    let a: Vec<u64> = (0..4096).filter(|x| x % 2 == 0).collect();
    let b: Vec<u64> = (0..4096).filter(|x| x % 3 == 0).collect();
    bench_function("support/intersect_4k", 1000, a.len() + b.len(), || {
        support::intersect(black_box(&a), black_box(&b))
    });
    // Skewed sizes trigger the galloping advance; the reused scratch buffer
    // makes the kernel allocation-free, like the miner's inner loop.
    let long: Vec<u64> = (0..262_144).map(|x| x * 2).collect();
    let short: Vec<u64> = (0..64).map(|x| x * 8_191).collect();
    let mut out = Vec::new();
    bench_function(
        "support/intersect_into_galloping_256k_vs_64",
        1000,
        short.len() + long.len(),
        || {
            support::intersect_into(&mut out, black_box(&short), black_box(&long));
            out.len()
        },
    );
}

fn season_kernel() {
    let support: Vec<u64> = (1..2000u64).filter(|x| x % 17 < 6).collect();
    let config = bench_config().resolve(2000).unwrap();
    bench_function("season/find_seasons_2k", 1000, support.len(), || {
        find_seasons(black_box(&support), &config)
    });
    // The allocation-free fast path the miner gates every candidate on.
    bench_function("season/support_is_frequent_2k", 1000, support.len(), || {
        support_is_frequent(black_box(&support), &config)
    });
}

fn adjacency_kernel() {
    // Row width of a 4096-event F_1 (64 words); AND three member rows and
    // walk the surviving bits — the per-group extension enumeration.
    let rows: Vec<Vec<u64>> = (0..3u64)
        .map(|r| {
            (0..64)
                .map(|w| {
                    0x9e37_79b9_7f4a_7c15u64.rotate_left((r * 17 + w) as u32) | (1 << (w % 64))
                })
                .collect()
        })
        .collect();
    let refs: Vec<&[u64]> = rows.iter().map(Vec::as_slice).collect();
    let mut out = Vec::new();
    bench_function("adjacency/and_3_rows_64w_iter_bits", 1000, 3 * 64, || {
        support::intersect_rows_into(&mut out, black_box(&refs));
        support::iter_set_bits(&out, 1).sum::<usize>()
    });
}

fn verdict_kernel() {
    // A verdict table shaped like a mid-size level 2: 64 pairs × 32 shared
    // granules × a 2×2 instance cross-product per granule.
    let label = |series: u32| EventLabel::new(SeriesId(series), SymbolId(1));
    let mut table = VerdictTable::default();
    for p in 0..64u32 {
        table.begin_pair(label(p), label(p + 64));
        for granule in 0..32u64 {
            table.begin_granule(1 + granule * 3);
            for cell in 0..4u8 {
                table.push_verdict(1 + (cell + p as u8) % 6);
            }
        }
    }
    bench_function("verdict/lookup_pair_block_cell", 1000, 64, || {
        let mut acc = 0u64;
        for p in 0..64u32 {
            let pair = table.pair(label(p), label(p + 64)).unwrap();
            let block = pair.block(black_box(49)).unwrap();
            acc += u64::from(block[3]);
        }
        acc
    });
    // The closed-form classifier the lookups replace, over the same volume.
    let pairs: Vec<(Interval, Interval)> = (0..64u64)
        .map(|i| (Interval::new(i, i + 4), Interval::new(i + 2, i + 6)))
        .collect();
    bench_function(
        "verdict/classify_64_pairs_baseline",
        1000,
        pairs.len(),
        || {
            let mut count = 0usize;
            for (a, b) in &pairs {
                if classify_relation(black_box(a), black_box(b), 0, 1).is_some() {
                    count += 1;
                }
            }
            count
        },
    );
}

fn nmi_kernel() {
    let data = bench_dataset();
    let x = &data.dsyb.series()[0];
    let y = &data.dsyb.series()[1];
    bench_function("approx/nmi_1200_instants", 500, 1200, || {
        normalized_mi(black_box(x), black_box(y))
    });
}

fn pstree_kernel() {
    let data = bench_dataset();
    let dseq = data.dseq().unwrap();
    let transactions = TransactionDb::from_sequences(&dseq);
    bench_function("baseline/psgrowth_small", 20, transactions.len(), || {
        PsGrowth::new(6, 40, 2, transactions.len() as u64).mine(black_box(&transactions))
    });
}

fn end_to_end() {
    let data = bench_dataset();
    let dseq = data.dseq().unwrap();
    let input = MiningInput::new(&data.dsyb, &dseq, data.mapping_factor);
    let config = config_for(DatasetProfile::Influenza, 0.006, 0.0075, 2);

    bench_function("mine/estpm_small", 20, 0, || {
        StpmMiner.mine_with(black_box(&input), &config).unwrap()
    });
    bench_function("mine/astpm_small", 20, 0, || {
        AStpmMiner::new()
            .mine_with(black_box(&input), &config)
            .unwrap()
    });
    bench_function("mine/apsgrowth_small", 20, 0, || {
        ApsGrowth.mine_with(black_box(&input), &config).unwrap()
    });
    // Guard that the scaled specs used by the experiment binaries stay valid.
    let _ = scaled_real_spec(DatasetProfile::RenewableEnergy);
}

fn main() {
    println!(
        "kernels (min/median of {SAMPLES} batches; dispatch: {})",
        stpm_core::simd::kernels().name()
    );
    relation_kernel();
    support_kernel();
    adjacency_kernel();
    verdict_kernel();
    season_kernel();
    nmi_kernel();
    pstree_kernel();
    end_to_end();
}
