//! Temporal sequences and the temporal sequence database `D_SEQ`
//! (Definitions 3.9–3.11).
//!
//! The sequence mapping `g : X_S →_m H` groups `m` adjacent symbols of a
//! symbolic series into one granule of the coarser granularity `H`; within a
//! granule, runs of identical symbols become event instances
//! `e = (ω, [ts, te])`. The database row for granule `H_i` gathers the
//! instances of *all* series in that granule (Table IV of the paper).

use crate::error::{Error, Result};
use crate::granularity::GranulePos;
use crate::interval::Interval;
use crate::registry::{EventLabel, EventRegistry, SeriesId};
use crate::symbolic::SymbolicDatabase;
use std::collections::BTreeSet;

/// A single occurrence of a temporal event: the event label plus the closed
/// interval of finest-granularity granule positions during which it holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventInstance {
    /// Which event (series, symbol) occurred.
    pub label: EventLabel,
    /// When it occurred, in finest-granularity positions (1-based, inclusive).
    pub interval: Interval,
}

impl EventInstance {
    /// Creates an event instance.
    #[must_use]
    pub fn new(label: EventLabel, interval: Interval) -> Self {
        Self { label, interval }
    }
}

/// The temporal sequence of one granule of `H`: every event instance (from
/// every series) that occurs inside the granule, ordered chronologically by
/// start time (ties broken by end time, then label).
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalSequence {
    granule: GranulePos,
    instances: Vec<EventInstance>,
}

impl TemporalSequence {
    /// Creates a sequence for granule `granule` (1-based position in `H`),
    /// sorting the instances chronologically.
    #[must_use]
    pub fn new(granule: GranulePos, mut instances: Vec<EventInstance>) -> Self {
        instances.sort_by_key(|e| (e.interval.start, e.interval.end, e.label));
        Self { granule, instances }
    }

    /// Position of the granule in `H` (1-based).
    #[must_use]
    pub fn granule(&self) -> GranulePos {
        self.granule
    }

    /// The event instances in chronological order.
    #[must_use]
    pub fn instances(&self) -> &[EventInstance] {
        &self.instances
    }

    /// Number of event instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the sequence holds no instances.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// All instances of one event label within this sequence.
    pub fn instances_of(&self, label: EventLabel) -> impl Iterator<Item = &EventInstance> {
        self.instances.iter().filter(move |e| e.label == label)
    }

    /// Whether the event occurs at least once in this sequence.
    #[must_use]
    pub fn contains_event(&self, label: EventLabel) -> bool {
        self.instances.iter().any(|e| e.label == label)
    }

    /// The distinct event labels occurring in this sequence.
    #[must_use]
    pub fn distinct_events(&self) -> Vec<EventLabel> {
        let set: BTreeSet<EventLabel> = self.instances.iter().map(|e| e.label).collect();
        set.into_iter().collect()
    }
}

/// The temporal sequence database `D_SEQ`: one [`TemporalSequence`] per
/// granule of the chosen granularity `H`, plus the registry needed to print
/// events back in `series:symbol` form.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceDatabase {
    sequences: Vec<TemporalSequence>,
    registry: EventRegistry,
    /// The mapping factor `m` of `g : X_S →_m H`.
    m: u64,
    num_series: usize,
}

impl SequenceDatabase {
    /// Applies the sequence mapping `g : X_S →_m H` to every series of
    /// `D_SYB` (Definition 3.11). The trailing instants that do not fill a
    /// complete granule are dropped, keeping the partitioning equal.
    ///
    /// # Errors
    /// [`Error::InvalidGranularity`] when `m` is zero or exceeds the series
    /// length.
    pub fn from_symbolic(db: &SymbolicDatabase, m: u64) -> Result<Self> {
        if m == 0 {
            return Err(Error::InvalidGranularity {
                reason: "the sequence-mapping factor m must be at least 1".into(),
            });
        }
        let len = db.len() as u64;
        let num_granules = len / m;
        if num_granules == 0 {
            return Err(Error::InvalidGranularity {
                reason: format!(
                    "the mapping factor m={m} exceeds the series length {len}; no granule fits"
                ),
            });
        }
        let sequences = (0..num_granules)
            .map(|g| build_granule_sequence(db, m, g))
            .collect();
        Ok(Self {
            sequences,
            registry: db.registry().clone(),
            m,
            num_series: db.num_series(),
        })
    }

    /// Builds a database directly from pre-constructed sequences (useful for
    /// tests and for re-creating the paper's Table IV verbatim).
    #[must_use]
    pub fn from_sequences(
        sequences: Vec<TemporalSequence>,
        registry: EventRegistry,
        m: u64,
        num_series: usize,
    ) -> Self {
        Self {
            sequences,
            registry,
            m,
            num_series,
        }
    }

    /// Number of granules (= rows of `D_SEQ`).
    #[must_use]
    pub fn num_granules(&self) -> u64 {
        self.sequences.len() as u64
    }

    /// Number of series the database was built from.
    #[must_use]
    pub fn num_series(&self) -> usize {
        self.num_series
    }

    /// The mapping factor `m` used to build the database.
    #[must_use]
    pub fn mapping_factor(&self) -> u64 {
        self.m
    }

    /// The temporal sequences, ordered by granule position.
    #[must_use]
    pub fn sequences(&self) -> &[TemporalSequence] {
        &self.sequences
    }

    /// The sequence of granule `pos` (1-based), if it exists.
    #[must_use]
    pub fn sequence_at(&self, pos: GranulePos) -> Option<&TemporalSequence> {
        if pos == 0 {
            return None;
        }
        self.sequences.get(usize::try_from(pos - 1).ok()?)
    }

    /// The registry mapping events to readable names.
    #[must_use]
    pub fn registry(&self) -> &EventRegistry {
        &self.registry
    }

    /// Total number of event instances across all sequences.
    #[must_use]
    pub fn total_instances(&self) -> usize {
        self.sequences.iter().map(TemporalSequence::len).sum()
    }

    /// Distinct event labels occurring anywhere in the database.
    #[must_use]
    pub fn distinct_events(&self) -> Vec<EventLabel> {
        let set: BTreeSet<EventLabel> = self
            .sequences
            .iter()
            .flat_map(|s| s.instances().iter().map(|e| e.label))
            .collect();
        set.into_iter().collect()
    }

    /// The support set of an event: the (sorted) granule positions where it
    /// occurs (Definition 3.12).
    #[must_use]
    pub fn support_of(&self, label: EventLabel) -> Vec<GranulePos> {
        self.sequences
            .iter()
            .filter(|s| s.contains_event(label))
            .map(TemporalSequence::granule)
            .collect()
    }

    /// Keeps only the first `n` sequences (used by the scalability
    /// experiments varying the number of sequences).
    #[must_use]
    pub fn truncated(&self, n: usize) -> Self {
        Self {
            sequences: self.sequences.iter().take(n).cloned().collect(),
            registry: self.registry.clone(),
            m: self.m,
            num_series: self.num_series,
        }
    }

    /// Builds only the granules that `db` has grown since this database was
    /// (last) built from it, appends them, and returns the newly appended
    /// slice. Samples that do not yet fill a complete granule are left for a
    /// later append — existing granules are never revisited, matching the
    /// append-only contract of the streaming miner.
    ///
    /// # Errors
    /// [`Error::AppendMismatch`] when `db` is not a grown version of the
    /// database this one was built from (different registry or series count),
    /// or when it shrank below the already-built granules.
    pub fn append_from_symbolic(&mut self, db: &SymbolicDatabase) -> Result<&[TemporalSequence]> {
        if db.num_series() != self.num_series || db.registry() != &self.registry {
            return Err(Error::AppendMismatch {
                reason: "the symbolic database's series set or registry diverged from the \
                         sequence database's"
                    .into(),
            });
        }
        let built = self.sequences.len() as u64;
        let total = db.len() as u64 / self.m;
        if total < built {
            return Err(Error::AppendMismatch {
                reason: format!(
                    "the symbolic database covers {total} granules but {built} were \
                     already built"
                ),
            });
        }
        let from = self.sequences.len();
        self.sequences
            .extend((built..total).map(|g| build_granule_sequence(db, self.m, g)));
        Ok(&self.sequences[from..])
    }
}

/// Builds the temporal sequence of 0-based granule `g` of `db` under mapping
/// factor `m`: within the granule's window, runs of identical symbols of each
/// series become event instances (Definition 3.11). Shared by the full build
/// ([`SequenceDatabase::from_symbolic`]) and the streaming append
/// ([`SequenceDatabase::append_from_symbolic`]), so appended granules are
/// bit-identical to batch-built ones.
fn build_granule_sequence(db: &SymbolicDatabase, m: u64, g: u64) -> TemporalSequence {
    let base = g * m; // 0-based offset of the first instant of granule g+1
    let mut instances = Vec::new();
    for (sid, series) in db.series().iter().enumerate() {
        let label_series = SeriesId(u32::try_from(sid).expect("series fits u32"));
        let window = &series.symbols()[usize::try_from(base).expect("index fits usize")
            ..usize::try_from(base + m).expect("index fits usize")];
        let mut run_start = 0usize;
        while run_start < window.len() {
            let symbol = window[run_start];
            let mut run_end = run_start;
            while run_end + 1 < window.len() && window[run_end + 1] == symbol {
                run_end += 1;
            }
            let start_pos = base + run_start as u64 + 1;
            let end_pos = base + run_end as u64 + 1;
            instances.push(EventInstance::new(
                EventLabel::new(label_series, symbol),
                Interval::new(start_pos, end_pos),
            ));
            run_start = run_end + 1;
        }
    }
    TemporalSequence::new(g + 1, instances)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SymbolId;
    use crate::symbolic::SymbolicSeries;
    use crate::symbolize::Alphabet;

    /// Builds the running example of the paper (Table II): series C at
    /// 5-minute granularity, first 9 instants.
    fn table2_c_prefix() -> SymbolicDatabase {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let c = SymbolicSeries::from_labels(
            "C",
            &["1", "1", "0", "1", "0", "0", "1", "1", "0"],
            alphabet,
        )
        .unwrap();
        SymbolicDatabase::new(vec![c]).unwrap()
    }

    #[test]
    fn sequence_mapping_matches_paper_example() {
        // g : C →3 H yields Seq1 = <(C:1,[G1,G2]), (C:0,[G3,G3])>,
        // Seq2 = <(C:1,[G4,G4]), (C:0,[G5,G6])>, Seq3 = <(C:1,[G7,G8]), (C:0,[G9,G9])>.
        let db = table2_c_prefix();
        let dseq = db.to_sequence_database(3).unwrap();
        assert_eq!(dseq.num_granules(), 3);
        assert_eq!(dseq.mapping_factor(), 3);

        let seq1 = dseq.sequence_at(1).unwrap();
        assert_eq!(seq1.len(), 2);
        assert_eq!(seq1.instances()[0].interval, Interval::new(1, 2));
        assert_eq!(seq1.instances()[0].label.symbol, SymbolId(1));
        assert_eq!(seq1.instances()[1].interval, Interval::new(3, 3));
        assert_eq!(seq1.instances()[1].label.symbol, SymbolId(0));

        let seq2 = dseq.sequence_at(2).unwrap();
        assert_eq!(seq2.instances()[0].interval, Interval::new(4, 4));
        assert_eq!(seq2.instances()[1].interval, Interval::new(5, 6));

        let seq3 = dseq.sequence_at(3).unwrap();
        assert_eq!(seq3.instances()[0].interval, Interval::new(7, 8));
        assert_eq!(seq3.instances()[1].interval, Interval::new(9, 9));
    }

    #[test]
    fn mapping_factor_validation() {
        let db = table2_c_prefix();
        assert!(db.to_sequence_database(0).is_err());
        assert!(db.to_sequence_database(100).is_err());
        assert!(db.to_sequence_database(9).is_ok());
    }

    #[test]
    fn partial_trailing_granule_is_dropped() {
        let db = table2_c_prefix(); // 9 instants
        let dseq = db.to_sequence_database(4).unwrap();
        assert_eq!(dseq.num_granules(), 2); // 9 / 4 = 2, one instant dropped
    }

    #[test]
    fn support_set_is_sorted_granule_positions() {
        let db = table2_c_prefix();
        let dseq = db.to_sequence_database(3).unwrap();
        let label_on = db.registry().label("C", "1").unwrap();
        let label_off = db.registry().label("C", "0").unwrap();
        assert_eq!(dseq.support_of(label_on), vec![1, 2, 3]);
        assert_eq!(dseq.support_of(label_off), vec![1, 2, 3]);
    }

    #[test]
    fn sequence_accessors() {
        let db = table2_c_prefix();
        let dseq = db.to_sequence_database(3).unwrap();
        assert!(dseq.sequence_at(0).is_none());
        assert!(dseq.sequence_at(4).is_none());
        let s = dseq.sequence_at(1).unwrap();
        assert_eq!(s.granule(), 1);
        assert!(!s.is_empty());
        let on = db.registry().label("C", "1").unwrap();
        assert!(s.contains_event(on));
        assert_eq!(s.instances_of(on).count(), 1);
        assert_eq!(s.distinct_events().len(), 2);
        assert_eq!(dseq.total_instances(), 6);
        assert_eq!(dseq.distinct_events().len(), 2);
        assert_eq!(dseq.num_series(), 1);
    }

    #[test]
    fn appended_granules_are_identical_to_batch_built_ones() {
        // Build the full-table D_SEQ in one shot, then grow the same database
        // incrementally in uneven symbolic batches: the sequences must be
        // bit-identical at every step, with partial granules left pending.
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let full_bits = [("C", "110100110"), ("D", "100100111")];
        let full = SymbolicDatabase::new(
            full_bits
                .iter()
                .map(|(name, bits)| {
                    let labels: Vec<&str> = bits
                        .chars()
                        .map(|c| if c == '1' { "1" } else { "0" })
                        .collect();
                    SymbolicSeries::from_labels(name, &labels, alphabet.clone()).unwrap()
                })
                .collect(),
        )
        .unwrap();
        let reference = full.to_sequence_database(3).unwrap();

        let slice = |from: usize, to: usize| {
            SymbolicDatabase::new(
                full.series()
                    .iter()
                    .map(|s| {
                        SymbolicSeries::new(
                            s.name().to_string(),
                            s.symbols()[from..to].to_vec(),
                            s.alphabet().clone(),
                        )
                    })
                    .collect(),
            )
            .unwrap()
        };
        let mut growing = slice(0, 4); // one full granule + one pending instant
        let mut dseq = growing.to_sequence_database(3).unwrap();
        assert_eq!(dseq.num_granules(), 1);
        growing.append_batch(&slice(4, 7)).unwrap(); // completes granule 2, starts 3
        let appended = dseq.append_from_symbolic(&growing).unwrap();
        assert_eq!(appended.len(), 1);
        assert_eq!(appended[0], *reference.sequence_at(2).unwrap());
        growing.append_batch(&slice(7, 9)).unwrap(); // completes granule 3
        let appended = dseq.append_from_symbolic(&growing).unwrap();
        assert_eq!(appended[0], *reference.sequence_at(3).unwrap());
        assert_eq!(dseq.sequences(), reference.sequences());
        // Appending with nothing new is a no-op.
        assert!(dseq.append_from_symbolic(&growing).unwrap().is_empty());
    }

    #[test]
    fn append_from_symbolic_rejects_mismatched_databases() {
        let db = table2_c_prefix();
        let mut dseq = db.to_sequence_database(3).unwrap();
        // A database with a different series set is rejected.
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let other = SymbolicDatabase::new(vec![SymbolicSeries::from_labels(
            "Z",
            &["1", "0", "1"],
            alphabet,
        )
        .unwrap()])
        .unwrap();
        assert!(matches!(
            dseq.append_from_symbolic(&other),
            Err(Error::AppendMismatch { .. })
        ));
        // A database that shrank below the built granules is rejected too.
        let shrunk = db.truncated(3).unwrap();
        assert!(matches!(
            dseq.append_from_symbolic(&shrunk),
            Err(Error::AppendMismatch { .. })
        ));
    }

    #[test]
    fn truncation_keeps_prefix_of_sequences() {
        let db = table2_c_prefix();
        let dseq = db.to_sequence_database(3).unwrap();
        let t = dseq.truncated(2);
        assert_eq!(t.num_granules(), 2);
        assert_eq!(t.mapping_factor(), 3);
    }

    #[test]
    fn instances_are_sorted_chronologically_across_series() {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let a = SymbolicSeries::from_labels("A", &["0", "1", "1"], alphabet.clone()).unwrap();
        let b = SymbolicSeries::from_labels("B", &["1", "1", "0"], alphabet).unwrap();
        let db = SymbolicDatabase::new(vec![a, b]).unwrap();
        let dseq = db.to_sequence_database(3).unwrap();
        let seq = dseq.sequence_at(1).unwrap();
        let starts: Vec<u64> = seq.instances().iter().map(|e| e.interval.start).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted);
        // B:1 [G1,G2] starts at 1 like A:0 [G1,G1]; A:0 (shorter) comes first.
        assert_eq!(seq.instances()[0].interval, Interval::new(1, 1));
        assert_eq!(seq.instances()[1].interval, Interval::new(1, 2));
    }

    /// Re-creates the full Table II → Table IV transformation of the paper
    /// and spot-checks a handful of rows.
    #[test]
    fn full_table_iv_reconstruction() {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let rows: &[(&str, &str)] = &[
            ("C", "110100110000000000111111000000100110000110"),
            ("D", "100100110110000000111111000000100100110110"),
            ("F", "001011001001111000000000111111001001001001"),
            ("M", "111100111110111111000111111111111000111000"),
            ("N", "110111111110111111000000111111111111111000"),
        ];
        let series: Vec<SymbolicSeries> = rows
            .iter()
            .map(|(name, bits)| {
                let labels: Vec<&str> = bits
                    .chars()
                    .map(|c| if c == '1' { "1" } else { "0" })
                    .collect();
                SymbolicSeries::from_labels(name, &labels, alphabet.clone()).unwrap()
            })
            .collect();
        let db = SymbolicDatabase::new(series).unwrap();
        assert_eq!(db.len(), 42);
        let dseq = db.to_sequence_database(3).unwrap();
        assert_eq!(dseq.num_granules(), 14);

        // H5 = {G13..G15}: C:0 [G13,G15], D:0, F:1, M:1, N:1 — 5 instances.
        let h5 = dseq.sequence_at(5).unwrap();
        assert_eq!(h5.len(), 5);
        assert!(h5
            .instances()
            .iter()
            .all(|e| e.interval == Interval::new(13, 15)));

        // H1: (C:1,[G1,G2]), (C:0,[G3,G3]), (D:1,[G1,G1]), (D:0,[G2,G3]),
        // (F:0,[G1,G2]), (F:1,[G3,G3]), (M:1,[G1,G3]), (N:1,[G1,G2]), (N:0,[G3,G3])
        let h1 = dseq.sequence_at(1).unwrap();
        assert_eq!(h1.len(), 9);
        let c1 = db.registry().label("C", "1").unwrap();
        let m1 = db.registry().label("M", "1").unwrap();
        assert_eq!(
            h1.instances_of(c1).next().unwrap().interval,
            Interval::new(1, 2)
        );
        assert_eq!(
            h1.instances_of(m1).next().unwrap().interval,
            Interval::new(1, 3)
        );

        // Support of the event C:1 across D_SEQ (paper, Definition 3.7 example):
        // it occurs at H1, H2, H3, H7, H8, H11, H12, H14.
        let sup_c1 = dseq.support_of(c1);
        assert_eq!(sup_c1, vec![1, 2, 3, 7, 8, 11, 12, 14]);
    }
}
