//! # stpm-timeseries
//!
//! Time-series substrate for the FreqSTPfTS system ("Mining Seasonal Temporal
//! Patterns in Time Series", ICDE 2023).
//!
//! This crate implements Phase 1 of the FreqSTPfTS pipeline, *Data
//! Transformation*:
//!
//! 1. [`TimeDomain`] / [`Granularity`] / [`GranularityHierarchy`] — the time
//!    model of Section III-A of the paper (granules, positions, periods, the
//!    *m-Finer* relation between granularities).
//! 2. [`TimeSeries`] and the [`Symbolizer`] implementations (SAX,
//!    equal-width, quantile and explicit thresholds) — Section III-B.
//! 3. [`SymbolicSeries`] / [`SymbolicDatabase`] — the symbolic database
//!    `D_SYB` (Definition 3.6).
//! 4. The *sequence mapping* `g : X_S →_m H` producing
//!    [`TemporalSequence`]s and the temporal sequence database
//!    [`SequenceDatabase`] (`D_SEQ`, Definitions 3.9–3.11).
//!
//! The mining crates (`stpm-core`, `stpm-approx`, `stpm-baseline`) operate on
//! the types exported here.
//!
//! ## Example
//!
//! ```
//! use stpm_timeseries::{TimeSeries, SymbolicDatabase, ThresholdSymbolizer};
//!
//! // Two appliances sampled every 5 minutes.
//! let cooker = TimeSeries::new("C", vec![1.82, 1.25, 0.0, 1.1, 0.0, 0.0]);
//! let dishes = TimeSeries::new("D", vec![2.0, 0.0, 0.0, 1.4, 0.0, 0.0]);
//!
//! // ON/OFF symbolization with a 0.5 threshold.
//! let sym = ThresholdSymbolizer::binary(0.5, "0", "1");
//! let dsyb = SymbolicDatabase::from_series(&[cooker, dishes], &sym).unwrap();
//!
//! // 15-minute granules: 3 adjacent 5-minute symbols per granule.
//! let dseq = dsyb.to_sequence_database(3).unwrap();
//! assert_eq!(dseq.num_granules(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod granularity;
pub mod interval;
pub mod registry;
pub mod sequence;
pub mod series;
pub mod stats;
pub mod symbolic;
pub mod symbolize;

pub use error::{Error, Result};
pub use granularity::{Granularity, GranularityHierarchy, GranulePos, TimeDomain, TimeUnit};
pub use interval::Interval;
pub use registry::{EventLabel, EventRegistry, SeriesId, SymbolId};
pub use sequence::{EventInstance, SequenceDatabase, TemporalSequence};
pub use series::TimeSeries;
pub use symbolic::{SymbolicDatabase, SymbolicSeries};
pub use symbolize::{
    Alphabet, EqualWidthSymbolizer, QuantileSymbolizer, SaxSymbolizer, Symbolizer,
    ThresholdSymbolizer,
};
