//! Error types shared by the data-transformation substrate.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while transforming raw time series into the symbolic and
/// temporal-sequence databases.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A time series contained no observations.
    EmptySeries {
        /// Name of the offending series.
        name: String,
    },
    /// Two series that must share a granularity had different lengths.
    LengthMismatch {
        /// Name of the offending series.
        name: String,
        /// Expected number of observations.
        expected: usize,
        /// Actual number of observations.
        actual: usize,
    },
    /// A symbolizer was configured with an invalid alphabet.
    InvalidAlphabet {
        /// Human-readable reason.
        reason: String,
    },
    /// A granularity conversion factor was invalid (zero, or not a divisor).
    InvalidGranularity {
        /// Human-readable reason.
        reason: String,
    },
    /// A value could not be symbolized (for example NaN with a symbolizer
    /// that does not accept missing data).
    NonFiniteValue {
        /// Name of the offending series.
        series: String,
        /// Index of the offending observation.
        index: usize,
    },
    /// The requested series does not exist in the database.
    UnknownSeries {
        /// Name that was looked up.
        name: String,
    },
    /// An appended batch does not continue the database it is appended to
    /// (different series set, alphabets, or an inconsistent granule count).
    AppendMismatch {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptySeries { name } => write!(f, "time series `{name}` is empty"),
            Error::LengthMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "time series `{name}` has {actual} observations, expected {expected}"
            ),
            Error::InvalidAlphabet { reason } => write!(f, "invalid alphabet: {reason}"),
            Error::InvalidGranularity { reason } => write!(f, "invalid granularity: {reason}"),
            Error::NonFiniteValue { series, index } => {
                write!(
                    f,
                    "series `{series}` has a non-finite value at index {index}"
                )
            }
            Error::UnknownSeries { name } => write!(f, "unknown series `{name}`"),
            Error::AppendMismatch { reason } => write!(f, "append rejected: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = Error::EmptySeries { name: "C".into() };
        assert!(e.to_string().contains('C'));

        let e = Error::LengthMismatch {
            name: "D".into(),
            expected: 10,
            actual: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('4'));

        let e = Error::InvalidAlphabet {
            reason: "needs at least two symbols".into(),
        };
        assert!(e.to_string().contains("two symbols"));

        let e = Error::NonFiniteValue {
            series: "M".into(),
            index: 7,
        };
        assert!(e.to_string().contains('7'));

        let e = Error::UnknownSeries { name: "Z".into() };
        assert!(e.to_string().contains('Z'));

        let e = Error::InvalidGranularity {
            reason: "zero width".into(),
        };
        assert!(e.to_string().contains("zero width"));
    }

    #[test]
    fn errors_are_cloneable_and_comparable() {
        let a = Error::EmptySeries { name: "X".into() };
        let b = a.clone();
        assert_eq!(a, b);
    }
}
