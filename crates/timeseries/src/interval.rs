//! Closed time intervals over granule positions.
//!
//! Event instances (Definition 3.7) occur during a time interval
//! `[ts, te]`. Positions refer to granules of the *finest* granularity `G`,
//! which lets the mining layer trace every instance back to raw timestamps.

use crate::granularity::GranulePos;
use std::fmt;

/// A closed (inclusive) interval of granule positions `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Interval {
    /// Start granule position (inclusive).
    pub start: GranulePos,
    /// End granule position (inclusive).
    pub end: GranulePos,
}

impl Interval {
    /// Creates an interval, normalising the bounds so that `start <= end`.
    #[must_use]
    pub fn new(start: GranulePos, end: GranulePos) -> Self {
        if start <= end {
            Self { start, end }
        } else {
            Self {
                start: end,
                end: start,
            }
        }
    }

    /// A single-granule interval `[pos, pos]`.
    #[must_use]
    pub fn point(pos: GranulePos) -> Self {
        Self {
            start: pos,
            end: pos,
        }
    }

    /// Number of granules covered by the interval (always at least one).
    #[must_use]
    pub fn duration(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Whether `pos` lies inside the interval.
    #[must_use]
    pub fn contains_pos(&self, pos: GranulePos) -> bool {
        self.start <= pos && pos <= self.end
    }

    /// Whether `other` is fully contained in `self`.
    #[must_use]
    pub fn contains(&self, other: &Interval) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the two intervals share at least one granule.
    #[must_use]
    pub fn intersects(&self, other: &Interval) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// Number of granules shared by the two intervals (0 when disjoint).
    #[must_use]
    pub fn overlap_len(&self, other: &Interval) -> u64 {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        if lo > hi {
            0
        } else {
            hi - lo + 1
        }
    }

    /// Shifts both endpoints by `delta` granules (useful when re-basing a
    /// sequence-local interval to absolute positions).
    #[must_use]
    pub fn shifted(&self, delta: u64) -> Self {
        Self {
            start: self.start + delta,
            end: self.end + delta,
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[G{},G{}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises_bounds() {
        let a = Interval::new(5, 2);
        assert_eq!(a, Interval::new(2, 5));
        assert_eq!(a.start, 2);
        assert_eq!(a.end, 5);
    }

    #[test]
    fn point_and_duration() {
        assert_eq!(Interval::point(7).duration(), 1);
        assert_eq!(Interval::new(1, 4).duration(), 4);
    }

    #[test]
    fn containment() {
        let outer = Interval::new(1, 10);
        let inner = Interval::new(3, 7);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer));
        assert!(outer.contains_pos(1));
        assert!(outer.contains_pos(10));
        assert!(!outer.contains_pos(11));
    }

    #[test]
    fn intersection_and_overlap() {
        let a = Interval::new(1, 5);
        let b = Interval::new(4, 9);
        let c = Interval::new(7, 9);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.overlap_len(&b), 2);
        assert_eq!(a.overlap_len(&c), 0);
        assert_eq!(a.overlap_len(&a), 5);
    }

    #[test]
    fn shifted_moves_both_ends() {
        assert_eq!(Interval::new(1, 3).shifted(10), Interval::new(11, 13));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(format!("{}", Interval::new(1, 2)), "[G1,G2]");
    }
}
