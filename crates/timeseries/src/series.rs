//! Raw numeric time series (Definition 3.5).

use crate::error::{Error, Result};

/// A univariate time series: chronologically ordered measurements of a single
/// phenomenon, sampled at every instant of the finest granularity `G`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    name: String,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a time series from raw observations.
    #[must_use]
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            values,
        }
    }

    /// Name of the measured phenomenon (e.g. `"Cooker"`, `"Temperature"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw observations in chronological order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no observations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Validates the series: it must be non-empty and contain only finite
    /// values.
    ///
    /// # Errors
    /// [`Error::EmptySeries`] or [`Error::NonFiniteValue`].
    pub fn validate(&self) -> Result<()> {
        if self.values.is_empty() {
            return Err(Error::EmptySeries {
                name: self.name.clone(),
            });
        }
        if let Some(idx) = self.values.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue {
                series: self.name.clone(),
                index: idx,
            });
        }
        Ok(())
    }

    /// Minimum observation (NaNs ignored); `None` for an empty series.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.min(v))))
    }

    /// Maximum observation (NaNs ignored); `None` for an empty series.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Arithmetic mean of the observations; `None` for an empty series.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    /// Population standard deviation; `None` for an empty series.
    #[must_use]
    pub fn std_dev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.values.len() as f64;
        Some(var.sqrt())
    }

    /// Returns a copy truncated to the first `len` observations.
    #[must_use]
    pub fn truncated(&self, len: usize) -> Self {
        Self {
            name: self.name.clone(),
            values: self.values.iter().copied().take(len).collect(),
        }
    }

    /// Z-normalised copy of the series (mean 0, standard deviation 1). Series
    /// with zero variance are returned centred but not scaled.
    #[must_use]
    pub fn z_normalized(&self) -> Self {
        let mean = self.mean().unwrap_or(0.0);
        let sd = self.std_dev().unwrap_or(0.0);
        let values = self
            .values
            .iter()
            .map(|v| {
                if sd > f64::EPSILON {
                    (v - mean) / sd
                } else {
                    v - mean
                }
            })
            .collect();
        Self {
            name: self.name.clone(),
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let ts = TimeSeries::new("C", vec![1.0, 2.0, 3.0]);
        assert_eq!(ts.name(), "C");
        assert_eq!(ts.len(), 3);
        assert!(!ts.is_empty());
        assert_eq!(ts.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn validation_catches_empty_and_nan() {
        assert!(TimeSeries::new("E", vec![]).validate().is_err());
        assert!(TimeSeries::new("N", vec![1.0, f64::NAN])
            .validate()
            .is_err());
        assert!(TimeSeries::new("I", vec![1.0, f64::INFINITY])
            .validate()
            .is_err());
        assert!(TimeSeries::new("OK", vec![1.0, 2.0]).validate().is_ok());
    }

    #[test]
    fn summary_statistics() {
        let ts = TimeSeries::new("S", vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(ts.min(), Some(2.0));
        assert_eq!(ts.max(), Some(9.0));
        assert!((ts.mean().unwrap() - 5.0).abs() < 1e-12);
        assert!((ts.std_dev().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn statistics_of_empty_series_are_none() {
        let ts = TimeSeries::new("E", vec![]);
        assert_eq!(ts.min(), None);
        assert_eq!(ts.max(), None);
        assert_eq!(ts.mean(), None);
        assert_eq!(ts.std_dev(), None);
    }

    #[test]
    fn z_normalization_centres_and_scales() {
        let ts = TimeSeries::new("Z", vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let z = ts.z_normalized();
        assert!((z.mean().unwrap()).abs() < 1e-12);
        assert!((z.std_dev().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn z_normalization_of_constant_series_does_not_divide_by_zero() {
        let ts = TimeSeries::new("K", vec![3.0; 10]);
        let z = ts.z_normalized();
        assert!(z.values().iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn truncated_keeps_prefix() {
        let ts = TimeSeries::new("T", vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ts.truncated(2).values(), &[1.0, 2.0]);
        assert_eq!(ts.truncated(10).len(), 4);
    }
}
