//! Empirical distributions over symbolic series.
//!
//! The approximate miner (A-STPM, Section V of the paper) needs the marginal
//! and joint probabilities of symbols to compute entropies and mutual
//! information. Those distributions are estimated here, directly on the
//! symbolic database `D_SYB`, with a single pass per pair of series.

use crate::symbolic::SymbolicSeries;

/// The empirical joint distribution of two symbolic series observed at the
/// same time instants.
#[derive(Debug, Clone, PartialEq)]
pub struct JointDistribution {
    /// `p[x][y]` = empirical probability of observing symbol `x` in the first
    /// series and symbol `y` in the second series at the same instant.
    joint: Vec<Vec<f64>>,
    /// Marginal distribution of the first series.
    marginal_x: Vec<f64>,
    /// Marginal distribution of the second series.
    marginal_y: Vec<f64>,
    /// Number of instants the estimate is based on.
    samples: usize,
}

impl JointDistribution {
    /// Estimates the joint distribution of `(x, y)` from their aligned
    /// symbols. The shorter length is used when the series disagree (they
    /// normally never do inside one `D_SYB`).
    #[must_use]
    pub fn estimate(x: &SymbolicSeries, y: &SymbolicSeries) -> Self {
        let nx = x.alphabet().len();
        let ny = y.alphabet().len();
        let n = x.len().min(y.len());
        let mut counts = vec![vec![0usize; ny]; nx];
        for i in 0..n {
            let sx = x.symbols()[i].0 as usize;
            let sy = y.symbols()[i].0 as usize;
            counts[sx][sy] += 1;
        }
        let denom = n.max(1) as f64;
        let joint: Vec<Vec<f64>> = counts
            .iter()
            .map(|row| row.iter().map(|c| *c as f64 / denom).collect())
            .collect();
        let marginal_x: Vec<f64> = joint.iter().map(|row| row.iter().sum()).collect();
        let mut marginal_y = vec![0.0; ny];
        for row in &joint {
            for (j, p) in row.iter().enumerate() {
                marginal_y[j] += p;
            }
        }
        Self {
            joint,
            marginal_x,
            marginal_y,
            samples: n,
        }
    }

    /// `p(x, y)` for symbol ids `x` (first series) and `y` (second series).
    #[must_use]
    pub fn joint(&self, x: usize, y: usize) -> f64 {
        self.joint
            .get(x)
            .and_then(|row| row.get(y))
            .copied()
            .unwrap_or(0.0)
    }

    /// Marginal `p(x)` of the first series.
    #[must_use]
    pub fn marginal_x(&self) -> &[f64] {
        &self.marginal_x
    }

    /// Marginal `p(y)` of the second series.
    #[must_use]
    pub fn marginal_y(&self) -> &[f64] {
        &self.marginal_y
    }

    /// Number of aligned instants used for the estimate.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Alphabet size of the first series.
    #[must_use]
    pub fn x_cardinality(&self) -> usize {
        self.marginal_x.len()
    }

    /// Alphabet size of the second series.
    #[must_use]
    pub fn y_cardinality(&self) -> usize {
        self.marginal_y.len()
    }

    /// Iterates over all `(x, y, p(x,y))` entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.joint
            .iter()
            .enumerate()
            .flat_map(|(x, row)| row.iter().enumerate().map(move |(y, p)| (x, y, *p)))
    }
}

/// Shannon entropy (base 2) of a probability vector; zero-probability cells
/// contribute nothing.
#[must_use]
pub fn entropy(probabilities: &[f64]) -> f64 {
    probabilities
        .iter()
        .filter(|p| **p > 0.0)
        .map(|p| -p * p.log2())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SymbolId;
    use crate::symbolic::SymbolicSeries;
    use crate::symbolize::Alphabet;

    fn bits(name: &str, bits: &[u8]) -> SymbolicSeries {
        SymbolicSeries::new(
            name.to_string(),
            bits.iter().map(|b| SymbolId(u16::from(*b))).collect(),
            Alphabet::from_strs(&["0", "1"]).unwrap(),
        )
    }

    #[test]
    fn joint_distribution_of_identical_series_is_diagonal() {
        let x = bits("X", &[0, 1, 0, 1, 1, 0]);
        let d = JointDistribution::estimate(&x, &x);
        assert!((d.joint(0, 0) - 0.5).abs() < 1e-12);
        assert!((d.joint(1, 1) - 0.5).abs() < 1e-12);
        assert_eq!(d.joint(0, 1), 0.0);
        assert_eq!(d.joint(1, 0), 0.0);
        assert_eq!(d.samples(), 6);
        assert_eq!(d.x_cardinality(), 2);
        assert_eq!(d.y_cardinality(), 2);
    }

    #[test]
    fn joint_distribution_of_independent_series_factorizes() {
        // X alternates every instant, Y alternates every two instants: over a
        // full period of 4 the joint distribution is uniform.
        let x = bits("X", &[0, 1, 0, 1, 0, 1, 0, 1]);
        let y = bits("Y", &[0, 0, 1, 1, 0, 0, 1, 1]);
        let d = JointDistribution::estimate(&x, &y);
        for (_, _, p) in d.iter() {
            assert!((p - 0.25).abs() < 1e-12);
        }
        assert!((d.marginal_x()[0] - 0.5).abs() < 1e-12);
        assert!((d.marginal_y()[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginals_sum_to_one() {
        let x = bits("X", &[0, 1, 1, 1, 0, 0, 1]);
        let y = bits("Y", &[1, 1, 0, 1, 0, 1, 0]);
        let d = JointDistribution::estimate(&x, &y);
        assert!((d.marginal_x().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d.marginal_y().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let total: f64 = d.iter().map(|(_, _, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_lookup_is_zero() {
        let x = bits("X", &[0, 1]);
        let d = JointDistribution::estimate(&x, &x);
        assert_eq!(d.joint(5, 5), 0.0);
    }

    #[test]
    fn entropy_of_uniform_and_degenerate_distributions() {
        assert!((entropy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert!(entropy(&[1.0, 0.0]).abs() < 1e-12);
        assert!((entropy(&[0.25; 4]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy(&[]), 0.0);
    }

    #[test]
    fn mismatched_lengths_use_shorter_prefix() {
        let x = bits("X", &[0, 1, 0, 1]);
        let y = bits("Y", &[0, 1]);
        let d = JointDistribution::estimate(&x, &y);
        assert_eq!(d.samples(), 2);
    }
}
