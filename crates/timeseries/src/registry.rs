//! Interned identifiers for time series, symbols and temporal events.
//!
//! A temporal event `E = (ω, T)` (Definition 3.7) is identified by the pair
//! *(series, symbol)* — e.g. `C:1` means "series C has symbol 1". To keep the
//! mining data structures compact the pair is interned into an
//! [`EventLabel`] of two small integers; the [`EventRegistry`] maps labels
//! back to human-readable names.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a time series within a database (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeriesId(pub u32);

/// Identifier of a symbol within a series' alphabet (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymbolId(pub u16);

/// A temporal event identifier: a (series, symbol) pair such as `C:1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventLabel {
    /// The series the event belongs to.
    pub series: SeriesId,
    /// The symbol the series takes during the event.
    pub symbol: SymbolId,
}

impl EventLabel {
    /// Creates a label from raw ids.
    #[must_use]
    pub fn new(series: SeriesId, symbol: SymbolId) -> Self {
        Self { series, symbol }
    }

    /// Packs the label into a single `u64` (useful as a compact hash key).
    #[must_use]
    pub fn packed(&self) -> u64 {
        (u64::from(self.series.0) << 16) | u64::from(self.symbol.0)
    }

    /// Inverse of [`EventLabel::packed`].
    #[must_use]
    pub fn from_packed(word: u64) -> Self {
        Self {
            series: SeriesId(u32::try_from(word >> 16).expect("packed labels fit 48 bits")),
            symbol: SymbolId((word & 0xFFFF) as u16),
        }
    }
}

/// Maps [`EventLabel`]s to and from human-readable `series:symbol` names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventRegistry {
    series_names: Vec<String>,
    /// One alphabet (list of symbol strings) per series.
    alphabets: Vec<Vec<String>>,
    series_index: HashMap<String, SeriesId>,
}

impl EventRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a series with its symbol alphabet, returning its id. If the
    /// series is already registered the existing id is returned and the
    /// alphabet is left untouched.
    pub fn register_series(&mut self, name: &str, alphabet: &[String]) -> SeriesId {
        if let Some(id) = self.series_index.get(name) {
            return *id;
        }
        let id = SeriesId(u32::try_from(self.series_names.len()).expect("series count fits u32"));
        self.series_names.push(name.to_string());
        self.alphabets.push(alphabet.to_vec());
        self.series_index.insert(name.to_string(), id);
        id
    }

    /// Number of registered series.
    #[must_use]
    pub fn num_series(&self) -> usize {
        self.series_names.len()
    }

    /// Total number of distinct events (series × alphabet size).
    #[must_use]
    pub fn num_events(&self) -> usize {
        self.alphabets.iter().map(Vec::len).sum()
    }

    /// Looks a series id up by name.
    #[must_use]
    pub fn series_id(&self, name: &str) -> Option<SeriesId> {
        self.series_index.get(name).copied()
    }

    /// Name of a series.
    #[must_use]
    pub fn series_name(&self, id: SeriesId) -> Option<&str> {
        self.series_names.get(id.0 as usize).map(String::as_str)
    }

    /// Alphabet of a series.
    #[must_use]
    pub fn alphabet(&self, id: SeriesId) -> Option<&[String]> {
        self.alphabets.get(id.0 as usize).map(Vec::as_slice)
    }

    /// Builds the event label for `series:symbol`, if both exist.
    #[must_use]
    pub fn label(&self, series: &str, symbol: &str) -> Option<EventLabel> {
        let sid = self.series_id(series)?;
        let alphabet = self.alphabet(sid)?;
        let sym = alphabet.iter().position(|s| s == symbol)?;
        Some(EventLabel::new(
            sid,
            SymbolId(u16::try_from(sym).expect("alphabet fits u16")),
        ))
    }

    /// Human-readable `series:symbol` name of a label, e.g. `"C:1"`.
    #[must_use]
    pub fn display(&self, label: EventLabel) -> String {
        let series = self.series_name(label.series).unwrap_or("<unknown-series>");
        let symbol = self
            .alphabet(label.series)
            .and_then(|a| a.get(label.symbol.0 as usize))
            .map_or("<unknown-symbol>", String::as_str);
        format!("{series}:{symbol}")
    }

    /// Enumerates every possible event label.
    pub fn all_labels(&self) -> impl Iterator<Item = EventLabel> + '_ {
        self.alphabets.iter().enumerate().flat_map(|(sid, alpha)| {
            (0..alpha.len()).map(move |sym| {
                EventLabel::new(
                    SeriesId(u32::try_from(sid).expect("series fits u32")),
                    SymbolId(u16::try_from(sym).expect("symbol fits u16")),
                )
            })
        })
    }

    /// Rebuilds the name → id index (needed after deserialization because the
    /// index itself is not serialized).
    pub fn rebuild_index(&mut self) {
        self.series_index = self
            .series_names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), SeriesId(u32::try_from(i).expect("fits"))))
            .collect();
    }
}

impl fmt::Display for EventLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E({}, {})", self.series.0, self.symbol.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> EventRegistry {
        let mut reg = EventRegistry::new();
        reg.register_series("C", &["0".into(), "1".into()]);
        reg.register_series("D", &["0".into(), "1".into()]);
        reg.register_series("Temp", &["Low".into(), "Mid".into(), "High".into()]);
        reg
    }

    #[test]
    fn register_and_lookup() {
        let reg = sample_registry();
        assert_eq!(reg.num_series(), 3);
        assert_eq!(reg.num_events(), 7);
        assert_eq!(reg.series_id("C"), Some(SeriesId(0)));
        assert_eq!(reg.series_id("Temp"), Some(SeriesId(2)));
        assert_eq!(reg.series_id("Z"), None);
        assert_eq!(reg.series_name(SeriesId(1)), Some("D"));
        assert_eq!(reg.series_name(SeriesId(9)), None);
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut reg = sample_registry();
        let id = reg.register_series("C", &["x".into()]);
        assert_eq!(id, SeriesId(0));
        assert_eq!(reg.num_series(), 3);
        // Original alphabet is preserved.
        assert_eq!(reg.alphabet(SeriesId(0)).unwrap().len(), 2);
    }

    #[test]
    fn label_and_display_round_trip() {
        let reg = sample_registry();
        let label = reg.label("Temp", "High").unwrap();
        assert_eq!(label.series, SeriesId(2));
        assert_eq!(label.symbol, SymbolId(2));
        assert_eq!(reg.display(label), "Temp:High");
        assert!(reg.label("Temp", "VeryHigh").is_none());
        assert!(reg.label("Nope", "High").is_none());
    }

    #[test]
    fn display_of_unknown_label_is_graceful() {
        let reg = sample_registry();
        let bogus = EventLabel::new(SeriesId(42), SymbolId(0));
        assert!(reg.display(bogus).contains("unknown"));
    }

    #[test]
    fn all_labels_enumerates_everything() {
        let reg = sample_registry();
        let labels: Vec<_> = reg.all_labels().collect();
        assert_eq!(labels.len(), 7);
        assert!(labels.contains(&EventLabel::new(SeriesId(2), SymbolId(2))));
    }

    #[test]
    fn packed_is_unique_per_label() {
        let reg = sample_registry();
        let mut packed: Vec<_> = reg.all_labels().map(|l| l.packed()).collect();
        packed.sort_unstable();
        packed.dedup();
        assert_eq!(packed.len(), 7);
    }

    #[test]
    fn rebuild_index_restores_lookups() {
        let mut reg = sample_registry();
        reg.series_index.clear();
        assert_eq!(reg.series_id("C"), None);
        reg.rebuild_index();
        assert_eq!(reg.series_id("C"), Some(SeriesId(0)));
    }
}
