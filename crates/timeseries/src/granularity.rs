//! Time domain, time granularities and the granularity hierarchy
//! (Definitions 3.1–3.4 of the paper).
//!
//! A [`TimeDomain`] is an ordered set of time instants isomorphic to the
//! natural numbers, measured in a [`TimeUnit`]. A [`Granularity`] is a
//! complete, non-overlapping, equal partitioning of the domain into
//! *granules*; the position of a granule is its 1-based index. A
//! [`GranularityHierarchy`] stacks granularities from finest to coarsest,
//! where each coarser level is `m`-Finer-related to the level below it.

use crate::error::{Error, Result};
use std::fmt;

/// Position of a granule within a granularity (1-based, Definition 3.2).
pub type GranulePos = u64;

/// The unit in which time instants of a [`TimeDomain`] are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeUnit {
    /// One second per instant.
    Second,
    /// One minute per instant.
    Minute,
    /// One hour per instant.
    Hour,
    /// One day per instant.
    Day,
    /// One week per instant.
    Week,
    /// An application-defined unit expressed in seconds.
    Custom(u64),
}

impl TimeUnit {
    /// Number of seconds represented by one instant of this unit.
    #[must_use]
    pub fn seconds(&self) -> u64 {
        match self {
            TimeUnit::Second => 1,
            TimeUnit::Minute => 60,
            TimeUnit::Hour => 3_600,
            TimeUnit::Day => 86_400,
            TimeUnit::Week => 604_800,
            TimeUnit::Custom(s) => *s,
        }
    }
}

impl fmt::Display for TimeUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeUnit::Second => write!(f, "second"),
            TimeUnit::Minute => write!(f, "minute"),
            TimeUnit::Hour => write!(f, "hour"),
            TimeUnit::Day => write!(f, "day"),
            TimeUnit::Week => write!(f, "week"),
            TimeUnit::Custom(s) => write!(f, "{s}s-unit"),
        }
    }
}

/// A time domain: an ordered set of `len` time instants measured in `unit`
/// (Definition 3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimeDomain {
    unit: TimeUnit,
    len: u64,
}

impl TimeDomain {
    /// Creates a time domain of `len` instants measured in `unit`.
    #[must_use]
    pub fn new(unit: TimeUnit, len: u64) -> Self {
        Self { unit, len }
    }

    /// The time unit of the domain.
    #[must_use]
    pub fn unit(&self) -> TimeUnit {
        self.unit
    }

    /// Number of time instants in the domain.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the domain contains no instants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A time granularity: a complete and non-overlapping equal partitioning of a
/// time domain (Definition 3.2). `width` is the number of *finest-level time
/// instants* contained in one granule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Granularity {
    name: String,
    width: u64,
}

impl Granularity {
    /// Creates a granularity whose granules each span `width` time instants.
    ///
    /// # Errors
    /// Returns [`Error::InvalidGranularity`] if `width` is zero.
    pub fn new(name: impl Into<String>, width: u64) -> Result<Self> {
        if width == 0 {
            return Err(Error::InvalidGranularity {
                reason: "granule width must be at least one time instant".into(),
            });
        }
        Ok(Self {
            name: name.into(),
            width,
        })
    }

    /// The human-readable name, e.g. `"15-Minutes"`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width of one granule, in finest-level time instants.
    #[must_use]
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Whether `self` is *m-Finer* than `other` (Definition 3.3): every
    /// granule of `other` is the union of exactly `m` adjacent granules of
    /// `self`. Returns the factor `m` when the relation holds.
    #[must_use]
    pub fn finer_than(&self, other: &Granularity) -> Option<u64> {
        if self.width == 0 || other.width < self.width || !other.width.is_multiple_of(self.width) {
            return None;
        }
        Some(other.width / self.width)
    }

    /// Number of granules of this granularity covering a domain of `len`
    /// finest-level instants (the final, possibly partial, granule is
    /// dropped so that the partitioning stays *equal* per Definition 3.2).
    #[must_use]
    pub fn granule_count(&self, len: u64) -> u64 {
        len / self.width
    }

    /// The period between two granules of this granularity: the absolute
    /// difference of their positions (Definition 3.2).
    #[must_use]
    pub fn period(&self, a: GranulePos, b: GranulePos) -> u64 {
        a.abs_diff(b)
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (width {})", self.name, self.width)
    }
}

/// A stack of granularities ordered from the finest (level 0) to the coarsest
/// (Definition 3.4). Every level must be an exact multiple of the level below.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GranularityHierarchy {
    levels: Vec<Granularity>,
}

impl GranularityHierarchy {
    /// Builds a hierarchy from finest to coarsest.
    ///
    /// # Errors
    /// Returns [`Error::InvalidGranularity`] if the list is empty, not sorted
    /// from fine to coarse, or a level is not an exact multiple of the
    /// previous one.
    pub fn new(levels: Vec<Granularity>) -> Result<Self> {
        if levels.is_empty() {
            return Err(Error::InvalidGranularity {
                reason: "a hierarchy needs at least one granularity".into(),
            });
        }
        for pair in levels.windows(2) {
            if pair[0].finer_than(&pair[1]).is_none() {
                return Err(Error::InvalidGranularity {
                    reason: format!(
                        "granularity `{}` (width {}) is not m-Finer than `{}` (width {})",
                        pair[0].name(),
                        pair[0].width(),
                        pair[1].name(),
                        pair[1].width()
                    ),
                });
            }
        }
        Ok(Self { levels })
    }

    /// Convenience constructor for the common minute-based hierarchy used in
    /// the paper's running example: 5-Minutes ⊴3 15-Minutes ⊴2 30-Minutes ⊴2
    /// 1-Hour ⊴24 1-Day.
    #[must_use]
    pub fn minutes_example() -> Self {
        let levels = vec![
            Granularity::new("5-Minutes", 1).expect("non-zero width"),
            Granularity::new("15-Minutes", 3).expect("non-zero width"),
            Granularity::new("30-Minutes", 6).expect("non-zero width"),
            Granularity::new("1-Hour", 12).expect("non-zero width"),
            Granularity::new("1-Day", 288).expect("non-zero width"),
        ];
        Self::new(levels).expect("hardcoded hierarchy is valid")
    }

    /// The finest granularity (level 0).
    #[must_use]
    pub fn finest(&self) -> &Granularity {
        &self.levels[0]
    }

    /// The coarsest granularity (highest level).
    #[must_use]
    pub fn coarsest(&self) -> &Granularity {
        self.levels.last().expect("hierarchy is non-empty")
    }

    /// All levels, finest first.
    #[must_use]
    pub fn levels(&self) -> &[Granularity] {
        &self.levels
    }

    /// Looks a granularity up by name.
    #[must_use]
    pub fn by_name(&self, name: &str) -> Option<&Granularity> {
        self.levels.iter().find(|g| g.name() == name)
    }

    /// Returns the factor `m` such that the finest granularity is m-Finer
    /// than the named level.
    #[must_use]
    pub fn mapping_factor(&self, name: &str) -> Option<u64> {
        let target = self.by_name(name)?;
        self.finest().finer_than(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_unit_seconds() {
        assert_eq!(TimeUnit::Second.seconds(), 1);
        assert_eq!(TimeUnit::Minute.seconds(), 60);
        assert_eq!(TimeUnit::Hour.seconds(), 3_600);
        assert_eq!(TimeUnit::Day.seconds(), 86_400);
        assert_eq!(TimeUnit::Week.seconds(), 604_800);
        assert_eq!(TimeUnit::Custom(300).seconds(), 300);
    }

    #[test]
    fn time_domain_basics() {
        let d = TimeDomain::new(TimeUnit::Minute, 42);
        assert_eq!(d.unit(), TimeUnit::Minute);
        assert_eq!(d.len(), 42);
        assert!(!d.is_empty());
        assert!(TimeDomain::new(TimeUnit::Minute, 0).is_empty());
    }

    #[test]
    fn zero_width_granularity_is_rejected() {
        assert!(Granularity::new("bad", 0).is_err());
    }

    #[test]
    fn finer_than_returns_the_factor() {
        let g5 = Granularity::new("5-Minutes", 1).unwrap();
        let g15 = Granularity::new("15-Minutes", 3).unwrap();
        let g60 = Granularity::new("1-Hour", 12).unwrap();
        assert_eq!(g5.finer_than(&g15), Some(3));
        assert_eq!(g5.finer_than(&g60), Some(12));
        assert_eq!(g15.finer_than(&g60), Some(4));
        assert_eq!(g60.finer_than(&g15), None);
        // A granularity is trivially 1-Finer than itself.
        assert_eq!(g15.finer_than(&g15), Some(1));
    }

    #[test]
    fn finer_than_rejects_non_divisors() {
        let g2 = Granularity::new("2u", 2).unwrap();
        let g5 = Granularity::new("5u", 5).unwrap();
        assert_eq!(g2.finer_than(&g5), None);
    }

    #[test]
    fn granule_count_drops_partial_tail() {
        let g15 = Granularity::new("15-Minutes", 3).unwrap();
        assert_eq!(g15.granule_count(42), 14);
        assert_eq!(g15.granule_count(43), 14);
        assert_eq!(g15.granule_count(44), 14);
        assert_eq!(g15.granule_count(45), 15);
        assert_eq!(g15.granule_count(2), 0);
    }

    #[test]
    fn period_matches_paper_example() {
        // Period between Minute1 and Minute6 is 5 (Definition 3.2 example).
        let minute = Granularity::new("Minute", 1).unwrap();
        assert_eq!(minute.period(1, 6), 5);
        assert_eq!(minute.period(6, 1), 5);
        assert_eq!(minute.period(4, 4), 0);
    }

    #[test]
    fn hierarchy_validates_multiples() {
        let bad = GranularityHierarchy::new(vec![
            Granularity::new("2u", 2).unwrap(),
            Granularity::new("5u", 5).unwrap(),
        ]);
        assert!(bad.is_err());

        let good = GranularityHierarchy::new(vec![
            Granularity::new("1u", 1).unwrap(),
            Granularity::new("4u", 4).unwrap(),
            Granularity::new("8u", 8).unwrap(),
        ]);
        assert!(good.is_ok());
    }

    #[test]
    fn hierarchy_rejects_empty() {
        assert!(GranularityHierarchy::new(vec![]).is_err());
    }

    #[test]
    fn minutes_example_hierarchy() {
        let h = GranularityHierarchy::minutes_example();
        assert_eq!(h.finest().name(), "5-Minutes");
        assert_eq!(h.coarsest().name(), "1-Day");
        assert_eq!(h.mapping_factor("15-Minutes"), Some(3));
        assert_eq!(h.mapping_factor("1-Hour"), Some(12));
        assert_eq!(h.mapping_factor("1-Day"), Some(288));
        assert!(h.by_name("1-Month").is_none());
        assert_eq!(h.levels().len(), 5);
    }

    #[test]
    fn display_impls() {
        let g = Granularity::new("15-Minutes", 3).unwrap();
        assert!(format!("{g}").contains("15-Minutes"));
        assert!(format!("{}", TimeUnit::Minute).contains("minute"));
        assert!(format!("{}", TimeUnit::Custom(7)).contains('7'));
    }
}
