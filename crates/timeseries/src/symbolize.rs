//! Symbolic representation of time series (Definition 3.5, second half).
//!
//! A [`Symbolizer`] maps each raw value of a [`TimeSeries`] into a symbol of
//! a finite [`Alphabet`], producing a [`SymbolicSeries`]. The paper uses SAX
//! (its citation \[41\]) as the reference technique; this module additionally
//! provides the threshold, equal-width and quantile encoders that the paper's
//! application examples (ON/OFF appliances, Low/High temperature, …) rely on.

use crate::error::{Error, Result};
use crate::registry::SymbolId;
use crate::series::TimeSeries;
use crate::symbolic::SymbolicSeries;

/// The finite, ordered set of symbols a series may be encoded with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    labels: Vec<String>,
}

impl Alphabet {
    /// Creates an alphabet from symbol labels.
    ///
    /// # Errors
    /// [`Error::InvalidAlphabet`] when fewer than one label is given or
    /// labels are duplicated.
    pub fn new(labels: Vec<String>) -> Result<Self> {
        if labels.is_empty() {
            return Err(Error::InvalidAlphabet {
                reason: "alphabet must contain at least one symbol".into(),
            });
        }
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        if dedup.len() != labels.len() {
            return Err(Error::InvalidAlphabet {
                reason: "alphabet labels must be distinct".into(),
            });
        }
        Ok(Self { labels })
    }

    /// Convenience constructor from string slices.
    ///
    /// # Errors
    /// Same as [`Alphabet::new`].
    pub fn from_strs(labels: &[&str]) -> Result<Self> {
        Self::new(labels.iter().map(|s| (*s).to_string()).collect())
    }

    /// Number of symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the alphabet is empty (never true for a validated alphabet).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The symbol labels in order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Label of a symbol id.
    #[must_use]
    pub fn label(&self, id: SymbolId) -> Option<&str> {
        self.labels.get(id.0 as usize).map(String::as_str)
    }

    /// Id of a label.
    #[must_use]
    pub fn id(&self, label: &str) -> Option<SymbolId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| SymbolId(u16::try_from(i).expect("alphabet fits u16")))
    }
}

/// Maps raw values to symbols, turning a [`TimeSeries`] into a
/// [`SymbolicSeries`] with the same granularity.
pub trait Symbolizer {
    /// The alphabet this symbolizer encodes into.
    fn alphabet(&self) -> &Alphabet;

    /// Encodes a single value. Implementations may use series-level context
    /// captured at construction time (e.g. SAX breakpoints).
    fn encode_value(&self, value: f64) -> SymbolId;

    /// Encodes a whole series.
    ///
    /// # Errors
    /// [`Error::EmptySeries`] / [`Error::NonFiniteValue`] when the input is
    /// not a valid series.
    fn symbolize(&self, series: &TimeSeries) -> Result<SymbolicSeries> {
        series.validate()?;
        let symbols = series
            .values()
            .iter()
            .map(|v| self.encode_value(*v))
            .collect();
        Ok(SymbolicSeries::new(
            series.name().to_string(),
            symbols,
            self.alphabet().clone(),
        ))
    }
}

/// Threshold-based symbolizer: the value range is split by explicit
/// breakpoints into `breakpoints.len() + 1` buckets, one symbol per bucket.
///
/// This is the encoder used for the appliance ON/OFF example of Table II and
/// for the Low/Medium/High weather events in the evaluation datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdSymbolizer {
    breakpoints: Vec<f64>,
    alphabet: Alphabet,
}

impl ThresholdSymbolizer {
    /// Creates a symbolizer from ascending breakpoints and bucket labels
    /// (`labels.len()` must equal `breakpoints.len() + 1`).
    ///
    /// # Errors
    /// [`Error::InvalidAlphabet`] when the sizes disagree or breakpoints are
    /// not strictly ascending.
    pub fn new(breakpoints: Vec<f64>, labels: &[&str]) -> Result<Self> {
        if labels.len() != breakpoints.len() + 1 {
            return Err(Error::InvalidAlphabet {
                reason: format!(
                    "expected {} labels for {} breakpoints, got {}",
                    breakpoints.len() + 1,
                    breakpoints.len(),
                    labels.len()
                ),
            });
        }
        if breakpoints.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::InvalidAlphabet {
                reason: "breakpoints must be strictly ascending".into(),
            });
        }
        Ok(Self {
            breakpoints,
            alphabet: Alphabet::from_strs(labels)?,
        })
    }

    /// Binary ON/OFF style symbolizer: values `< threshold` map to `low`,
    /// values `>= threshold` map to `high`.
    #[must_use]
    pub fn binary(threshold: f64, low: &str, high: &str) -> Self {
        Self::new(vec![threshold], &[low, high]).expect("two labels, one breakpoint")
    }

    /// Three-level Low/Medium/High symbolizer.
    #[must_use]
    pub fn low_mid_high(low_cut: f64, high_cut: f64) -> Self {
        Self::new(vec![low_cut, high_cut], &["Low", "Medium", "High"])
            .expect("three labels, two ascending breakpoints")
    }
}

impl Symbolizer for ThresholdSymbolizer {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn encode_value(&self, value: f64) -> SymbolId {
        let bucket = self
            .breakpoints
            .iter()
            .position(|b| value < *b)
            .unwrap_or(self.breakpoints.len());
        SymbolId(u16::try_from(bucket).expect("bucket fits u16"))
    }
}

/// Equal-width binning over `[min, max]` of the series being encoded.
#[derive(Debug, Clone, PartialEq)]
pub struct EqualWidthSymbolizer {
    min: f64,
    max: f64,
    alphabet: Alphabet,
}

impl EqualWidthSymbolizer {
    /// Creates an equal-width encoder over `[min, max]` with the given bucket
    /// labels.
    ///
    /// # Errors
    /// [`Error::InvalidAlphabet`] when `min >= max` or there are no labels.
    pub fn new(min: f64, max: f64, labels: &[&str]) -> Result<Self> {
        if min >= max {
            return Err(Error::InvalidAlphabet {
                reason: "equal-width range must satisfy min < max".into(),
            });
        }
        Ok(Self {
            min,
            max,
            alphabet: Alphabet::from_strs(labels)?,
        })
    }

    /// Fits the range from a series and labels buckets `b0..b{n-1}`.
    ///
    /// # Errors
    /// Propagates validation errors; constant series are widened by ±0.5.
    pub fn fit(series: &TimeSeries, num_buckets: usize) -> Result<Self> {
        series.validate()?;
        let mut min = series.min().expect("validated series has a min");
        let mut max = series.max().expect("validated series has a max");
        if (max - min).abs() < f64::EPSILON {
            min -= 0.5;
            max += 0.5;
        }
        let labels: Vec<String> = (0..num_buckets).map(|i| format!("b{i}")).collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        Self::new(min, max, &refs)
    }
}

impl Symbolizer for EqualWidthSymbolizer {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn encode_value(&self, value: f64) -> SymbolId {
        let n = self.alphabet.len();
        let width = (self.max - self.min) / n as f64;
        let clamped = value.clamp(self.min, self.max);
        let mut bucket = ((clamped - self.min) / width).floor() as usize;
        if bucket >= n {
            bucket = n - 1;
        }
        SymbolId(u16::try_from(bucket).expect("bucket fits u16"))
    }
}

/// Quantile-based symbolizer: breakpoints are placed at empirical quantiles of
/// a reference series so that buckets are (approximately) equi-probable.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileSymbolizer {
    breakpoints: Vec<f64>,
    alphabet: Alphabet,
}

impl QuantileSymbolizer {
    /// Fits quantile breakpoints from `series` for `labels.len()` buckets.
    ///
    /// # Errors
    /// Propagates validation errors and invalid alphabets.
    pub fn fit(series: &TimeSeries, labels: &[&str]) -> Result<Self> {
        series.validate()?;
        let alphabet = Alphabet::from_strs(labels)?;
        let mut sorted: Vec<f64> = series.values().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("validated values are comparable"));
        let n = alphabet.len();
        let mut breakpoints = Vec::with_capacity(n.saturating_sub(1));
        for k in 1..n {
            let q = k as f64 / n as f64;
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            breakpoints.push(sorted[idx]);
        }
        // Collapse duplicate breakpoints (can happen with heavily repeated
        // values); encode_value handles the degenerate buckets gracefully.
        Ok(Self {
            breakpoints,
            alphabet,
        })
    }
}

impl Symbolizer for QuantileSymbolizer {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn encode_value(&self, value: f64) -> SymbolId {
        let bucket = self
            .breakpoints
            .iter()
            .position(|b| value < *b)
            .unwrap_or(self.breakpoints.len());
        SymbolId(u16::try_from(bucket).expect("bucket fits u16"))
    }
}

/// SAX (Symbolic Aggregate approXimation, Lin et al., the paper's
/// reference \[41\]) symbolizer.
///
/// Values are z-normalised with the mean / standard deviation captured at fit
/// time and bucketed with breakpoints taken from the standard normal
/// distribution so that each symbol is equi-probable under a Gaussian
/// assumption. The per-value (PAA window = 1) variant is used because the
/// sequence mapping of Definition 3.9 already performs temporal aggregation.
#[derive(Debug, Clone, PartialEq)]
pub struct SaxSymbolizer {
    mean: f64,
    std_dev: f64,
    breakpoints: Vec<f64>,
    alphabet: Alphabet,
}

impl SaxSymbolizer {
    /// Gaussian breakpoints for alphabet sizes 2..=10 (standard SAX table).
    fn gaussian_breakpoints(size: usize) -> Option<Vec<f64>> {
        let table: &[&[f64]] = &[
            &[0.0],
            &[-0.43, 0.43],
            &[-0.67, 0.0, 0.67],
            &[-0.84, -0.25, 0.25, 0.84],
            &[-0.97, -0.43, 0.0, 0.43, 0.97],
            &[-1.07, -0.57, -0.18, 0.18, 0.57, 1.07],
            &[-1.15, -0.67, -0.32, 0.0, 0.32, 0.67, 1.15],
            &[-1.22, -0.76, -0.43, -0.14, 0.14, 0.43, 0.76, 1.22],
            &[-1.28, -0.84, -0.52, -0.25, 0.0, 0.25, 0.52, 0.84, 1.28],
        ];
        if (2..=10).contains(&size) {
            Some(table[size - 2].to_vec())
        } else {
            None
        }
    }

    /// Fits a SAX encoder to `series` with an alphabet of `alphabet_size`
    /// symbols labelled `a`, `b`, `c`, …
    ///
    /// # Errors
    /// [`Error::InvalidAlphabet`] when the alphabet size is outside `2..=10`,
    /// plus series-validation errors.
    pub fn fit(series: &TimeSeries, alphabet_size: usize) -> Result<Self> {
        series.validate()?;
        let breakpoints =
            Self::gaussian_breakpoints(alphabet_size).ok_or_else(|| Error::InvalidAlphabet {
                reason: format!("SAX alphabet size must be in 2..=10, got {alphabet_size}"),
            })?;
        let labels: Vec<String> = (0..alphabet_size)
            .map(|i| {
                char::from_u32('a' as u32 + u32::try_from(i).expect("small alphabet"))
                    .expect("ascii letter")
                    .to_string()
            })
            .collect();
        let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
        let mean = series.mean().expect("validated series has a mean");
        let std_dev = series.std_dev().expect("validated series has a std dev");
        Ok(Self {
            mean,
            std_dev: if std_dev > f64::EPSILON { std_dev } else { 1.0 },
            breakpoints,
            alphabet: Alphabet::from_strs(&refs)?,
        })
    }
}

impl Symbolizer for SaxSymbolizer {
    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn encode_value(&self, value: f64) -> SymbolId {
        let z = (value - self.mean) / self.std_dev;
        let bucket = self
            .breakpoints
            .iter()
            .position(|b| z < *b)
            .unwrap_or(self.breakpoints.len());
        SymbolId(u16::try_from(bucket).expect("bucket fits u16"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_validation() {
        assert!(Alphabet::from_strs(&[]).is_err());
        assert!(Alphabet::from_strs(&["a", "a"]).is_err());
        let a = Alphabet::from_strs(&["Low", "High"]).unwrap();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.label(SymbolId(1)), Some("High"));
        assert_eq!(a.id("Low"), Some(SymbolId(0)));
        assert_eq!(a.id("Nope"), None);
        assert_eq!(a.labels().len(), 2);
    }

    #[test]
    fn threshold_binary_matches_paper_example() {
        // X = 1.82, 1.25, 0.46, 0.0 with ON/OFF encoding yields 1,1,1,0
        // using the paper's implied threshold semantics (non-zero usage = ON).
        let sym = ThresholdSymbolizer::binary(0.1, "0", "1");
        let ts = TimeSeries::new("X", vec![1.82, 1.25, 0.46, 0.0]);
        let s = sym.symbolize(&ts).unwrap();
        let labels: Vec<&str> = s
            .symbols()
            .iter()
            .map(|id| sym.alphabet().label(*id).unwrap())
            .collect();
        assert_eq!(labels, vec!["1", "1", "1", "0"]);
    }

    #[test]
    fn threshold_validation() {
        assert!(ThresholdSymbolizer::new(vec![1.0, 1.0], &["a", "b", "c"]).is_err());
        assert!(ThresholdSymbolizer::new(vec![1.0], &["a", "b", "c"]).is_err());
        assert!(ThresholdSymbolizer::new(vec![1.0, 2.0], &["a", "b", "c"]).is_ok());
    }

    #[test]
    fn low_mid_high_buckets() {
        let sym = ThresholdSymbolizer::low_mid_high(10.0, 25.0);
        assert_eq!(sym.alphabet().label(sym.encode_value(5.0)), Some("Low"));
        assert_eq!(sym.alphabet().label(sym.encode_value(15.0)), Some("Medium"));
        assert_eq!(sym.alphabet().label(sym.encode_value(30.0)), Some("High"));
        // Boundary values land in the upper bucket (value < breakpoint test).
        assert_eq!(sym.alphabet().label(sym.encode_value(10.0)), Some("Medium"));
        assert_eq!(sym.alphabet().label(sym.encode_value(25.0)), Some("High"));
    }

    #[test]
    fn equal_width_covers_range() {
        let ts = TimeSeries::new("E", vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]);
        let sym = EqualWidthSymbolizer::fit(&ts, 5).unwrap();
        assert_eq!(sym.alphabet().len(), 5);
        assert_eq!(sym.encode_value(0.0), SymbolId(0));
        assert_eq!(sym.encode_value(9.0), SymbolId(4));
        assert_eq!(sym.encode_value(100.0), SymbolId(4));
        assert_eq!(sym.encode_value(-5.0), SymbolId(0));
    }

    #[test]
    fn equal_width_constant_series_is_handled() {
        let ts = TimeSeries::new("K", vec![5.0; 8]);
        let sym = EqualWidthSymbolizer::fit(&ts, 3).unwrap();
        let s = sym.symbolize(&ts).unwrap();
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn equal_width_rejects_bad_range() {
        assert!(EqualWidthSymbolizer::new(3.0, 3.0, &["a"]).is_err());
        assert!(EqualWidthSymbolizer::new(5.0, 3.0, &["a"]).is_err());
    }

    #[test]
    fn quantile_buckets_are_balanced() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let ts = TimeSeries::new("Q", values);
        let sym = QuantileSymbolizer::fit(&ts, &["Low", "Medium", "High", "VeryHigh"]).unwrap();
        let s = sym.symbolize(&ts).unwrap();
        let mut counts = [0usize; 4];
        for id in s.symbols() {
            counts[id.0 as usize] += 1;
        }
        // Each quartile bucket should hold roughly 25 of the 100 values.
        for c in counts {
            assert!((20..=30).contains(&c), "unbalanced bucket: {counts:?}");
        }
    }

    #[test]
    fn sax_alphabet_size_bounds() {
        let ts = TimeSeries::new("S", vec![0.0, 1.0, 2.0, 3.0]);
        assert!(SaxSymbolizer::fit(&ts, 1).is_err());
        assert!(SaxSymbolizer::fit(&ts, 11).is_err());
        assert!(SaxSymbolizer::fit(&ts, 2).is_ok());
        assert!(SaxSymbolizer::fit(&ts, 10).is_ok());
    }

    #[test]
    fn sax_is_roughly_equiprobable_on_gaussian_like_data() {
        // A symmetric ramp has roughly uniform quantiles; SAX with alphabet 2
        // splits it at the mean.
        let values: Vec<f64> = (0..1000).map(|i| f64::from(i) / 100.0).collect();
        let ts = TimeSeries::new("G", values);
        let sym = SaxSymbolizer::fit(&ts, 2).unwrap();
        let s = sym.symbolize(&ts).unwrap();
        let ones = s.symbols().iter().filter(|id| id.0 == 1).count();
        assert!((400..=600).contains(&ones));
    }

    #[test]
    fn sax_constant_series_does_not_panic() {
        let ts = TimeSeries::new("K", vec![2.0; 16]);
        let sym = SaxSymbolizer::fit(&ts, 4).unwrap();
        let s = sym.symbolize(&ts).unwrap();
        assert_eq!(s.len(), 16);
    }

    #[test]
    fn symbolize_rejects_invalid_series() {
        let sym = ThresholdSymbolizer::binary(0.5, "0", "1");
        assert!(sym.symbolize(&TimeSeries::new("E", vec![])).is_err());
        assert!(sym
            .symbolize(&TimeSeries::new("N", vec![1.0, f64::NAN]))
            .is_err());
    }
}
