//! Symbolic time series and the symbolic database `D_SYB`
//! (Definitions 3.5–3.6).

use crate::error::{Error, Result};
use crate::registry::{EventRegistry, SeriesId, SymbolId};
use crate::sequence::SequenceDatabase;
use crate::series::TimeSeries;
use crate::symbolize::{Alphabet, Symbolizer};

/// A symbolic time series: the per-instant symbol encoding of one raw series.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicSeries {
    name: String,
    symbols: Vec<SymbolId>,
    alphabet: Alphabet,
}

impl SymbolicSeries {
    /// Creates a symbolic series from already-encoded symbols.
    #[must_use]
    pub fn new(name: String, symbols: Vec<SymbolId>, alphabet: Alphabet) -> Self {
        Self {
            name,
            symbols,
            alphabet,
        }
    }

    /// Builds a symbolic series directly from labels (convenient in tests and
    /// when loading pre-symbolized data such as Table II of the paper).
    ///
    /// # Errors
    /// [`Error::InvalidAlphabet`] when a label is not part of the alphabet.
    pub fn from_labels(name: &str, labels: &[&str], alphabet: Alphabet) -> Result<Self> {
        let mut symbols = Vec::with_capacity(labels.len());
        for l in labels {
            let id = alphabet.id(l).ok_or_else(|| Error::InvalidAlphabet {
                reason: format!("label `{l}` is not in the alphabet of series `{name}`"),
            })?;
            symbols.push(id);
        }
        Ok(Self::new(name.to_string(), symbols, alphabet))
    }

    /// Name of the underlying series.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The encoded symbols in chronological order.
    #[must_use]
    pub fn symbols(&self) -> &[SymbolId] {
        &self.symbols
    }

    /// The alphabet used for the encoding.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of instants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Empirical probability of each symbol (index = symbol id). Used by the
    /// mutual-information machinery of A-STPM.
    #[must_use]
    pub fn symbol_probabilities(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.alphabet.len()];
        for s in &self.symbols {
            counts[s.0 as usize] += 1;
        }
        let n = self.symbols.len().max(1) as f64;
        counts.iter().map(|c| *c as f64 / n).collect()
    }

    /// Appends encoded symbols at the tail of the series (streaming
    /// arrivals).
    pub fn append_symbols(&mut self, symbols: &[SymbolId]) {
        self.symbols.extend_from_slice(symbols);
    }

    /// Returns a copy truncated to the first `len` instants.
    #[must_use]
    pub fn truncated(&self, len: usize) -> Self {
        Self {
            name: self.name.clone(),
            symbols: self.symbols.iter().copied().take(len).collect(),
            alphabet: self.alphabet.clone(),
        }
    }
}

/// The symbolic database `D_SYB`: the symbolic representations of a set of
/// time series, all sampled at the same (finest) granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicDatabase {
    series: Vec<SymbolicSeries>,
    registry: EventRegistry,
    len: usize,
}

impl SymbolicDatabase {
    /// Builds `D_SYB` from already-symbolized series. All series must have the
    /// same length (they share the time domain).
    ///
    /// # Errors
    /// [`Error::EmptySeries`] / [`Error::LengthMismatch`].
    pub fn new(series: Vec<SymbolicSeries>) -> Result<Self> {
        let Some(first) = series.first() else {
            return Err(Error::EmptySeries {
                name: "<database>".into(),
            });
        };
        let len = first.len();
        if len == 0 {
            return Err(Error::EmptySeries {
                name: first.name().to_string(),
            });
        }
        let mut registry = EventRegistry::new();
        for s in &series {
            if s.len() != len {
                return Err(Error::LengthMismatch {
                    name: s.name().to_string(),
                    expected: len,
                    actual: s.len(),
                });
            }
            registry.register_series(s.name(), s.alphabet().labels());
        }
        Ok(Self {
            series,
            registry,
            len,
        })
    }

    /// Builds `D_SYB` by symbolizing raw series with a shared symbolizer.
    ///
    /// # Errors
    /// Propagates symbolization and validation errors.
    pub fn from_series<S: Symbolizer>(series: &[TimeSeries], symbolizer: &S) -> Result<Self> {
        let symbolic: Result<Vec<_>> = series.iter().map(|ts| symbolizer.symbolize(ts)).collect();
        Self::new(symbolic?)
    }

    /// Builds `D_SYB` from raw series, each with its own symbolizer. This is
    /// how heterogeneous datasets (appliance ON/OFF next to Low/High weather)
    /// are assembled.
    ///
    /// # Errors
    /// Propagates symbolization and validation errors; the two slices must
    /// have equal length.
    pub fn from_series_with(
        series: &[TimeSeries],
        symbolizers: &[&dyn Symbolizer],
    ) -> Result<Self> {
        if series.len() != symbolizers.len() {
            return Err(Error::LengthMismatch {
                name: "<symbolizers>".into(),
                expected: series.len(),
                actual: symbolizers.len(),
            });
        }
        let symbolic: Result<Vec<_>> = series
            .iter()
            .zip(symbolizers)
            .map(|(ts, sym)| sym.symbolize(ts))
            .collect();
        Self::new(symbolic?)
    }

    /// Number of series in the database.
    #[must_use]
    pub fn num_series(&self) -> usize {
        self.series.len()
    }

    /// Number of time instants (shared by all series).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the database holds no instants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The symbolic series.
    #[must_use]
    pub fn series(&self) -> &[SymbolicSeries] {
        &self.series
    }

    /// One series by id.
    #[must_use]
    pub fn series_by_id(&self, id: SeriesId) -> Option<&SymbolicSeries> {
        self.series.get(id.0 as usize)
    }

    /// One series by name.
    #[must_use]
    pub fn series_by_name(&self, name: &str) -> Option<&SymbolicSeries> {
        self.registry
            .series_id(name)
            .and_then(|id| self.series_by_id(id))
    }

    /// The registry mapping events to readable names.
    #[must_use]
    pub fn registry(&self) -> &EventRegistry {
        &self.registry
    }

    /// Keeps only the selected series (by id), preserving their original ids
    /// in a fresh database. Used by A-STPM to mine only correlated series.
    ///
    /// # Errors
    /// [`Error::UnknownSeries`] when an id is out of range,
    /// [`Error::EmptySeries`] when the selection is empty.
    pub fn project(&self, keep: &[SeriesId]) -> Result<Self> {
        let mut selected = Vec::with_capacity(keep.len());
        for id in keep {
            let s = self.series_by_id(*id).ok_or_else(|| Error::UnknownSeries {
                name: format!("series id {}", id.0),
            })?;
            selected.push(s.clone());
        }
        Self::new(selected)
    }

    /// Converts `D_SYB` into a temporal sequence database `D_SEQ` by applying
    /// the sequence mapping `g : X_S →_m H` with factor `m` (Definition 3.9).
    ///
    /// # Errors
    /// [`Error::InvalidGranularity`] when `m == 0` or `m` exceeds the series
    /// length.
    pub fn to_sequence_database(&self, m: u64) -> Result<SequenceDatabase> {
        SequenceDatabase::from_symbolic(self, m)
    }

    /// Truncates every series to the first `len` instants (used by the
    /// scalability experiments that vary the number of sequences).
    ///
    /// # Errors
    /// [`Error::EmptySeries`] when `len == 0`.
    pub fn truncated(&self, len: usize) -> Result<Self> {
        Self::new(self.series.iter().map(|s| s.truncated(len)).collect())
    }

    /// Appends a batch of newly-arrived instants: `batch` must hold the same
    /// series (same names, same order, same alphabets) over the new time
    /// window. Only the new samples are touched — the existing encoding is
    /// never revisited, which is what keeps streaming symbolization
    /// prefix-stable for pointwise symbolizers.
    ///
    /// # Errors
    /// [`Error::AppendMismatch`] when the batch's series set or alphabets
    /// differ from this database's.
    pub fn append_batch(&mut self, batch: &SymbolicDatabase) -> Result<()> {
        if batch.num_series() != self.num_series() {
            return Err(Error::AppendMismatch {
                reason: format!(
                    "batch has {} series, database has {}",
                    batch.num_series(),
                    self.num_series()
                ),
            });
        }
        for (mine, theirs) in self.series.iter().zip(batch.series()) {
            if mine.name() != theirs.name() {
                return Err(Error::AppendMismatch {
                    reason: format!(
                        "series order diverged: `{}` vs `{}`",
                        mine.name(),
                        theirs.name()
                    ),
                });
            }
            if mine.alphabet() != theirs.alphabet() {
                return Err(Error::AppendMismatch {
                    reason: format!("series `{}` changed its alphabet", mine.name()),
                });
            }
        }
        for (mine, theirs) in self.series.iter_mut().zip(batch.series()) {
            mine.append_symbols(theirs.symbols());
        }
        self.len += batch.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbolize::Alphabet;

    fn binary_alphabet() -> Alphabet {
        Alphabet::from_strs(&["0", "1"]).unwrap()
    }

    fn series(name: &str, bits: &[u8]) -> SymbolicSeries {
        SymbolicSeries::new(
            name.to_string(),
            bits.iter().map(|b| SymbolId(u16::from(*b))).collect(),
            binary_alphabet(),
        )
    }

    #[test]
    fn from_labels_round_trip() {
        let s = SymbolicSeries::from_labels("C", &["1", "1", "0"], binary_alphabet()).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.symbols()[0], SymbolId(1));
        assert_eq!(s.symbols()[2], SymbolId(0));
        assert!(SymbolicSeries::from_labels("C", &["2"], binary_alphabet()).is_err());
    }

    #[test]
    fn symbol_probabilities_sum_to_one() {
        let s = series("C", &[1, 1, 0, 1]);
        let p = s.symbol_probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn database_validates_lengths() {
        let ok = SymbolicDatabase::new(vec![series("C", &[1, 0, 1]), series("D", &[0, 0, 1])]);
        assert!(ok.is_ok());
        let bad = SymbolicDatabase::new(vec![series("C", &[1, 0, 1]), series("D", &[0, 0])]);
        assert!(matches!(bad, Err(Error::LengthMismatch { .. })));
        assert!(SymbolicDatabase::new(vec![]).is_err());
        assert!(SymbolicDatabase::new(vec![series("C", &[])]).is_err());
    }

    #[test]
    fn database_lookup_by_name_and_id() {
        let db =
            SymbolicDatabase::new(vec![series("C", &[1, 0, 1]), series("D", &[0, 0, 1])]).unwrap();
        assert_eq!(db.num_series(), 2);
        assert_eq!(db.len(), 3);
        assert!(!db.is_empty());
        assert_eq!(db.series_by_name("D").unwrap().name(), "D");
        assert!(db.series_by_name("Z").is_none());
        assert_eq!(db.series_by_id(SeriesId(0)).unwrap().name(), "C");
        assert!(db.series_by_id(SeriesId(7)).is_none());
        assert_eq!(db.registry().num_events(), 4);
    }

    #[test]
    fn projection_keeps_selected_series() {
        let db = SymbolicDatabase::new(vec![
            series("C", &[1, 0, 1]),
            series("D", &[0, 0, 1]),
            series("F", &[1, 1, 1]),
        ])
        .unwrap();
        let projected = db.project(&[SeriesId(0), SeriesId(2)]).unwrap();
        assert_eq!(projected.num_series(), 2);
        assert_eq!(projected.series()[1].name(), "F");
        assert!(db.project(&[SeriesId(9)]).is_err());
        assert!(db.project(&[]).is_err());
    }

    #[test]
    fn truncation_shortens_all_series() {
        let db =
            SymbolicDatabase::new(vec![series("C", &[1, 0, 1, 1]), series("D", &[0, 0, 1, 0])])
                .unwrap();
        let t = db.truncated(2).unwrap();
        assert_eq!(t.len(), 2);
        assert!(db.truncated(0).is_err());
    }

    #[test]
    fn append_batch_extends_every_series() {
        let mut db =
            SymbolicDatabase::new(vec![series("C", &[1, 0, 1]), series("D", &[0, 0, 1])]).unwrap();
        let batch =
            SymbolicDatabase::new(vec![series("C", &[0, 1]), series("D", &[1, 1])]).unwrap();
        db.append_batch(&batch).unwrap();
        assert_eq!(db.len(), 5);
        assert_eq!(db.series()[0].symbols().len(), 5);
        assert_eq!(db.series()[0].symbols()[3], SymbolId(0));
        assert_eq!(db.series()[1].symbols()[4], SymbolId(1));
        // The appended database equals the one built in one shot.
        let full = SymbolicDatabase::new(vec![
            series("C", &[1, 0, 1, 0, 1]),
            series("D", &[0, 0, 1, 1, 1]),
        ])
        .unwrap();
        assert_eq!(db, full);
    }

    #[test]
    fn append_batch_rejects_mismatched_batches() {
        let mut db =
            SymbolicDatabase::new(vec![series("C", &[1, 0, 1]), series("D", &[0, 0, 1])]).unwrap();
        // Wrong series count.
        let wrong_count = SymbolicDatabase::new(vec![series("C", &[1])]).unwrap();
        assert!(matches!(
            db.append_batch(&wrong_count),
            Err(Error::AppendMismatch { .. })
        ));
        // Wrong series order/name.
        let wrong_order =
            SymbolicDatabase::new(vec![series("D", &[1]), series("C", &[1])]).unwrap();
        assert!(matches!(
            db.append_batch(&wrong_order),
            Err(Error::AppendMismatch { .. })
        ));
        // Changed alphabet.
        let fat_alphabet = Alphabet::from_strs(&["0", "1", "2"]).unwrap();
        let changed = SymbolicDatabase::new(vec![
            SymbolicSeries::new("C".into(), vec![SymbolId(2)], fat_alphabet.clone()),
            SymbolicSeries::new("D".into(), vec![SymbolId(0)], fat_alphabet),
        ])
        .unwrap();
        assert!(matches!(
            db.append_batch(&changed),
            Err(Error::AppendMismatch { .. })
        ));
        // The failed appends left the database untouched.
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn from_series_applies_symbolizer() {
        use crate::symbolize::ThresholdSymbolizer;
        let raw = vec![
            TimeSeries::new("C", vec![1.82, 1.25, 0.0]),
            TimeSeries::new("D", vec![0.0, 2.0, 0.0]),
        ];
        let sym = ThresholdSymbolizer::binary(0.5, "0", "1");
        let db = SymbolicDatabase::from_series(&raw, &sym).unwrap();
        assert_eq!(db.num_series(), 2);
        assert_eq!(db.series()[0].symbols()[0], SymbolId(1));
        assert_eq!(db.series()[1].symbols()[0], SymbolId(0));
    }

    #[test]
    fn from_series_with_mismatched_symbolizers_fails() {
        use crate::symbolize::ThresholdSymbolizer;
        let raw = vec![TimeSeries::new("C", vec![1.0])];
        let sym = ThresholdSymbolizer::binary(0.5, "0", "1");
        let result = SymbolicDatabase::from_series_with(&raw, &[&sym, &sym]);
        assert!(result.is_err());
    }
}
