//! Incremental (streaming) seasonal temporal pattern mining: absorb appended
//! granules in time proportional to the delta, not the history.
//!
//! # Why appends are local
//!
//! Every structure the batch miner derives is *granule-local*: an event
//! instance lives inside one granule, a pattern occurrence binds instances of
//! one granule, and a relation verdict compares two intervals of one granule.
//! Appending granules therefore only ever *appends* to the derived state —
//! support sets grow at the tail, never in the middle — and the entire
//! history-dependent part of the algorithm (candidate gating, season
//! extraction, frequency checks) is a pure function of the accumulated
//! supports. [`StreamingMiner`] exploits this split:
//!
//! * **Absorb** ([`StreamingMiner::append_batch`]): each new granule is mined
//!   in isolation — level-2 instance pairs are classified into a per-granule
//!   verdict block table, k ≥ 3 patterns are grown from the granule's own
//!   (k−1)-bindings via verdict byte loads — and the resulting per-granule
//!   pattern occurrences are appended to persistent interned pattern stores.
//!   Bindings and verdicts are *dropped* once the granule is processed:
//!   unlike a batch run, the persistent state holds no instance pool at all.
//! * **Emit** ([`StreamingMiner::checkpoint`]): the frequency gate and season
//!   materialisation run over the accumulated supports. Each event and
//!   pattern carries a [`SeasonTracker`] — the season walker's state made
//!   persistent — so the `minSeason` check is O(1) per candidate and seasons
//!   are materialised only for survivors
//!   ([`Seasons`](crate::season::Seasons) spans are *extended at the tail*,
//!   never rebuilt).
//!
//! # Exactness
//!
//! The absorbed state is the *unpruned* candidate universe (the batch miner's
//! `NoPrune` mode); since the batch prunings are exact (they shrink the
//! search space, never the output), filtering the accumulated supports at a
//! checkpoint yields **exactly** the frequent seasonal events and patterns a
//! batch re-mine of the same prefix reports — including fractional
//! thresholds, which are re-resolved against the grown granule count on every
//! append (a resolution change replays the affected trackers; the stored
//! supports make that exact too). The only requirement is that granules
//! arrive in order and are immutable once absorbed.
//!
//! # Determinism
//!
//! Granules are independent, so an appended batch can be mined on
//! `threads > 1` workers; the per-granule harvests are merged back in granule
//! order, which makes the parallel state — and therefore every later
//! checkpoint — byte-identical to the sequential one.
//!
//! # Durability
//!
//! The persistent state is a closed set of plain values — supports, interned
//! pattern keys, tracker loop states — with no instance pool, binding pool or
//! verdict table, so it serializes compactly. The [`snapshot`](crate::snapshot)
//! subsystem persists it behind [`StreamingMiner::snapshot`] /
//! [`StreamingMiner::restore`]; a restored miner is indistinguishable from
//! one that never left memory (the equivalence is property-tested at every
//! checkpoint), and [`StreamingMiner::pending_granules`] /
//! [`StreamingMiner::checkpoint_meta`] expose how much un-snapshotted state a
//! crash would lose.

use crate::config::{ResolvedConfig, StpmConfig};
use crate::engine::{phases, EngineReport, PhaseTiming, PruningSummary};
use crate::error::{Error, Result};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::miner::balanced_ranges;
use crate::pattern::{decode_pattern_key, encode_label, encode_triple, RelationTriple};
use crate::relation::{
    chronological_order, classify_relation, decode_verdict, encode_verdict, VERDICT_NONE,
};
use crate::report::{LevelStats, MinedEvent, MinedPattern, MiningReport, MiningStats};
use crate::season::SeasonTracker;
use crate::support::SupportSet;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};
use stpm_timeseries::{
    EventInstance, EventLabel, EventRegistry, GranulePos, SequenceDatabase, TemporalSequence,
};

/// Display name the streaming engine reports.
pub const STREAMING_ENGINE_NAME: &str = "S-STPM";

/// Per-event persistent state: the accumulated support set plus the
/// incremental season-walker state over it. Crate-visible so the
/// [`snapshot`](crate::snapshot) subsystem can serialize it.
#[derive(Debug, Clone, Default)]
pub(crate) struct StreamEventEntry {
    pub(crate) support: SupportSet,
    pub(crate) tracker: SeasonTracker,
}

/// Per-pattern persistent state. The pattern itself is stored exactly once
/// (decoded from its interning key when the key is first seen); bindings are
/// *not* retained (they are only needed while the granule that produced them
/// is being extended).
#[derive(Debug, Clone)]
pub(crate) struct StreamPatternEntry {
    pub(crate) pattern: crate::pattern::TemporalPattern,
    pub(crate) support: SupportSet,
    pub(crate) tracker: SeasonTracker,
}

/// One persistent pattern level (k ≥ 2): an interned pattern arena plus the
/// distinct event groups seen, for reporting parity with the batch stats.
#[derive(Debug, Clone)]
pub(crate) struct StreamLevel {
    pub(crate) k: usize,
    pub(crate) index: FxHashMap<Box<[u64]>, u32>,
    pub(crate) entries: Vec<StreamPatternEntry>,
    /// Distinct event groups (packed label prefixes) with ≥ 1 pattern.
    pub(crate) groups: FxHashSet<Box<[u64]>>,
}

impl StreamLevel {
    pub(crate) fn new(k: usize) -> Self {
        Self {
            k,
            index: FxHashMap::default(),
            entries: Vec::new(),
            groups: FxHashSet::default(),
        }
    }

    /// Approximate heap footprint in bytes (element counts only, so parallel
    /// and sequential states report identical numbers).
    fn footprint_bytes(&self) -> usize {
        let entry_bytes: usize = self
            .entries
            .iter()
            .map(|e| {
                e.support.len() * std::mem::size_of::<GranulePos>()
                    + std::mem::size_of_val(e.pattern.events())
                    + e.pattern.triples().len() * 4
                    + e.tracker.footprint_bytes()
            })
            .sum();
        let index_bytes: usize = self
            .index
            .keys() // lint:allow(determinism): commutative sum, order-insensitive
            .chain(self.groups.iter()) // lint:allow(determinism): same commutative sum
            .map(|key| key.len() * std::mem::size_of::<u64>())
            .sum();
        entry_bytes + index_bytes
    }
}

/// Everything one granule contributes to the persistent state: the distinct
/// event labels occurring in it, and — per level, in discovery order — the
/// interning keys of the distinct patterns occurring in it (a key fully
/// encodes its pattern; the persistent store decodes it only when the key is
/// globally new). Mining a granule is a pure function of the granule's
/// sequence and the relation parameters, which is what makes parallel
/// appends deterministic.
#[derive(Debug)]
struct GranuleHarvest {
    granule: GranulePos,
    labels: Vec<EventLabel>,
    /// `levels[i]` holds the interning keys of the granule's distinct
    /// (k = i + 2)-patterns, in discovery order.
    levels: Vec<Vec<Vec<u64>>>,
}

/// One granule-local pattern under construction: its interning key (which
/// fully encodes the pattern) plus the state the next level consumes — the
/// positions of its events in the granule's label list and its instance
/// bindings.
struct LocalPattern {
    key: Vec<u64>,
    /// Position of each pattern event in the granule's sorted label list.
    events_pos: Vec<u32>,
    /// Flat instance-index bindings, `k` entries per binding (indices into
    /// the granule's per-label instance lists, aligned with `events_pos`).
    bindings: Vec<u32>,
}

/// One granule-local level: interned patterns in discovery order. Keys are
/// looked up by slice (no allocation on a hit) and owned only on first
/// sight — the same interning discipline as the batch `HLH_k`.
#[derive(Default)]
struct LocalLevel {
    index: FxHashMap<Box<[u64]>, u32>,
    entries: Vec<LocalPattern>,
}

impl LocalLevel {
    /// Interns a pattern occurrence's key, creating the entry on first
    /// sight, and returns the entry index.
    fn intern(&mut self, key: &[u64], make_events_pos: impl FnOnce() -> Vec<u32>) -> usize {
        if let Some(&idx) = self.index.get(key) {
            return idx as usize;
        }
        let idx = self.entries.len();
        self.index
            .insert(key.into(), u32::try_from(idx).expect("patterns fit u32"));
        self.entries.push(LocalPattern {
            key: key.to_vec(),
            events_pos: make_events_pos(),
            bindings: Vec::new(),
        });
        idx
    }
}

/// Mines one granule in isolation, reproducing exactly the occurrences the
/// batch miner would derive for it (with pruning disabled): level-2 instance
/// pairs are classified once into per-pair verdict blocks, and k ≥ 3 patterns
/// are grown from the granule's own (k−1)-bindings via verdict byte loads —
/// the streaming counterpart of the batch verdict-table reuse. A
/// granule-local relation map (the analogue of the batch adjacency matrix)
/// skips (pattern, extension-event) combinations no instance pair of this
/// granule can satisfy, before any binding is enumerated.
fn mine_granule(seq: &TemporalSequence, config: &ResolvedConfig) -> GranuleHarvest {
    // Group the granule's instances per label, labels sorted canonically.
    let mut per_label: BTreeMap<EventLabel, Vec<EventInstance>> = BTreeMap::new();
    for instance in seq.instances() {
        per_label.entry(instance.label).or_default().push(*instance);
    }
    let labels: Vec<EventLabel> = per_label.keys().copied().collect();
    let insts: Vec<Vec<EventInstance>> = per_label.into_values().collect();
    let n = labels.len();
    let max_len = config.max_pattern_len;
    let mut harvest_levels: Vec<Vec<Vec<u64>>> = Vec::new();
    if max_len < 2 || n < 2 {
        return GranuleHarvest {
            granule: seq.granule(),
            labels,
            levels: harvest_levels,
        };
    }

    // ---- level 2: classify every instance cross-product cell ----
    // blocks[i * n + j] (i < j) holds the row-major verdict bytes of the
    // (labels[i], labels[j]) cross product, and related[i * n + j] whether
    // any cell classified; only kept when a k >= 3 level will read them.
    let record_verdicts = max_len >= 3;
    let mut blocks: Vec<Vec<u8>> = if record_verdicts {
        (0..n * n).map(|_| Vec::new()).collect()
    } else {
        Vec::new()
    };
    let mut related = vec![false; if record_verdicts { n * n } else { 0 }];
    let mut locals: Vec<LocalLevel> = (2..=max_len).map(|_| LocalLevel::default()).collect();
    for i in 0..n {
        for j in i + 1..n {
            let (rows, cols) = (&insts[i], &insts[j]);
            let mut block = Vec::new();
            if record_verdicts {
                block.reserve(rows.len() * cols.len());
            }
            for (ra, a) in rows.iter().enumerate() {
                for (rb, b) in cols.iter().enumerate() {
                    let in_order = chronological_order(&a.interval, &b.interval, 0u8, 1u8);
                    let (first, second) = if in_order { (a, b) } else { (b, a) };
                    let verdict = classify_relation(
                        &first.interval,
                        &second.interval,
                        config.epsilon,
                        config.min_overlap,
                    );
                    if record_verdicts {
                        block.push(
                            verdict.map_or(VERDICT_NONE, |kind| encode_verdict(kind, !in_order)),
                        );
                    }
                    let Some(kind) = verdict else {
                        continue;
                    };
                    let triple = if in_order {
                        RelationTriple::new(kind, 0, 1)
                    } else {
                        RelationTriple::new(kind, 1, 0)
                    };
                    let key = [
                        encode_label(labels[i]),
                        encode_label(labels[j]),
                        encode_triple(triple),
                    ];
                    let (li, lj) = (i as u32, j as u32);
                    let idx = locals[0].intern(&key, || vec![li, lj]);
                    locals[0].entries[idx]
                        .bindings
                        .extend([ra as u32, rb as u32]);
                }
            }
            if record_verdicts {
                // The granule-local adjacency bit is one wide byte scan of
                // the finished block (dispatched kernel), replacing the
                // per-cell flag accumulation.
                related[i * n + j] = crate::simd::kernels().verdict_any(&block);
                blocks[i * n + j] = block;
            }
        }
    }

    // ---- levels k >= 3: extend the granule's own (k-1)-bindings ----
    // Per-(entry, E_k) scratch: the interning key is built once as a shared
    // prefix (events + E_k + base triples) and only the new-triple words
    // vary per occurrence — the batch miner's layout exactly.
    let mut key_scratch: Vec<u64> = Vec::new();
    for k in 3..=max_len {
        let (done, todo) = locals.split_at_mut(k - 2);
        let prev = &done[k - 3];
        let cur = &mut todo[0];
        let new_index = u8::try_from(k - 1).expect("pattern length fits u8");
        for entry in &prev.entries {
            let last_pos = *entry.events_pos.last().expect("patterns are non-empty") as usize;
            'extension: for j in last_pos + 1..n {
                // Granule-local transitivity pruning: every member must
                // relate to E_k through *some* instance pair of this granule,
                // or no binding can extend.
                for &pos in &entry.events_pos {
                    if !related[pos as usize * n + j] {
                        continue 'extension;
                    }
                }
                let ek = labels[j];
                let ek_insts = &insts[j];
                let cols = ek_insts.len();
                // Shared key prefix for every occurrence of this (entry, E_k)
                // combination.
                key_scratch.clear();
                key_scratch.extend_from_slice(&entry.key[..k - 1]);
                key_scratch.push(encode_label(ek));
                key_scratch.extend_from_slice(&entry.key[k - 1..]);
                let base_len = key_scratch.len();
                for binding in entry.bindings.chunks_exact(k - 1) {
                    'instances: for col in 0..cols {
                        key_scratch.truncate(base_len);
                        for (idx, (&pos, &row)) in
                            entry.events_pos.iter().zip(binding.iter()).enumerate()
                        {
                            let block = &blocks[pos as usize * n + j];
                            let verdict = block[row as usize * cols + col];
                            match decode_verdict(verdict) {
                                Some((kind, swapped)) => {
                                    let idx_u8 = u8::try_from(idx).expect("pattern length fits u8");
                                    let triple = if swapped {
                                        RelationTriple::new(kind, new_index, idx_u8)
                                    } else {
                                        RelationTriple::new(kind, idx_u8, new_index)
                                    };
                                    key_scratch.push(encode_triple(triple));
                                }
                                None => continue 'instances,
                            }
                        }
                        let events_pos = &entry.events_pos;
                        let idx = cur.intern(&key_scratch, || {
                            let mut pos = events_pos.clone();
                            pos.push(j as u32);
                            pos
                        });
                        let target = &mut cur.entries[idx].bindings;
                        target.extend_from_slice(binding);
                        target.push(col as u32);
                    }
                }
            }
        }
    }

    for local in locals {
        harvest_levels.push(local.entries.into_iter().map(|e| e.key).collect());
    }
    GranuleHarvest {
        granule: seq.granule(),
        labels,
        levels: harvest_levels,
    }
}

/// The incremental mining engine: owns the persistent per-event and
/// per-pattern state and absorbs appended granule batches.
///
/// ```
/// use stpm_core::{StpmConfig, StreamingMiner, StpmMiner, Threshold};
/// use stpm_timeseries::{Alphabet, SymbolicDatabase, SymbolicSeries};
///
/// let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
/// let c = SymbolicSeries::from_labels(
///     "C", &["1","1","0", "1","0","0", "1","1","0", "0","0","0"], alphabet.clone()).unwrap();
/// let d = SymbolicSeries::from_labels(
///     "D", &["1","0","0", "1","0","0", "1","1","0", "1","1","0"], alphabet).unwrap();
/// let dsyb = SymbolicDatabase::new(vec![c, d]).unwrap();
/// let dseq = dsyb.to_sequence_database(3).unwrap();
///
/// let config = StpmConfig {
///     max_period: Threshold::Absolute(2),
///     min_density: Threshold::Absolute(2),
///     dist_interval: (1, 10),
///     min_season: 1,
///     ..StpmConfig::default()
/// };
/// let mut miner = StreamingMiner::new(&config, dseq.registry()).unwrap();
/// // Absorb the first two granules, then the rest; every checkpoint is
/// // exact for the prefix absorbed so far.
/// miner.append_batch(&dseq.sequences()[..2]).unwrap();
/// let report = miner.append(&dseq.sequences()[2..]).unwrap();
/// let batch = StpmMiner::mine_sequences(&dseq, &config).unwrap();
/// assert_eq!(report.total_patterns(), batch.total_patterns());
/// ```
#[derive(Debug, Clone)]
pub struct StreamingMiner {
    pub(crate) config: StpmConfig,
    pub(crate) registry: EventRegistry,
    /// The configuration resolved against the current granule count
    /// (`None` until the first non-empty append).
    pub(crate) resolved: Option<ResolvedConfig>,
    pub(crate) num_granules: u64,
    pub(crate) events: FxHashMap<EventLabel, StreamEventEntry>,
    /// One persistent level per k in `2..=max_pattern_len`.
    pub(crate) levels: Vec<StreamLevel>,
    /// Cumulative wall-clock time spent absorbing granules.
    pub(crate) append_time: Duration,
    /// Number of `append*` calls absorbed (for reporting).
    pub(crate) batches_absorbed: u64,
    /// Id of the most recent durable snapshot taken of this state (0 = no
    /// snapshot yet). Bumped by [`StreamingMiner::snapshot`] and persisted,
    /// so a restored miner continues the id sequence.
    pub(crate) checkpoint_id: u64,
    /// Granule count at the most recent snapshot — the baseline
    /// [`StreamingMiner::pending_granules`] measures against.
    pub(crate) granules_at_snapshot: u64,
}

impl StreamingMiner {
    /// Creates an empty streaming miner for `config`, reporting patterns
    /// against `registry` (the registry of the database the granules come
    /// from).
    ///
    /// # Errors
    /// Propagates configuration-validation errors.
    pub fn new(config: &StpmConfig, registry: &EventRegistry) -> Result<Self> {
        // Validate the non-size-dependent parameters now; fractional
        // thresholds are re-resolved on every append.
        config.resolve(1)?;
        let levels = (2..=config.max_pattern_len).map(StreamLevel::new).collect();
        Ok(Self {
            config: config.clone(),
            registry: registry.clone(),
            resolved: None,
            num_granules: 0,
            events: FxHashMap::default(),
            levels,
            append_time: Duration::ZERO,
            batches_absorbed: 0,
            checkpoint_id: 0,
            granules_at_snapshot: 0,
        })
    }

    /// Number of granules absorbed so far.
    #[must_use]
    pub fn num_granules(&self) -> u64 {
        self.num_granules
    }

    /// Total number of distinct patterns interned across every level (the
    /// size of the persistent candidate universe, frequent or not).
    #[must_use]
    pub fn patterns_interned(&self) -> u64 {
        self.levels.iter().map(|l| l.entries.len() as u64).sum()
    }

    /// Granules absorbed since the most recent [`snapshot`] — the state a
    /// crash would lose without a write-ahead log.
    ///
    /// [`snapshot`]: StreamingMiner::snapshot
    #[must_use]
    pub fn pending_granules(&self) -> u64 {
        self.num_granules - self.granules_at_snapshot
    }

    /// The registry the reports render against.
    #[must_use]
    pub fn registry(&self) -> &EventRegistry {
        &self.registry
    }

    /// Approximate heap footprint of the persistent state, in bytes. Note
    /// that — unlike a batch run — no instance pool, binding pool or verdict
    /// table is retained across appends.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        let event_bytes: usize = self
            .events
            .values() // lint:allow(determinism): commutative sum, order-insensitive
            .map(|e| {
                std::mem::size_of::<EventLabel>()
                    + e.support.len() * std::mem::size_of::<GranulePos>()
                    + e.tracker.footprint_bytes()
            })
            .sum();
        event_bytes
            + self
                .levels
                .iter()
                .map(StreamLevel::footprint_bytes)
                .sum::<usize>()
    }

    /// Re-resolves the configuration against the post-append granule count.
    /// When the resolved seasonality thresholds changed (fractional
    /// thresholds crossing a granule-count boundary), every tracker is
    /// replayed from its stored support under the new thresholds — the
    /// exactness fallback; with absolute thresholds this never triggers.
    fn sync_resolved(&mut self, new_total: u64) -> Result<ResolvedConfig> {
        let resolved = self.config.resolve(new_total)?;
        if let Some(old) = self.resolved {
            let seasonal_changed = old.max_period != resolved.max_period
                || old.min_density != resolved.min_density
                || old.dist_min != resolved.dist_min
                || old.dist_max != resolved.dist_max;
            if seasonal_changed {
                // lint:allow(determinism): per-entry rebuild is independent of visit order
                for entry in self.events.values_mut() {
                    entry.tracker = SeasonTracker::rebuild(&entry.support, &resolved);
                }
                for level in &mut self.levels {
                    for entry in &mut level.entries {
                        entry.tracker = SeasonTracker::rebuild(&entry.support, &resolved);
                    }
                }
            }
        }
        self.resolved = Some(resolved);
        Ok(resolved)
    }

    /// Folds one granule's harvest into the persistent state. Harvests must
    /// arrive in granule order; within a harvest, patterns are applied in
    /// discovery order — this is what makes parallel appends byte-identical
    /// to sequential ones.
    // lint: hot-path
    fn apply_harvest(&mut self, harvest: GranuleHarvest, config: &ResolvedConfig) {
        let granule = harvest.granule;
        for label in harvest.labels {
            let entry = self.events.entry(label).or_default();
            let idx = entry.support.len();
            entry.support.push(granule);
            entry.tracker.push(idx, granule, config);
        }
        for (level, mined) in self.levels.iter_mut().zip(harvest.levels) {
            for key in mined {
                let entry = match level.index.get(key.as_slice()) {
                    Some(&idx) => &mut level.entries[idx as usize],
                    None => {
                        let idx = u32::try_from(level.entries.len()).expect("patterns fit u32");
                        // Allocate the group key only for genuinely new
                        // groups (the lookup borrows the slice).
                        if !level.groups.contains(&key[..level.k]) {
                            level.groups.insert(key[..level.k].into());
                        }
                        let pattern = decode_pattern_key(level.k, &key);
                        level.index.insert(key.into_boxed_slice(), idx);
                        level.entries.push(StreamPatternEntry {
                            pattern,
                            // lint:allow(hot-path-alloc): first-occurrence arm
                            support: Vec::new(),
                            tracker: SeasonTracker::default(),
                        });
                        &mut level.entries[idx as usize]
                    }
                };
                let idx = entry.support.len();
                entry.support.push(granule);
                entry.tracker.push(idx, granule, config);
            }
        }
    }

    /// Absorbs a batch of appended granules without emitting a report.
    /// Sequences must continue the absorbed prefix: granule positions
    /// `num_granules() + 1, num_granules() + 2, …` in order. An empty batch
    /// is a no-op.
    ///
    /// # Errors
    /// [`Error::StreamAppend`] on a granule-continuity violation;
    /// configuration re-resolution errors.
    pub fn append_batch(&mut self, batch: &[TemporalSequence]) -> Result<()> {
        for (offset, seq) in batch.iter().enumerate() {
            let expected = self.num_granules + offset as u64 + 1;
            if seq.granule() != expected {
                return Err(Error::StreamAppend {
                    reason: format!(
                        "expected granule {expected}, got {} — batches must append \
                         consecutive granules",
                        seq.granule()
                    ),
                });
            }
        }
        if batch.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        let resolved = self.sync_resolved(self.num_granules + batch.len() as u64)?;
        let harvests = Self::mine_batch(batch, &resolved);
        for harvest in harvests {
            self.apply_harvest(harvest, &resolved);
        }
        self.num_granules += batch.len() as u64;
        self.batches_absorbed += 1;
        self.append_time += start.elapsed();
        crate::invariants::debug_validate!(self.validate());
        Ok(())
    }

    /// Mines every granule of the batch, sharding across the configured
    /// worker threads (granules are independent; harvests are returned in
    /// granule order regardless of the thread count).
    fn mine_batch(batch: &[TemporalSequence], config: &ResolvedConfig) -> Vec<GranuleHarvest> {
        let threads = config.threads.min(batch.len()).max(1);
        if threads == 1 {
            return batch.iter().map(|seq| mine_granule(seq, config)).collect();
        }
        // A granule's mining cost is dominated by its instance cross
        // products — quadratic in the instance count.
        let costs: Vec<u64> = batch
            .iter()
            .map(|seq| 1 + (seq.len() as u64).pow(2))
            .collect();
        let ranges = balanced_ranges(&costs, threads);
        let chunks: Vec<Vec<GranuleHarvest>> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let slice = &batch[range];
                    scope.spawn(move || {
                        slice
                            .iter()
                            .map(|seq| mine_granule(seq, config))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("granule mining shard panicked"))
                .collect()
        });
        chunks.into_iter().flatten().collect()
    }

    /// Absorbs the granules of `dseq` beyond the already-absorbed prefix — a
    /// convenience for callers that maintain a growing [`SequenceDatabase`].
    ///
    /// # Errors
    /// [`Error::StreamAppend`] when `dseq` is shorter than the absorbed
    /// prefix; otherwise as [`StreamingMiner::append_batch`].
    pub fn absorb(&mut self, dseq: &SequenceDatabase) -> Result<()> {
        let absorbed = usize::try_from(self.num_granules).expect("granule count fits usize");
        if dseq.sequences().len() < absorbed {
            return Err(Error::StreamAppend {
                reason: format!(
                    "database holds {} granules but {absorbed} were already absorbed",
                    dseq.sequences().len()
                ),
            });
        }
        self.append_batch(&dseq.sequences()[absorbed..])
    }

    /// Absorbs a batch and emits a checkpoint report — the one-call streaming
    /// step.
    ///
    /// # Errors
    /// As [`StreamingMiner::append_batch`] and
    /// [`StreamingMiner::checkpoint`].
    pub fn append(&mut self, batch: &[TemporalSequence]) -> Result<EngineReport> {
        self.append_batch(batch)?;
        self.checkpoint()
    }

    /// Emits the frequent seasonal events and patterns of the absorbed
    /// prefix — exactly what a batch re-mine of the same prefix reports
    /// (patterns, supports, seasons and counts; the order within a level is
    /// first-occurrence order, which may differ from the batch engine's).
    ///
    /// # Errors
    /// [`Error::EmptyDatabase`] when no granule has been absorbed yet.
    pub fn checkpoint(&self) -> Result<EngineReport> {
        crate::invariants::debug_validate!(self.validate());
        let resolved = self.resolved.ok_or(Error::EmptyDatabase)?;
        let emit_start = Instant::now();

        // lint:allow(determinism): collected labels are sorted on the next line
        let mut labels: Vec<EventLabel> = self.events.keys().copied().collect();
        labels.sort_unstable();
        let mut candidate_events = 0usize;
        let mut events_out = Vec::new();
        for &label in &labels {
            let entry = &self.events[&label];
            if resolved.is_candidate(entry.support.len()) {
                candidate_events += 1;
            }
            if entry.tracker.is_frequent(entry.support.len(), &resolved) {
                events_out.push(MinedEvent {
                    label,
                    support: entry.support.clone(),
                    seasons: entry.tracker.snapshot(&entry.support, &resolved),
                });
            }
        }

        let mut patterns_out = Vec::new();
        let mut level_stats = Vec::new();
        for level in &self.levels {
            let mut frequent = 0usize;
            for entry in &level.entries {
                if entry.tracker.is_frequent(entry.support.len(), &resolved) {
                    frequent += 1;
                    patterns_out.push(MinedPattern::new(
                        entry.pattern.clone(),
                        entry.support.clone(),
                        entry.tracker.snapshot(&entry.support, &resolved),
                    ));
                }
            }
            level_stats.push(LevelStats {
                k: level.k,
                candidate_groups: level.groups.len(),
                candidate_patterns: level.entries.len(),
                frequent_patterns: frequent,
                footprint_bytes: level.footprint_bytes(),
                classifier_calls_saved: 0,
                adjacency_pruned_candidates: 0,
            });
        }

        let footprint = self.footprint_bytes();
        let emit_time = emit_start.elapsed();
        let stats = MiningStats {
            num_granules: self.num_granules,
            num_events: self.events.len(),
            candidate_events,
            frequent_events: events_out.len(),
            levels: level_stats,
            total_time: self.append_time + emit_time,
            single_event_time: Duration::ZERO,
            pattern_time: self.append_time,
            peak_footprint_bytes: footprint,
        };
        let report = MiningReport::new(events_out, patterns_out, stats);
        let total_series = self.registry.num_series();
        let pruning = PruningSummary {
            kept_series: (0..total_series)
                .map(|i| stpm_timeseries::SeriesId(u32::try_from(i).expect("series fits u32")))
                .collect(),
            pruned_series: Vec::new(),
            total_series,
            pruned_events: 0,
            total_events: self.registry.num_events(),
            candidate_itemsets: 0,
        };
        Ok(EngineReport::new(
            STREAMING_ENGINE_NAME,
            report,
            self.registry.clone(),
            vec![
                PhaseTiming::new(phases::APPEND, self.append_time),
                PhaseTiming::new(phases::EMIT, emit_time),
            ],
            pruning,
            footprint,
        ))
    }
}

// ---------------------------------------------------------------------------
// Structural validation (see the `invariants` module).
// ---------------------------------------------------------------------------

use crate::invariants::{invariant, InvariantViolation};
use crate::pattern::encode_pattern_key;

impl StreamingMiner {
    /// Validates the persistent streaming state: every support set ascends
    /// strictly and stays within the absorbed granule range, every level's
    /// pattern index is a permutation of its arena with keys that re-encode
    /// their patterns, and every incremental [`SeasonTracker`] is
    /// bit-identical to a fresh replay of its accumulated support.
    ///
    /// # Errors
    /// The first [`InvariantViolation`] found, if any.
    pub fn validate(&self) -> std::result::Result<(), InvariantViolation> {
        const S: &str = "StreamingMiner";
        invariant!(
            S,
            self.resolved.is_some() || self.num_granules == 0,
            "absorbed {} granules without a resolved configuration",
            self.num_granules
        );
        // lint:allow(determinism): validation is an order-insensitive conjunction
        for (&label, entry) in &self.events {
            self.validate_candidate(
                S,
                &format!("event {label:?}"),
                &entry.support,
                &entry.tracker,
            )?;
        }
        for (idx, level) in self.levels.iter().enumerate() {
            let k = idx + 2;
            invariant!(S, level.k == k, "level slot {idx} holds k={}", level.k);
            invariant!(
                S,
                level.index.len() == level.entries.len(),
                "level k={k} index has {} keys for {} entries",
                level.index.len(),
                level.entries.len()
            );
            let mut seen = vec![false; level.entries.len()];
            for (key, &id) in &level.index {
                let Some(entry) = level.entries.get(id as usize) else {
                    return Err(InvariantViolation::new(
                        S,
                        format!("level k={k} pattern id {id} out of range"),
                    ));
                };
                invariant!(
                    S,
                    !std::mem::replace(&mut seen[id as usize], true),
                    "level k={k} pattern id {id} indexed twice"
                );
                invariant!(
                    S,
                    encode_pattern_key(&entry.pattern) == **key,
                    "level k={k} index key does not re-encode pattern {id}"
                );
            }
            for group in &level.groups {
                invariant!(
                    S,
                    group.len() == k,
                    "level k={k} group key has {} packed labels",
                    group.len()
                );
            }
            for (id, entry) in level.entries.iter().enumerate() {
                self.validate_candidate(
                    S,
                    &format!("level k={k} pattern {id}"),
                    &entry.support,
                    &entry.tracker,
                )?;
            }
        }
        Ok(())
    }

    fn validate_candidate(
        &self,
        structure: &'static str,
        what: &str,
        support: &[GranulePos],
        tracker: &SeasonTracker,
    ) -> std::result::Result<(), InvariantViolation> {
        invariant!(
            structure,
            support.windows(2).all(|w| w[0] < w[1]),
            "support of {what} is not strictly ascending"
        );
        invariant!(
            structure,
            support.last().is_none_or(|&g| g <= self.num_granules),
            "support of {what} reaches past the absorbed prefix"
        );
        if let Some(resolved) = &self.resolved {
            tracker.validate(support, resolved).map_err(|violation| {
                InvariantViolation::new(
                    structure,
                    format!("tracker of {what}: {}", violation.detail),
                )
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Threshold;
    use crate::miner::StpmMiner;
    use stpm_timeseries::{Alphabet, SymbolicDatabase, SymbolicSeries};

    /// The paper's running example (Table II), 14 granules of 3 instants.
    fn paper_dseq() -> SequenceDatabase {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let rows: &[(&str, &str)] = &[
            ("C", "110100110000000000111111000000100110000110"),
            ("D", "100100110110000000111111000000100100110110"),
            ("F", "001011001001111000000000111111001001001001"),
            ("M", "111100111110111111000111111111111000111000"),
            ("N", "110111111110111111000000111111111111111000"),
        ];
        let series: Vec<SymbolicSeries> = rows
            .iter()
            .map(|(name, bits)| {
                let labels: Vec<&str> = bits
                    .chars()
                    .map(|c| if c == '1' { "1" } else { "0" })
                    .collect();
                SymbolicSeries::from_labels(name, &labels, alphabet.clone()).unwrap()
            })
            .collect();
        SymbolicDatabase::new(series)
            .unwrap()
            .to_sequence_database(3)
            .unwrap()
    }

    fn paper_config() -> StpmConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (3, 10),
            min_season: 2,
            max_pattern_len: 3,
            ..StpmConfig::default()
        }
    }

    use crate::report::canonical_result_set as canonical;

    fn assert_matches_batch(dseq: &SequenceDatabase, config: &StpmConfig, prefix: usize) {
        let truncated = dseq.truncated(prefix);
        let batch = StpmMiner::mine_sequences(&truncated, config).unwrap();
        let mut miner = StreamingMiner::new(config, dseq.registry()).unwrap();
        miner.append_batch(&dseq.sequences()[..prefix]).unwrap();
        let report = miner.checkpoint().unwrap();
        assert_eq!(
            canonical(report.events(), report.patterns()),
            canonical(batch.events(), batch.patterns()),
            "prefix {prefix} diverged"
        );
    }

    #[test]
    fn single_append_matches_a_batch_mine() {
        let dseq = paper_dseq();
        for prefix in [1, 5, 9, 14] {
            assert_matches_batch(&dseq, &paper_config(), prefix);
        }
    }

    #[test]
    fn granule_by_granule_appends_match_batch_at_every_checkpoint() {
        let dseq = paper_dseq();
        let config = paper_config();
        let mut miner = StreamingMiner::new(&config, dseq.registry()).unwrap();
        for prefix in 1..=dseq.sequences().len() {
            let report = miner.append(&dseq.sequences()[prefix - 1..prefix]).unwrap();
            let batch = StpmMiner::mine_sequences(&dseq.truncated(prefix), &config).unwrap();
            assert_eq!(
                canonical(report.events(), report.patterns()),
                canonical(batch.events(), batch.patterns()),
                "checkpoint after granule {prefix} diverged"
            );
            assert_eq!(report.stats().num_granules, prefix as u64);
        }
    }

    #[test]
    fn empty_appends_are_noops_and_continuity_is_enforced() {
        let dseq = paper_dseq();
        let config = paper_config();
        let mut miner = StreamingMiner::new(&config, dseq.registry()).unwrap();
        assert!(miner.append_batch(&[]).is_ok());
        assert!(miner.checkpoint().is_err(), "no granule absorbed yet");
        miner.append_batch(&dseq.sequences()[..3]).unwrap();
        // Skipping a granule is rejected, and the state is untouched.
        let err = miner.append_batch(&dseq.sequences()[4..6]).unwrap_err();
        assert!(matches!(err, Error::StreamAppend { .. }));
        assert_eq!(miner.num_granules(), 3);
        // Absorb picks up exactly where the state left off.
        miner.absorb(&dseq).unwrap();
        assert_eq!(miner.num_granules(), 14);
        assert_matches_batch(&dseq, &config, 14);
    }

    #[test]
    fn parallel_appends_are_byte_identical_to_sequential() {
        let dseq = paper_dseq();
        let config = paper_config();
        let mut sequential = StreamingMiner::new(&config, dseq.registry()).unwrap();
        sequential.absorb(&dseq).unwrap();
        let reference = sequential.checkpoint().unwrap();
        for threads in [2, 4, 7] {
            let threaded_config = config.clone().with_threads(threads);
            let mut miner = StreamingMiner::new(&threaded_config, dseq.registry()).unwrap();
            miner.absorb(&dseq).unwrap();
            let report = miner.checkpoint().unwrap();
            assert_eq!(report.events(), reference.events());
            assert_eq!(report.patterns(), reference.patterns());
            assert_eq!(
                report.stats().levels,
                reference.stats().levels,
                "level stats diverged with {threads} threads"
            );
        }
    }

    #[test]
    fn fractional_thresholds_replay_trackers_and_stay_exact() {
        // Fraction thresholds resolve differently as the granule count grows;
        // the tracker replay keeps checkpoints exact anyway.
        let dseq = paper_dseq();
        let config = StpmConfig {
            max_period: Threshold::Fraction(0.15),
            min_density: Threshold::Fraction(0.15),
            dist_interval: (3, 10),
            min_season: 2,
            max_pattern_len: 3,
            ..StpmConfig::default()
        };
        let mut miner = StreamingMiner::new(&config, dseq.registry()).unwrap();
        for prefix in 1..=dseq.sequences().len() {
            miner
                .append_batch(&dseq.sequences()[prefix - 1..prefix])
                .unwrap();
            let report = miner.checkpoint().unwrap();
            let batch = StpmMiner::mine_sequences(&dseq.truncated(prefix), &config).unwrap();
            assert_eq!(
                canonical(report.events(), report.patterns()),
                canonical(batch.events(), batch.patterns()),
                "fractional checkpoint after granule {prefix} diverged"
            );
        }
    }

    #[test]
    fn max_pattern_len_one_streams_only_events() {
        let dseq = paper_dseq();
        let config = StpmConfig {
            max_pattern_len: 1,
            ..paper_config()
        };
        let mut miner = StreamingMiner::new(&config, dseq.registry()).unwrap();
        let report = miner.append(dseq.sequences()).unwrap();
        assert!(report.patterns().is_empty());
        assert!(!report.events().is_empty());
        assert!(report.stats().levels.is_empty());
    }

    #[test]
    fn report_metadata_is_populated() {
        let dseq = paper_dseq();
        let mut miner = StreamingMiner::new(&paper_config(), dseq.registry()).unwrap();
        let report = miner.append(dseq.sequences()).unwrap();
        assert_eq!(report.engine(), STREAMING_ENGINE_NAME);
        assert!(report.memory_bytes() > 0);
        assert_eq!(report.pruning().total_series, 5);
        assert_eq!(report.pruning().pruned_series.len(), 0);
        assert!(report.phase_time(phases::APPEND) <= report.total_time());
        assert!(report.stats().candidate_events > 0);
        assert!(!report.pattern_set().is_empty());
        assert_eq!(miner.registry().num_series(), 5);
        // Two checkpoints on unchanged state are identical (modulo timings).
        let again = miner.checkpoint().unwrap();
        assert_eq!(again.events(), report.events());
        assert_eq!(again.patterns(), report.patterns());
    }
}
