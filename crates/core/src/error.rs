//! Error types for the mining layer.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while configuring or running the STPM miner.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A threshold is outside its valid domain.
    InvalidThreshold {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The sequence database is empty.
    EmptyDatabase,
    /// A data-transformation step performed by an engine (projection,
    /// sequence mapping) failed.
    Transform(stpm_timeseries::Error),
    /// A streaming append violated the append contract (granules out of
    /// order, or a batch that does not continue the absorbed prefix).
    StreamAppend {
        /// Human-readable description.
        reason: String,
    },
    /// An internal invariant was violated (indicates a bug, never expected).
    Internal {
        /// Human-readable description.
        reason: String,
    },
}

impl From<stpm_timeseries::Error> for Error {
    fn from(e: stpm_timeseries::Error) -> Self {
        Error::Transform(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidThreshold { parameter, reason } => {
                write!(f, "invalid threshold `{parameter}`: {reason}")
            }
            Error::EmptyDatabase => write!(f, "the temporal sequence database is empty"),
            Error::Transform(e) => write!(f, "data transformation failed: {e}"),
            Error::StreamAppend { reason } => write!(f, "streaming append rejected: {reason}"),
            Error::Internal { reason } => write!(f, "internal invariant violated: {reason}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidThreshold {
            parameter: "minSeason",
            reason: "must be at least 1".into(),
        };
        assert!(e.to_string().contains("minSeason"));
        assert!(Error::EmptyDatabase.to_string().contains("empty"));
        let t: Error = stpm_timeseries::Error::EmptySeries { name: "X".into() }.into();
        assert!(t.to_string().contains("transformation"));
        assert!(Error::Internal {
            reason: "oops".into()
        }
        .to_string()
        .contains("oops"));
    }
}
