//! Error types for the mining layer.

use std::fmt;

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while configuring or running the STPM miner.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A threshold is outside its valid domain.
    InvalidThreshold {
        /// Name of the offending parameter.
        parameter: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The sequence database is empty.
    EmptyDatabase,
    /// A data-transformation step performed by an engine (projection,
    /// sequence mapping) failed.
    Transform(stpm_timeseries::Error),
    /// A streaming append violated the append contract (granules out of
    /// order, or a batch that does not continue the absorbed prefix).
    StreamAppend {
        /// Human-readable description.
        reason: String,
    },
    /// An internal invariant was violated (indicates a bug, never expected).
    Internal {
        /// Human-readable description.
        reason: String,
    },
    /// A snapshot or write-ahead-log byte stream failed validation:
    /// truncated, bit-flipped, or structurally invalid. Restoring from such
    /// data never panics — it surfaces this variant instead.
    SnapshotCorrupt {
        /// What failed to validate, and where.
        reason: String,
    },
    /// The snapshot or WAL was written by a format version this build does
    /// not understand.
    SnapshotVersion {
        /// The version found in the header.
        found: u32,
        /// The newest version this build supports.
        supported: u32,
    },
    /// The configuration stored in a snapshot is incompatible with the
    /// configuration the restoring side requested (parameters that shape the
    /// absorbed state itself — ε, `d_o`, `maxPatternLen`, the mapping factor
    /// — cannot change across a restore; seasonality thresholds can, via
    /// tracker replay).
    SnapshotConfigMismatch {
        /// Name of the incompatible parameter.
        parameter: &'static str,
        /// Human-readable description of the mismatch.
        reason: String,
    },
    /// An I/O failure while writing or reading persistence data (the message
    /// of the underlying `std::io::Error`; the error itself is not stored so
    /// this type stays `Clone + PartialEq`).
    SnapshotIo {
        /// The underlying I/O error message.
        reason: String,
    },
    /// A memory budget was exceeded *and* the graceful-degradation path
    /// (spilling the miner to a cold file) itself failed. Exceeding the
    /// budget alone never surfaces an error — the pipeline spills and
    /// keeps accepting appends.
    BudgetExceeded {
        /// Live miner footprint at the time of the failed spill, in bytes.
        live_bytes: u64,
        /// The configured budget, in bytes.
        budget_bytes: u64,
        /// Why the spill failed (underlying I/O error message).
        reason: String,
    },
}

impl Error {
    /// Wraps an `std::io::Error` into [`Error::SnapshotIo`].
    #[must_use]
    pub fn snapshot_io(e: &std::io::Error) -> Self {
        Error::SnapshotIo {
            reason: e.to_string(),
        }
    }
}

impl From<stpm_timeseries::Error> for Error {
    fn from(e: stpm_timeseries::Error) -> Self {
        Error::Transform(e)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidThreshold { parameter, reason } => {
                write!(f, "invalid threshold `{parameter}`: {reason}")
            }
            Error::EmptyDatabase => write!(f, "the temporal sequence database is empty"),
            Error::Transform(e) => write!(f, "data transformation failed: {e}"),
            Error::StreamAppend { reason } => write!(f, "streaming append rejected: {reason}"),
            Error::Internal { reason } => write!(f, "internal invariant violated: {reason}"),
            Error::SnapshotCorrupt { reason } => {
                write!(f, "snapshot data failed validation: {reason}")
            }
            Error::SnapshotVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads up to \
                 version {supported})"
            ),
            Error::SnapshotConfigMismatch { parameter, reason } => {
                write!(
                    f,
                    "snapshot configuration mismatch on `{parameter}`: {reason}"
                )
            }
            Error::SnapshotIo { reason } => write!(f, "snapshot I/O failed: {reason}"),
            Error::BudgetExceeded {
                live_bytes,
                budget_bytes,
                reason,
            } => write!(
                f,
                "memory budget exceeded ({live_bytes} live bytes over a {budget_bytes}-byte \
                 budget) and the spill failed: {reason}"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::InvalidThreshold {
            parameter: "minSeason",
            reason: "must be at least 1".into(),
        };
        assert!(e.to_string().contains("minSeason"));
        assert!(Error::EmptyDatabase.to_string().contains("empty"));
        let t: Error = stpm_timeseries::Error::EmptySeries { name: "X".into() }.into();
        assert!(t.to_string().contains("transformation"));
        assert!(Error::Internal {
            reason: "oops".into()
        }
        .to_string()
        .contains("oops"));
        assert!(Error::SnapshotCorrupt {
            reason: "bad crc".into()
        }
        .to_string()
        .contains("bad crc"));
        assert!(Error::SnapshotVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains('9'));
        assert!(Error::SnapshotConfigMismatch {
            parameter: "epsilon",
            reason: "stored 0, requested 2".into()
        }
        .to_string()
        .contains("epsilon"));
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(Error::snapshot_io(&io).to_string().contains("gone"));
        let b = Error::BudgetExceeded {
            live_bytes: 2048,
            budget_bytes: 1024,
            reason: "disk full".into(),
        };
        assert!(b.to_string().contains("2048"));
        assert!(b.to_string().contains("1024"));
        assert!(b.to_string().contains("disk full"));
    }
}
