//! Mining results: frequent seasonal events and patterns plus run statistics.

use crate::pattern::TemporalPattern;
use crate::season::Seasons;
use crate::support::SupportSet;
use std::collections::BTreeSet;
use std::time::Duration;
use stpm_timeseries::{EventLabel, EventRegistry};

/// A frequent seasonal single event (output of STPM step 2.1).
#[derive(Debug, Clone, PartialEq)]
pub struct MinedEvent {
    /// The event.
    pub label: EventLabel,
    /// Its support set.
    pub support: SupportSet,
    /// Its seasons.
    pub seasons: Seasons,
}

/// A frequent seasonal temporal pattern (output of STPM step 2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct MinedPattern {
    pattern: TemporalPattern,
    support: SupportSet,
    seasons: Seasons,
}

impl MinedPattern {
    /// Creates a mined-pattern record.
    #[must_use]
    pub fn new(pattern: TemporalPattern, support: SupportSet, seasons: Seasons) -> Self {
        Self {
            pattern,
            support,
            seasons,
        }
    }

    /// The pattern.
    #[must_use]
    pub fn pattern(&self) -> &TemporalPattern {
        &self.pattern
    }

    /// The pattern's support set.
    #[must_use]
    pub fn support(&self) -> &[u64] {
        &self.support
    }

    /// The pattern's seasons.
    #[must_use]
    pub fn seasons(&self) -> &Seasons {
        &self.seasons
    }

    /// Human-readable rendering with season annotations.
    #[must_use]
    pub fn display(&self, registry: &EventRegistry) -> String {
        format!(
            "{} [seasons: {}, support: {}]",
            self.pattern.display(registry),
            self.seasons.count(),
            self.support.len()
        )
    }
}

/// Canonical, order-insensitive rendering of a mined result set: one string
/// per event and per pattern, each carrying the pattern, its full support
/// set and its seasons. Two mining runs are *identical* — the streaming
/// engine's exactness contract — iff their canonical sets are equal; the
/// streaming/batch equivalence tests and the streaming benchmark all compare
/// through this one helper so the identity check cannot drift between them.
#[must_use]
pub fn canonical_result_set(events: &[MinedEvent], patterns: &[MinedPattern]) -> BTreeSet<String> {
    events
        .iter()
        .map(|e| format!("{:?} {:?} {:?}", e.label, e.support, e.seasons))
        .chain(
            patterns
                .iter()
                .map(|p| format!("{:?} {:?} {:?}", p.pattern(), p.support(), p.seasons())),
        )
        .collect()
}

/// Per-level counters collected while mining (used to report the search-space
/// reduction of the pruning techniques and the level-2 reuse of the k ≥ 3
/// loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelStats {
    /// Pattern length `k` of the level.
    pub k: usize,
    /// Number of candidate k-event groups examined.
    pub candidate_groups: usize,
    /// Number of candidate k-event patterns kept in `HLH_k`.
    pub candidate_patterns: usize,
    /// Number of frequent seasonal k-event patterns found.
    pub frequent_patterns: usize,
    /// Approximate bytes held by `HLH_k` at the end of the level.
    pub footprint_bytes: usize,
    /// `classify_relation` calls this level avoided by looking the verdict
    /// up in the level-2 verdict table instead (always 0 at k = 2, where the
    /// verdicts are produced).
    pub classifier_calls_saved: usize,
    /// (group, extension-event) combinations the level-2 adjacency matrix
    /// pruned *before* any support intersection ran — work the naive
    /// `FilteredF_1` scan would have started and then discarded (always 0 at
    /// k = 2 and when transitivity pruning is off).
    pub adjacency_pruned_candidates: usize,
}

/// Statistics of a mining run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MiningStats {
    /// Number of granules of the mined database.
    pub num_granules: u64,
    /// Number of distinct events in the database.
    pub num_events: usize,
    /// Number of candidate single events retained in `HLH_1`.
    pub candidate_events: usize,
    /// Number of frequent seasonal single events.
    pub frequent_events: usize,
    /// Per-level statistics for k ≥ 2.
    pub levels: Vec<LevelStats>,
    /// Wall-clock time of the whole mining run.
    pub total_time: Duration,
    /// Wall-clock time spent mining single events.
    pub single_event_time: Duration,
    /// Wall-clock time spent mining k ≥ 2 patterns.
    pub pattern_time: Duration,
    /// Approximate peak heap footprint of all HLH structures, in bytes.
    pub peak_footprint_bytes: usize,
}

impl MiningStats {
    /// Total number of frequent seasonal patterns across every level
    /// (excluding single events).
    #[must_use]
    pub fn total_frequent_patterns(&self) -> usize {
        self.levels.iter().map(|l| l.frequent_patterns).sum()
    }

    /// Total number of candidate patterns held across every level.
    #[must_use]
    pub fn total_candidate_patterns(&self) -> usize {
        self.levels.iter().map(|l| l.candidate_patterns).sum()
    }

    /// Total `classify_relation` calls avoided through the level-2 verdict
    /// table, across every k ≥ 3 level.
    #[must_use]
    pub fn total_classifier_calls_saved(&self) -> usize {
        self.levels.iter().map(|l| l.classifier_calls_saved).sum()
    }

    /// Total (group, extension-event) combinations pruned by the adjacency
    /// matrix before any support work, across every k ≥ 3 level.
    #[must_use]
    pub fn total_adjacency_pruned_candidates(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.adjacency_pruned_candidates)
            .sum()
    }
}

/// The complete output of a mining run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MiningReport {
    events: Vec<MinedEvent>,
    patterns: Vec<MinedPattern>,
    stats: MiningStats,
}

impl MiningReport {
    /// Assembles a report.
    #[must_use]
    pub fn new(events: Vec<MinedEvent>, patterns: Vec<MinedPattern>, stats: MiningStats) -> Self {
        Self {
            events,
            patterns,
            stats,
        }
    }

    /// The frequent seasonal single events.
    #[must_use]
    pub fn events(&self) -> &[MinedEvent] {
        &self.events
    }

    /// The frequent seasonal patterns (k ≥ 2).
    #[must_use]
    pub fn patterns(&self) -> &[MinedPattern] {
        &self.patterns
    }

    /// Run statistics.
    #[must_use]
    pub fn stats(&self) -> &MiningStats {
        &self.stats
    }

    /// Total number of frequent seasonal patterns, counting single events.
    #[must_use]
    pub fn total_patterns(&self) -> usize {
        self.events.len() + self.patterns.len()
    }

    /// The patterns of length `k`.
    #[must_use]
    pub fn patterns_of_len(&self, k: usize) -> Vec<&MinedPattern> {
        self.patterns
            .iter()
            .filter(|p| p.pattern().len() == k)
            .collect()
    }

    /// Whether a structurally identical pattern was found.
    #[must_use]
    pub fn contains_pattern(&self, pattern: &TemporalPattern) -> bool {
        self.patterns.iter().any(|p| p.pattern() == pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::RelationKind;
    use stpm_timeseries::{SeriesId, SymbolId};

    fn label(series: u32, symbol: u16) -> EventLabel {
        EventLabel::new(SeriesId(series), SymbolId(symbol))
    }

    fn registry() -> EventRegistry {
        let mut reg = EventRegistry::new();
        reg.register_series("C", &["0".into(), "1".into()]);
        reg.register_series("D", &["0".into(), "1".into()]);
        reg
    }

    fn sample_pattern() -> MinedPattern {
        MinedPattern::new(
            TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false),
            vec![1, 2, 3],
            Seasons::default(),
        )
    }

    #[test]
    fn mined_pattern_accessors_and_display() {
        let p = sample_pattern();
        assert_eq!(p.pattern().len(), 2);
        assert_eq!(p.support(), &[1, 2, 3]);
        assert_eq!(p.seasons().count(), 0);
        let text = p.display(&registry());
        assert!(text.contains("C:1"));
        assert!(text.contains("support: 3"));
    }

    #[test]
    fn report_aggregation() {
        let stats = MiningStats {
            levels: vec![
                LevelStats {
                    k: 2,
                    candidate_groups: 10,
                    candidate_patterns: 6,
                    frequent_patterns: 4,
                    footprint_bytes: 100,
                    ..LevelStats::default()
                },
                LevelStats {
                    k: 3,
                    candidate_groups: 3,
                    candidate_patterns: 2,
                    frequent_patterns: 1,
                    footprint_bytes: 40,
                    classifier_calls_saved: 12,
                    adjacency_pruned_candidates: 7,
                },
            ],
            ..MiningStats::default()
        };
        assert_eq!(stats.total_frequent_patterns(), 5);
        assert_eq!(stats.total_candidate_patterns(), 8);
        assert_eq!(stats.total_classifier_calls_saved(), 12);
        assert_eq!(stats.total_adjacency_pruned_candidates(), 7);

        let report = MiningReport::new(
            vec![MinedEvent {
                label: label(0, 1),
                support: vec![1, 2],
                seasons: Seasons::default(),
            }],
            vec![sample_pattern()],
            stats,
        );
        assert_eq!(report.total_patterns(), 2);
        assert_eq!(report.events().len(), 1);
        assert_eq!(report.patterns().len(), 1);
        assert_eq!(report.patterns_of_len(2).len(), 1);
        assert!(report.patterns_of_len(3).is_empty());
        assert!(report.contains_pattern(sample_pattern().pattern()));
        assert_eq!(report.stats().levels.len(), 2);
    }
}
