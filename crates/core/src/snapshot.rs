//! Durable snapshots and write-ahead logging for the streaming miner.
//!
//! This module turns a [`StreamingMiner`] into something a long-running
//! service can evict, rehydrate and crash-recover: the full persistent state
//! — event supports, the interned pattern arenas keyed by the packed-u64
//! encodings of [`crate::pattern`], and every [`SeasonTracker`]'s loop state
//! — serializes to a versioned, length-prefixed binary format with
//! per-section CRCs, and a write-ahead log batches the granule appends that
//! arrive between snapshots so a crash loses nothing durable.
//!
//! # Snapshot format (version 1)
//!
//! All integers are **little-endian**, fixed width. A snapshot is:
//!
//! ```text
//! header   := magic "STPMSNAP" (8 bytes) · version u32 · kind u32
//! section  := tag u32 · len u64 · payload (len bytes) · crc32(payload) u32
//! ```
//!
//! A miner snapshot (`kind = 1`) holds, in strict order: one `CONFIG`
//! section, one `REGISTRY` section, one `STATE` section, one `EVENTS`
//! section, then `maxPatternLen − 1` `LEVEL` sections (k = 2, 3, …).
//! Trailing bytes after the last section are rejected. The CRC is the
//! standard IEEE CRC-32 (polynomial `0xEDB88320`).
//!
//! Derived state is *not* serialized: the per-level pattern index and group
//! set are rebuilt from the interning keys, and the resolved configuration is
//! re-resolved against the restored granule count. Wall-clock timing counters
//! are observability-only and reset to zero on restore — this is what makes
//! `snapshot → restore → append` *byte-identical* to an uninterrupted run.
//!
//! # WAL format (version 1)
//!
//! ```text
//! wal      := magic "STPMWAL1" (8 bytes) · version u32 · record*
//! record   := len u64 · crc32(payload) u32 · payload (len bytes)
//! ```
//!
//! Record payloads are opaque to this module (the facade stores symbolized
//! granule batches). [`wal_read`] recovers the longest durable prefix: it
//! stops at the first truncated or corrupt record and reports how many bytes
//! were durable, so a crash mid-write costs at most the interrupted record.
//!
//! # Recovery contract
//!
//! * Restoring from corrupt bytes (truncated, bit-flipped, structurally
//!   invalid) **never panics** — it returns [`Error::SnapshotCorrupt`] (or
//!   [`Error::SnapshotVersion`] for a future format version).
//! * Parameters that shaped the absorbed state itself — ε, `d_o`,
//!   `maxPatternLen` — cannot change across a restore;
//!   [`StreamingMiner::restore_with`] rejects such requests with
//!   [`Error::SnapshotConfigMismatch`]. Seasonality thresholds (`maxPeriod`,
//!   `minDensity`, `distInterval`, `minSeason`) *can* change: every tracker
//!   is replayed from its stored support under the new thresholds, the same
//!   exactness fallback the miner uses when a fractional threshold crosses a
//!   granule-count boundary.
//!
//! # Format freeze & decode hygiene
//!
//! Two contracts of this module are machine-checked by the project lint
//! pass (`cargo run -p stpm-lint`):
//!
//! * **`wire-format-freeze`** — the magic, version and section/kind tag
//!   constants below are frozen against the committed
//!   `snapshot_format.lock` at the workspace root. Changing a tag's value
//!   (or adding/removing one) without bumping [`SNAPSHOT_VERSION`] /
//!   [`WAL_VERSION`] is a lint error; after a deliberate bump the lock is
//!   regenerated with `cargo run -p stpm-lint -- --write-format-lock`.
//! * **`no-panic-decode`** — every decode-path function in this module
//!   (`take_*`, `parse_*`, `read_*`, `decode_*`, [`wal_read`], the restore
//!   entry points) must stay free of `unwrap`/`expect`/panicking macros and
//!   raw slice indexing, so arbitrary input bytes can only ever produce a
//!   typed [`Error::SnapshotCorrupt`], never a panic. [`ByteReader`]'s
//!   bounds-checked cursor is the only way decode code touches the buffer.

use crate::config::{PruningMode, StpmConfig, Threshold};
use crate::error::{Error, Result};
use crate::fxhash::FxHashMap;
use crate::pattern::{encode_pattern_key, try_decode_triple, TemporalPattern};
use crate::season::{PendingRun, SeasonTracker};
use crate::streaming::{StreamEventEntry, StreamLevel, StreamPatternEntry, StreamingMiner};
use crate::support::SupportSet;
use std::io::{Read, Write};
use std::time::Duration;
use stpm_timeseries::{EventLabel, EventRegistry, SeriesId, SymbolId};

/// Magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"STPMSNAP";
/// Newest snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Header `kind` of a [`StreamingMiner`] snapshot.
pub const KIND_MINER: u32 = 1;
/// Header `kind` of a facade pipeline snapshot (which embeds a miner
/// snapshot; the facade owns its section layout).
pub const KIND_PIPELINE: u32 = 2;
/// Magic bytes opening every write-ahead log.
pub const WAL_MAGIC: [u8; 8] = *b"STPMWAL1";
/// Newest WAL format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;

const SEC_CONFIG: u32 = 1;
const SEC_REGISTRY: u32 = 2;
const SEC_STATE: u32 = 3;
const SEC_EVENTS: u32 = 4;
const SEC_LEVEL: u32 = 5;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE)
// ---------------------------------------------------------------------------

// Slicing-by-8 tables: `TABLES[0]` is the classic byte-at-a-time table,
// `TABLES[t][i]` advances the CRC of byte `i` by `t` further zero bytes, so
// eight input bytes fold into the state with eight independent lookups.
const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC32_TABLES: [[u32; 256]; 8] = crc32_tables();

/// IEEE CRC-32 (the checksum of zip/PNG/Ethernet) over `bytes`.
///
/// Uses slicing-by-8 so checksumming is far from the bottleneck when
/// snapshots grow to megabytes; the result is bit-identical to the
/// byte-at-a-time definition.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC32_TABLES;
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

fn corrupt(reason: impl Into<String>) -> Error {
    Error::SnapshotCorrupt {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Little-endian byte cursor primitives
// ---------------------------------------------------------------------------

/// Append-only little-endian byte buffer — the encoding half of the wire
/// format. Public so the facade encodes its own sections and WAL payloads
/// with the same primitives.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string (`u32` byte length + bytes).
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string fits u32"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian cursor over untrusted bytes — the decoding
/// half of the wire format. Every overrun surfaces as
/// [`Error::SnapshotCorrupt`] naming the section and offset; nothing panics.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> ByteReader<'a> {
    /// Wraps `buf`; `context` names the section in error messages.
    #[must_use]
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        Self {
            buf,
            pos: 0,
            context,
        }
    }

    fn fail(&self, detail: impl std::fmt::Display) -> Error {
        corrupt(format!("{} (offset {}): {detail}", self.context, self.pos))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let slice = self
            .pos
            .checked_add(n)
            .and_then(|end| self.buf.get(self.pos..end));
        match slice {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => {
                let remaining = self.buf.len().saturating_sub(self.pos);
                Err(self.fail(format_args!("needed {n} bytes but only {remaining} remain")))
            }
        }
    }

    /// Reads exactly `N` bytes into an array. The length mismatch arm is
    /// unreachable (`take` returned an `N`-byte slice) but kept as a typed
    /// error so no decode path can panic.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let bytes = self.take(N)?;
        bytes
            .try_into()
            .map_err(|_| self.fail("internal length mismatch"))
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        let [byte] = self.take_array::<1>()?;
        Ok(byte)
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads an `f64` from its little-endian IEEE-754 bit pattern.
    pub fn take_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.fail("string is not valid UTF-8"))
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// The unconsumed tail of the buffer (empty once exhausted).
    fn rest(&self) -> &'a [u8] {
        self.buf.get(self.pos..).unwrap_or(&[])
    }

    /// Asserts the reader consumed its buffer exactly.
    pub fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(self.fail(format_args!("{} trailing bytes", self.buf.len() - self.pos)));
        }
        Ok(())
    }
}

/// Caps a length-prefix-driven pre-allocation by what the input could
/// possibly hold, so a corrupt count cannot trigger a huge allocation.
fn capped(count: u32, remaining: usize, elem_size: usize) -> usize {
    (count as usize).min(remaining / elem_size + 1)
}

// ---------------------------------------------------------------------------
// Header and section framing
// ---------------------------------------------------------------------------

/// Writes the 16-byte snapshot header (magic, version, kind) to `out`.
pub fn write_header(out: &mut Vec<u8>, kind: u32) {
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
}

/// Validates the snapshot header and returns the body after it.
///
/// # Errors
/// [`Error::SnapshotCorrupt`] on a short or foreign header or a `kind`
/// mismatch; [`Error::SnapshotVersion`] on an unknown format version.
pub fn parse_header(bytes: &[u8], expected_kind: u32) -> Result<&[u8]> {
    if bytes.len() < 16 {
        return Err(corrupt(format!(
            "header truncated: {} bytes, need 16",
            bytes.len()
        )));
    }
    let mut r = ByteReader::new(bytes, "snapshot header");
    let magic: [u8; 8] = r.take_array()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(corrupt("magic bytes do not spell STPMSNAP"));
    }
    let version = r.take_u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(Error::SnapshotVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let kind = r.take_u32()?;
    if kind != expected_kind {
        return Err(corrupt(format!(
            "snapshot kind {kind} where kind {expected_kind} was expected"
        )));
    }
    Ok(r.rest())
}

/// Appends one framed section (`tag`, length, payload, CRC) to `out`.
pub fn write_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    out.extend_from_slice(&tag.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Reads the next framed section from `cursor`, checking its tag and CRC,
/// and advances `cursor` past it.
///
/// # Errors
/// [`Error::SnapshotCorrupt`] on truncation, a tag mismatch, an impossible
/// length or a CRC failure.
pub fn read_section<'a>(cursor: &mut &'a [u8], expected_tag: u32) -> Result<&'a [u8]> {
    let buf = *cursor;
    if buf.len() < 12 {
        return Err(corrupt(format!(
            "section header truncated: {} bytes, need 12",
            buf.len()
        )));
    }
    let mut r = ByteReader::new(buf, "section header");
    let tag = r.take_u32()?;
    if tag != expected_tag {
        return Err(corrupt(format!(
            "section tag {tag} where tag {expected_tag} was expected"
        )));
    }
    let len = r.take_u64()?;
    if (r.remaining() as u64) < len.saturating_add(4) {
        return Err(corrupt(format!(
            "section {tag} claims {len} payload bytes but only {} remain",
            r.remaining()
        )));
    }
    let len = usize::try_from(len).map_err(|_| corrupt("section length exceeds address space"))?;
    let payload = r.take(len)?;
    let stored = r.take_u32()?;
    let actual = crc32(payload);
    if stored != actual {
        return Err(corrupt(format!(
            "section {tag} CRC mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    *cursor = r.rest();
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Wire encodings of the miner's parts
// ---------------------------------------------------------------------------

fn write_threshold(w: &mut ByteWriter, t: Threshold) {
    match t {
        Threshold::Absolute(v) => {
            w.put_u8(0);
            w.put_u64(v);
        }
        Threshold::Fraction(f) => {
            w.put_u8(1);
            w.put_f64(f);
        }
    }
}

fn read_threshold(r: &mut ByteReader<'_>) -> Result<Threshold> {
    match r.take_u8()? {
        0 => Ok(Threshold::Absolute(r.take_u64()?)),
        1 => Ok(Threshold::Fraction(r.take_f64()?)),
        tag => Err(r.fail(format_args!("unknown threshold tag {tag}"))),
    }
}

fn encode_config(config: &StpmConfig) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_threshold(&mut w, config.max_period);
    write_threshold(&mut w, config.min_density);
    w.put_u64(config.dist_interval.0);
    w.put_u64(config.dist_interval.1);
    w.put_u64(config.min_season);
    w.put_u64(config.epsilon);
    w.put_u64(config.min_overlap);
    w.put_u64(config.max_pattern_len as u64);
    w.put_u8(match config.pruning {
        PruningMode::NoPrune => 0,
        PruningMode::Apriori => 1,
        PruningMode::Transitivity => 2,
        PruningMode::All => 3,
    });
    w.put_u64(config.threads as u64);
    w.into_bytes()
}

fn decode_config(payload: &[u8]) -> Result<StpmConfig> {
    let mut r = ByteReader::new(payload, "config section");
    let max_period = read_threshold(&mut r)?;
    let min_density = read_threshold(&mut r)?;
    let dist_interval = (r.take_u64()?, r.take_u64()?);
    let min_season = r.take_u64()?;
    let epsilon = r.take_u64()?;
    let min_overlap = r.take_u64()?;
    let max_pattern_len = r.take_u64()?;
    if !(1..=256).contains(&max_pattern_len) {
        return Err(r.fail(format_args!(
            "maxPatternLen {max_pattern_len} is outside 1..=256"
        )));
    }
    let pruning = match r.take_u8()? {
        0 => PruningMode::NoPrune,
        1 => PruningMode::Apriori,
        2 => PruningMode::Transitivity,
        3 => PruningMode::All,
        tag => return Err(r.fail(format_args!("unknown pruning mode tag {tag}"))),
    };
    let threads = usize::try_from(r.take_u64()?)
        .map_err(|_| corrupt("config section: thread count exceeds address space"))?;
    r.finish()?;
    let config = StpmConfig {
        max_period,
        min_density,
        dist_interval,
        min_season,
        epsilon,
        min_overlap,
        max_pattern_len: max_pattern_len as usize,
        pruning,
        threads,
    };
    // Surfaces structurally-valid-but-out-of-domain values (e.g. a fraction
    // beyond [0, 1]) as a typed error before any state is rebuilt.
    config.resolve(1)?;
    Ok(config)
}

fn encode_registry(registry: &EventRegistry) -> Vec<u8> {
    let mut w = ByteWriter::new();
    let num_series = u32::try_from(registry.num_series()).expect("series count fits u32");
    w.put_u32(num_series);
    for sid in 0..num_series {
        let id = SeriesId(sid);
        w.put_str(registry.series_name(id).expect("series id in range"));
        let alphabet = registry.alphabet(id).expect("series id in range");
        w.put_u32(u32::try_from(alphabet.len()).expect("alphabet fits u32"));
        for label in alphabet {
            w.put_str(label);
        }
    }
    w.into_bytes()
}

fn decode_registry(payload: &[u8]) -> Result<EventRegistry> {
    let mut r = ByteReader::new(payload, "registry section");
    let num_series = r.take_u32()?;
    let mut registry = EventRegistry::new();
    for expected in 0..num_series {
        let name = r.take_str()?;
        let alphabet_len = r.take_u32()?;
        if alphabet_len > 1 << 16 {
            return Err(r.fail(format_args!(
                "alphabet of {alphabet_len} symbols exceeds the u16 symbol space"
            )));
        }
        let mut alphabet = Vec::with_capacity(capped(alphabet_len, r.remaining(), 4));
        for _ in 0..alphabet_len {
            alphabet.push(r.take_str()?);
        }
        let id = registry.register_series(&name, &alphabet);
        if id.0 != expected {
            return Err(r.fail(format_args!("duplicate series name `{name}`")));
        }
    }
    r.finish()?;
    Ok(registry)
}

fn write_support(w: &mut ByteWriter, support: &SupportSet) {
    w.put_u32(u32::try_from(support.len()).expect("support fits u32"));
    for &granule in support {
        w.put_u64(granule);
    }
}

fn read_support(r: &mut ByteReader<'_>, num_granules: u64) -> Result<SupportSet> {
    let count = r.take_u32()?;
    if u64::from(count) > num_granules {
        return Err(r.fail(format_args!(
            "support of {count} granules exceeds the {num_granules} absorbed"
        )));
    }
    let mut support = Vec::with_capacity(capped(count, r.remaining(), 8));
    let mut prev = 0u64;
    for _ in 0..count {
        let granule = r.take_u64()?;
        if granule <= prev || granule > num_granules {
            return Err(r.fail(format_args!(
                "support granule {granule} after {prev} violates strict order in 1..={num_granules}"
            )));
        }
        support.push(granule);
        prev = granule;
    }
    Ok(support)
}

fn write_tracker(w: &mut ByteWriter, tracker: &SeasonTracker) {
    w.put_u32(u32::try_from(tracker.spans.len()).expect("spans fit u32"));
    for &(start, end) in &tracker.spans {
        w.put_u32(start);
        w.put_u32(end);
    }
    w.put_u64(tracker.best);
    w.put_u64(tracker.current);
    match tracker.prev_end {
        None => w.put_u8(0),
        Some(granule) => {
            w.put_u8(1);
            w.put_u64(granule);
        }
    }
    match tracker.pending {
        None => w.put_u8(0),
        Some(run) => {
            w.put_u8(1);
            match run.kept_from {
                None => w.put_u8(0),
                Some(idx) => {
                    w.put_u8(1);
                    w.put_u32(idx);
                }
            }
            w.put_u64(run.first_kept);
            w.put_u64(run.last);
        }
    }
}

fn read_tracker(r: &mut ByteReader<'_>, support_len: u32) -> Result<SeasonTracker> {
    let span_count = r.take_u32()?;
    if span_count > support_len {
        return Err(r.fail(format_args!(
            "{span_count} season spans over a support of {support_len}"
        )));
    }
    let mut spans = Vec::with_capacity(capped(span_count, r.remaining(), 8));
    let mut prev_end = 0u32;
    for _ in 0..span_count {
        let start = r.take_u32()?;
        let end = r.take_u32()?;
        if start < prev_end || start >= end || end > support_len {
            return Err(r.fail(format_args!(
                "season span [{start}, {end}) after {prev_end} is not an increasing \
                 in-bounds span"
            )));
        }
        spans.push((start, end));
        prev_end = end;
    }
    let best = r.take_u64()?;
    let current = r.take_u64()?;
    let prev_end = match r.take_u8()? {
        0 => None,
        1 => Some(r.take_u64()?),
        tag => return Err(r.fail(format_args!("unknown prev-end tag {tag}"))),
    };
    let pending = match r.take_u8()? {
        0 => None,
        1 => {
            let kept_from = match r.take_u8()? {
                0 => None,
                1 => {
                    let idx = r.take_u32()?;
                    if idx >= support_len {
                        return Err(r.fail(format_args!(
                            "pending-run index {idx} out of bounds for a support of {support_len}"
                        )));
                    }
                    Some(idx)
                }
                tag => return Err(r.fail(format_args!("unknown kept-from tag {tag}"))),
            };
            Some(PendingRun {
                kept_from,
                first_kept: r.take_u64()?,
                last: r.take_u64()?,
            })
        }
        tag => return Err(r.fail(format_args!("unknown pending-run tag {tag}"))),
    };
    Ok(SeasonTracker {
        spans,
        best,
        current,
        prev_end,
        pending,
    })
}

fn encode_events(miner: &StreamingMiner) -> Vec<u8> {
    // The event map iterates in hash order; sort by packed label so snapshot
    // bytes are a pure function of the state.
    let mut entries: Vec<(u64, &StreamEventEntry)> = miner
        .events
        .iter() // lint:allow(determinism): sorted by packed label two lines down before any byte is written
        .map(|(label, entry)| (label.packed(), entry))
        .collect();
    entries.sort_unstable_by_key(|&(packed, _)| packed);
    let mut w = ByteWriter::new();
    w.put_u32(u32::try_from(entries.len()).expect("event count fits u32"));
    for (packed, entry) in entries {
        w.put_u64(packed);
        write_support(&mut w, &entry.support);
        write_tracker(&mut w, &entry.tracker);
    }
    w.into_bytes()
}

fn read_label(r: &ByteReader<'_>, word: u64, registry: &EventRegistry) -> Result<EventLabel> {
    if word >> 48 != 0 {
        return Err(r.fail(format_args!(
            "label word {word:#x} overflows the 48-bit packing"
        )));
    }
    let series = (word >> 16) as u32;
    let symbol = (word & 0xFFFF) as u16;
    let alphabet_len = registry
        .alphabet(SeriesId(series))
        .map(<[String]>::len)
        .ok_or_else(|| {
            r.fail(format_args!(
                "label references series {series} but only {} are registered",
                registry.num_series()
            ))
        })?;
    if usize::from(symbol) >= alphabet_len {
        return Err(r.fail(format_args!(
            "label references symbol {symbol} but series {series} has {alphabet_len} symbols"
        )));
    }
    Ok(EventLabel::new(SeriesId(series), SymbolId(symbol)))
}

fn decode_events(
    payload: &[u8],
    registry: &EventRegistry,
    num_granules: u64,
) -> Result<FxHashMap<EventLabel, StreamEventEntry>> {
    let mut r = ByteReader::new(payload, "events section");
    let count = r.take_u32()?;
    let mut events = FxHashMap::default();
    events.reserve(capped(count, r.remaining(), 16));
    let mut prev_packed: Option<u64> = None;
    for _ in 0..count {
        let packed = r.take_u64()?;
        if prev_packed.is_some_and(|prev| packed <= prev) {
            return Err(r.fail(format_args!(
                "event label {packed:#x} is not strictly increasing"
            )));
        }
        prev_packed = Some(packed);
        let label = read_label(&r, packed, registry)?;
        let support = read_support(&mut r, num_granules)?;
        let support_len =
            u32::try_from(support.len()).map_err(|_| r.fail("support length overflows u32"))?;
        let tracker = read_tracker(&mut r, support_len)?;
        events.insert(label, StreamEventEntry { support, tracker });
    }
    r.finish()?;
    Ok(events)
}

fn encode_level(level: &StreamLevel) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(level.k as u64);
    w.put_u32(u32::try_from(level.entries.len()).expect("patterns fit u32"));
    for entry in &level.entries {
        // The interning key fully encodes the pattern; its length is fixed
        // by k, so no per-entry length prefix is needed.
        for word in encode_pattern_key(&entry.pattern) {
            w.put_u64(word);
        }
        write_support(&mut w, &entry.support);
        write_tracker(&mut w, &entry.tracker);
    }
    w.into_bytes()
}

fn decode_level(
    payload: &[u8],
    k: usize,
    registry: &EventRegistry,
    num_granules: u64,
) -> Result<StreamLevel> {
    let mut r = ByteReader::new(payload, "level section");
    let stored_k = r.take_u64()?;
    if stored_k != k as u64 {
        return Err(r.fail(format_args!(
            "level k = {stored_k} where k = {k} was expected"
        )));
    }
    let count = r.take_u32()?;
    let key_len = k + k * (k - 1) / 2;
    let mut level = StreamLevel::new(k);
    level
        .entries
        .reserve(capped(count, r.remaining(), key_len * 8));
    for _ in 0..count {
        let mut key = Vec::with_capacity(key_len);
        for _ in 0..key_len {
            key.push(r.take_u64()?);
        }
        // `key` has exactly `key_len = k + k(k-1)/2` words, so this split
        // cannot fail; `split_at` keeps the decode path free of raw indexing.
        let (event_words, triple_words) = key.split_at(k);
        let events: Vec<EventLabel> = event_words
            .iter()
            .map(|&word| read_label(&r, word, registry))
            .collect::<Result<_>>()?;
        let triples = triple_words
            .iter()
            .map(|&word| {
                let triple = try_decode_triple(word).ok_or_else(|| {
                    r.fail(format_args!("key word {word:#x} is not a relation triple"))
                })?;
                if usize::from(triple.first.max(triple.second)) >= k {
                    return Err(r.fail(format_args!(
                        "triple indexes event {} of a {k}-pattern",
                        triple.first.max(triple.second)
                    )));
                }
                Ok(triple)
            })
            .collect::<Result<_>>()?;
        let pattern = TemporalPattern::from_parts(events, triples);
        if encode_pattern_key(&pattern) != key {
            return Err(r.fail("pattern key is not in canonical order"));
        }
        let support = read_support(&mut r, num_granules)?;
        let support_len =
            u32::try_from(support.len()).map_err(|_| r.fail("support length overflows u32"))?;
        let tracker = read_tracker(&mut r, support_len)?;
        let idx = u32::try_from(level.entries.len())
            .map_err(|_| r.fail("pattern count overflows u32"))?;
        if !level.groups.contains(event_words) {
            level.groups.insert(event_words.into());
        }
        if level.index.insert(key.into_boxed_slice(), idx).is_some() {
            return Err(r.fail("duplicate pattern key"));
        }
        level.entries.push(StreamPatternEntry {
            pattern,
            support,
            tracker,
        });
    }
    r.finish()?;
    Ok(level)
}

// ---------------------------------------------------------------------------
// Whole-miner encode / decode
// ---------------------------------------------------------------------------

fn encode_miner(miner: &StreamingMiner, checkpoint_id: u64) -> Vec<u8> {
    let mut out = Vec::new();
    write_header(&mut out, KIND_MINER);
    write_section(&mut out, SEC_CONFIG, &encode_config(&miner.config));
    write_section(&mut out, SEC_REGISTRY, &encode_registry(&miner.registry));
    let mut state = ByteWriter::new();
    state.put_u64(miner.num_granules);
    state.put_u64(miner.batches_absorbed);
    state.put_u64(checkpoint_id);
    write_section(&mut out, SEC_STATE, state.bytes());
    write_section(&mut out, SEC_EVENTS, &encode_events(miner));
    for level in &miner.levels {
        write_section(&mut out, SEC_LEVEL, &encode_level(level));
    }
    out
}

fn effective_config(stored: &StpmConfig, requested: Option<&StpmConfig>) -> Result<StpmConfig> {
    let Some(req) = requested else {
        return Ok(stored.clone());
    };
    if req.epsilon != stored.epsilon {
        return Err(Error::SnapshotConfigMismatch {
            parameter: "epsilon",
            reason: format!(
                "snapshot was absorbed with ε = {}, restore requested ε = {} — the relation \
                 classification baked into the interned patterns cannot be replayed",
                stored.epsilon, req.epsilon
            ),
        });
    }
    if req.min_overlap.max(1) != stored.min_overlap.max(1) {
        return Err(Error::SnapshotConfigMismatch {
            parameter: "minOverlap",
            reason: format!(
                "snapshot was absorbed with d_o = {}, restore requested d_o = {} — overlap \
                 verdicts baked into the interned patterns cannot be replayed",
                stored.min_overlap.max(1),
                req.min_overlap.max(1)
            ),
        });
    }
    if req.max_pattern_len != stored.max_pattern_len {
        return Err(Error::SnapshotConfigMismatch {
            parameter: "maxPatternLen",
            reason: format!(
                "snapshot holds levels up to k = {}, restore requested up to k = {}",
                stored.max_pattern_len, req.max_pattern_len
            ),
        });
    }
    Ok(req.clone())
}

fn decode_miner(bytes: &[u8], requested: Option<&StpmConfig>) -> Result<StreamingMiner> {
    let mut cursor = parse_header(bytes, KIND_MINER)?;
    let stored_config = decode_config(read_section(&mut cursor, SEC_CONFIG)?)?;
    let registry = decode_registry(read_section(&mut cursor, SEC_REGISTRY)?)?;
    let state = read_section(&mut cursor, SEC_STATE)?;
    let mut r = ByteReader::new(state, "state section");
    let num_granules = r.take_u64()?;
    let batches_absorbed = r.take_u64()?;
    let checkpoint_id = r.take_u64()?;
    r.finish()?;
    let config = effective_config(&stored_config, requested)?;
    config.resolve(1)?;
    let resolved = if num_granules > 0 {
        Some(config.resolve(num_granules)?)
    } else {
        None
    };
    let events = decode_events(
        read_section(&mut cursor, SEC_EVENTS)?,
        &registry,
        num_granules,
    )?;
    let mut levels = Vec::with_capacity(config.max_pattern_len.saturating_sub(1));
    for k in 2..=config.max_pattern_len {
        levels.push(decode_level(
            read_section(&mut cursor, SEC_LEVEL)?,
            k,
            &registry,
            num_granules,
        )?);
    }
    if !cursor.is_empty() {
        return Err(corrupt(format!(
            "{} trailing bytes after the last section",
            cursor.len()
        )));
    }
    let mut miner = StreamingMiner {
        config,
        registry,
        resolved,
        num_granules,
        events,
        levels,
        append_time: Duration::ZERO,
        batches_absorbed,
        checkpoint_id,
        granules_at_snapshot: num_granules,
    };
    // A restore may legally request different *seasonality* thresholds than
    // the snapshot was taken under; replay every tracker from its stored
    // support — the same exactness fallback as a fractional threshold
    // crossing a granule-count boundary mid-stream.
    if let (Some(new), true) = (miner.resolved, requested.is_some()) {
        let old = stored_config.resolve(num_granules)?;
        let seasonal_changed = old.max_period != new.max_period
            || old.min_density != new.min_density
            || old.dist_min != new.dist_min
            || old.dist_max != new.dist_max;
        if seasonal_changed {
            // lint:allow(determinism): per-entry rebuild is independent of visit order
            for entry in miner.events.values_mut() {
                entry.tracker = SeasonTracker::rebuild(&entry.support, &new);
            }
            for level in &mut miner.levels {
                for entry in &mut level.entries {
                    entry.tracker = SeasonTracker::rebuild(&entry.support, &new);
                }
            }
        }
    }
    Ok(miner)
}

// ---------------------------------------------------------------------------
// Public miner API
// ---------------------------------------------------------------------------

/// Observability summary of a miner's durable-state position — what has been
/// absorbed, what has been snapshotted, and what a crash without a WAL would
/// lose. Obtained from [`StreamingMiner::checkpoint_meta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Id of the most recent snapshot taken of this state (0 = none yet).
    pub checkpoint_id: u64,
    /// Granules absorbed into the state so far.
    pub granules_absorbed: u64,
    /// Distinct patterns interned across every level.
    pub patterns_interned: u64,
    /// Granules absorbed since the most recent snapshot.
    pub pending_granules: u64,
    /// Transient I/O retries absorbed by the persistence layer so far.
    ///
    /// Always zero for a bare miner (which performs no I/O of its own);
    /// the streaming pipeline overlays its retry counter here. Not part of
    /// the wire format — the counter restarts at zero after a restore.
    pub io_retries: u64,
}

impl StreamingMiner {
    /// Serializes the full persistent state to `out` as one version-1
    /// snapshot carrying the *next* checkpoint id, so the written state (and
    /// a miner restored from it) continues the id sequence. The id bump and
    /// the pending-granule watermark are committed only once the writer
    /// accepted every byte: after a successful snapshot
    /// [`StreamingMiner::pending_granules`] is zero, while after a failed one
    /// [`StreamingMiner::checkpoint_meta`] still reports the truth (nothing
    /// was persisted), so a caller gating re-snapshots on `pending_granules`
    /// retries instead of skipping.
    ///
    /// # Errors
    /// [`Error::SnapshotIo`] when the writer fails.
    pub fn snapshot(&mut self, out: &mut impl Write) -> Result<()> {
        out.write_all(&self.encode_snapshot())
            .map_err(|e| Error::snapshot_io(&e))?;
        self.mark_snapshot_durable();
        Ok(())
    }

    /// Encodes the state exactly as [`StreamingMiner::snapshot`] would —
    /// under the next checkpoint id — without committing that id. Pair with
    /// [`StreamingMiner::mark_snapshot_durable`] once the bytes have
    /// verifiably reached durable storage; callers that write to fallible or
    /// non-durable sinks use this split so an I/O failure between the two
    /// calls leaves the checkpoint accounting untouched.
    #[must_use]
    pub fn encode_snapshot(&self) -> Vec<u8> {
        encode_miner(self, self.checkpoint_id + 1)
    }

    /// Commits the checkpoint bump of the most recent
    /// [`StreamingMiner::encode_snapshot`]: the checkpoint id advances and
    /// [`StreamingMiner::pending_granules`] drops to zero. Call only after
    /// the encoded bytes are durable — committing earlier makes a crash
    /// window invisible to `pending_granules`-driven re-snapshot logic.
    pub fn mark_snapshot_durable(&mut self) {
        self.checkpoint_id += 1;
        self.granules_at_snapshot = self.num_granules;
    }

    /// Restores a miner from a snapshot produced by
    /// [`StreamingMiner::snapshot`], under the configuration stored in it.
    /// Wall-clock timing counters restart at zero; everything else — and
    /// every byte of every later snapshot — is identical to the miner the
    /// snapshot was taken from.
    ///
    /// # Errors
    /// [`Error::SnapshotIo`] when the reader fails; [`Error::SnapshotVersion`]
    /// for a future format version; [`Error::SnapshotCorrupt`] for truncated,
    /// bit-flipped or structurally invalid bytes (this function never
    /// panics on corrupt input).
    pub fn restore(input: &mut impl Read) -> Result<Self> {
        let mut bytes = Vec::new();
        input
            .read_to_end(&mut bytes)
            .map_err(|e| Error::snapshot_io(&e))?;
        decode_miner(&bytes, None)
    }

    /// Restores a miner from a snapshot under a *requested* configuration
    /// instead of the stored one. Parameters that shaped the absorbed state
    /// (ε, `d_o`, `maxPatternLen`) must match; seasonality thresholds may
    /// differ, in which case every season tracker is replayed from its
    /// stored support under the new thresholds.
    ///
    /// # Errors
    /// As [`StreamingMiner::restore`], plus
    /// [`Error::SnapshotConfigMismatch`] for an incompatible request.
    pub fn restore_with(config: &StpmConfig, input: &mut impl Read) -> Result<Self> {
        let mut bytes = Vec::new();
        input
            .read_to_end(&mut bytes)
            .map_err(|e| Error::snapshot_io(&e))?;
        decode_miner(&bytes, Some(config))
    }

    /// The miner's durable-state position: checkpoint id, granules absorbed,
    /// patterns interned, and granules pending since the last snapshot.
    #[must_use]
    pub fn checkpoint_meta(&self) -> CheckpointMeta {
        CheckpointMeta {
            checkpoint_id: self.checkpoint_id,
            granules_absorbed: self.num_granules,
            patterns_interned: self.patterns_interned(),
            pending_granules: self.pending_granules(),
            io_retries: 0,
        }
    }

    /// Encodes the state for a *spill* — an eviction of the live miner to a
    /// cold file under a memory budget — carrying the **current** checkpoint
    /// id, unlike [`StreamingMiner::encode_snapshot`] which carries the next
    /// one. A spill is a cache of live memory, not a checkpoint: it must not
    /// advance the id sequence or touch the pending-granule watermark, or a
    /// later real snapshot would disagree byte-for-byte with an
    /// unconstrained run.
    #[must_use]
    pub fn encode_spill(&self) -> Vec<u8> {
        encode_miner(self, self.checkpoint_id)
    }

    /// Rebuilds a miner from [`StreamingMiner::encode_spill`] bytes,
    /// restoring the pending-granule watermark that a plain restore resets
    /// (a restored *snapshot* has nothing pending by definition; a
    /// rehydrated *spill* still owes `pending_granules` to the next real
    /// snapshot).
    ///
    /// # Errors
    /// As [`StreamingMiner::restore_with`], plus [`Error::SnapshotCorrupt`]
    /// when `pending_granules` exceeds the absorbed granule count.
    pub fn rehydrate(config: &StpmConfig, bytes: &[u8], pending_granules: u64) -> Result<Self> {
        let mut miner = decode_miner(bytes, Some(config))?;
        if pending_granules > miner.num_granules {
            return Err(Error::SnapshotCorrupt {
                reason: format!(
                    "spill metadata claims {pending_granules} pending granules but the spill \
                     holds only {}",
                    miner.num_granules
                ),
            });
        }
        miner.granules_at_snapshot = miner.num_granules - pending_granules;
        Ok(miner)
    }
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

/// The 12-byte WAL file header (magic + version).
#[must_use]
pub fn wal_header() -> [u8; 12] {
    let mut header = [0u8; 12];
    header[..8].copy_from_slice(&WAL_MAGIC);
    header[8..].copy_from_slice(&WAL_VERSION.to_le_bytes());
    header
}

/// Frames one opaque `payload` as a WAL record (length, CRC, payload).
#[must_use]
pub fn wal_encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The durable prefix of a write-ahead log, as recovered by [`wal_read`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalContents {
    /// The payloads of every intact record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the durable prefix (header + intact records) —
    /// truncate the log file to this length to drop a torn tail.
    pub durable_len: u64,
    /// Whether the whole input was durable (`false` when a torn or corrupt
    /// tail was dropped).
    pub clean: bool,
}

/// Reads a write-ahead log, recovering the longest durable prefix. An empty
/// input is a valid empty log. A torn or corrupt tail (the expected result
/// of a crash mid-append) is *not* an error: reading stops there, `clean`
/// is `false`, and `durable_len` says how much to keep.
///
/// # Errors
/// [`Error::SnapshotCorrupt`] when the header itself is damaged (the file is
/// not a WAL); [`Error::SnapshotVersion`] for a future WAL version.
pub fn wal_read(bytes: &[u8]) -> Result<WalContents> {
    if bytes.is_empty() {
        return Ok(WalContents {
            records: Vec::new(),
            durable_len: 0,
            clean: true,
        });
    }
    if bytes.len() < 12 {
        return Err(corrupt(format!(
            "WAL header truncated: {} bytes, need 12",
            bytes.len()
        )));
    }
    let mut r = ByteReader::new(bytes, "WAL header");
    let magic: [u8; 8] = r.take_array()?;
    if magic != WAL_MAGIC {
        return Err(corrupt("WAL magic bytes do not spell STPMWAL1"));
    }
    let version = r.take_u32()?;
    if version != WAL_VERSION {
        return Err(Error::SnapshotVersion {
            found: version,
            supported: WAL_VERSION,
        });
    }
    // Past the header, any parse failure is a torn tail, not an error: the
    // durable prefix ends at the last record that read back whole.
    let mut records = Vec::new();
    let mut clean = true;
    let mut durable = r.pos;
    while r.remaining() > 0 {
        let Ok(len) = r.take_u64() else {
            clean = false;
            break;
        };
        let Ok(stored) = r.take_u32() else {
            clean = false;
            break;
        };
        let Ok(len) = usize::try_from(len) else {
            clean = false;
            break;
        };
        let Ok(payload) = r.take(len) else {
            clean = false;
            break;
        };
        if crc32(payload) != stored {
            clean = false;
            break;
        }
        records.push(payload.to_vec());
        durable = r.pos;
    }
    Ok(WalContents {
        records,
        durable_len: durable as u64,
        clean,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_timeseries::{Alphabet, SymbolicDatabase, SymbolicSeries};

    fn sample_dseq() -> stpm_timeseries::SequenceDatabase {
        let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
        let c = SymbolicSeries::from_labels(
            "C",
            &[
                "1", "1", "0", "1", "0", "0", "1", "1", "0", "0", "0", "0", "1", "1", "0", "1",
                "0", "1", "1", "1", "0", "0", "1", "0",
            ],
            alphabet.clone(),
        )
        .unwrap();
        let d = SymbolicSeries::from_labels(
            "D",
            &[
                "1", "0", "0", "1", "0", "0", "1", "1", "0", "1", "1", "0", "1", "0", "0", "0",
                "1", "1", "1", "0", "0", "1", "1", "0",
            ],
            alphabet,
        )
        .unwrap();
        let dsyb = SymbolicDatabase::new(vec![c, d]).unwrap();
        dsyb.to_sequence_database(3).unwrap()
    }

    fn sample_config() -> StpmConfig {
        StpmConfig {
            max_period: Threshold::Absolute(2),
            min_density: Threshold::Absolute(2),
            dist_interval: (1, 10),
            min_season: 1,
            ..StpmConfig::default()
        }
    }

    fn mined_miner() -> StreamingMiner {
        let dseq = sample_dseq();
        let config = sample_config();
        let mut miner = StreamingMiner::new(&config, dseq.registry()).unwrap();
        miner.append_batch(dseq.sequences()).unwrap();
        miner
    }

    fn snapshot_bytes(miner: &mut StreamingMiner) -> Vec<u8> {
        let mut bytes = Vec::new();
        miner.snapshot(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn crc32_matches_the_ieee_test_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn sliced_crc32_agrees_with_the_bytewise_definition_at_every_length() {
        fn bytewise(bytes: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in bytes {
                crc = (crc >> 8) ^ CRC32_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
            }
            crc ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), bytewise(&data[..len]), "length {len}");
        }
    }

    #[test]
    fn byte_writer_and_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(1000);
        w.put_u32(70_000);
        w.put_u64(1 << 40);
        w.put_f64(0.005);
        w.put_str("hello κόσμε");
        let mut r = ByteReader::new(w.bytes(), "test");
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u16().unwrap(), 1000);
        assert_eq!(r.take_u32().unwrap(), 70_000);
        assert_eq!(r.take_u64().unwrap(), 1 << 40);
        assert_eq!(r.take_f64().unwrap(), 0.005);
        assert_eq!(r.take_str().unwrap(), "hello κόσμε");
        r.finish().unwrap();
    }

    #[test]
    fn reader_overruns_are_typed_errors() {
        let mut r = ByteReader::new(&[1, 2, 3], "tiny");
        assert!(matches!(r.take_u64(), Err(Error::SnapshotCorrupt { .. })));
        let mut r = ByteReader::new(&[0xFF, 0xFF, 0xFF, 0xFF], "str");
        assert!(r.take_str().is_err());
    }

    #[test]
    fn snapshot_restore_round_trips_byte_identically() {
        let mut miner = mined_miner();
        let bytes = snapshot_bytes(&mut miner);
        let mut restored = StreamingMiner::restore(&mut &bytes[..]).unwrap();
        assert_eq!(restored.num_granules(), miner.num_granules());
        assert_eq!(restored.patterns_interned(), miner.patterns_interned());
        assert_eq!(restored.checkpoint_meta(), miner.checkpoint_meta());
        // Both sides take their next snapshot: the bytes must be identical.
        assert_eq!(snapshot_bytes(&mut miner), snapshot_bytes(&mut restored));
        // And the reports they mine are identical.
        let a = miner.checkpoint().unwrap();
        let b = restored.checkpoint().unwrap();
        assert_eq!(a.total_patterns(), b.total_patterns());
    }

    #[test]
    fn restore_then_append_matches_uninterrupted_run() {
        let dseq = sample_dseq();
        let config = sample_config();
        let mut uninterrupted = StreamingMiner::new(&config, dseq.registry()).unwrap();
        uninterrupted.append_batch(&dseq.sequences()[..3]).unwrap();
        let snap = snapshot_bytes(&mut uninterrupted);
        uninterrupted.append_batch(&dseq.sequences()[3..]).unwrap();

        let mut recovered = StreamingMiner::restore(&mut &snap[..]).unwrap();
        recovered.append_batch(&dseq.sequences()[3..]).unwrap();

        assert_eq!(
            snapshot_bytes(&mut uninterrupted),
            snapshot_bytes(&mut recovered)
        );
    }

    #[test]
    fn checkpoint_meta_tracks_pending_granules() {
        let dseq = sample_dseq();
        let config = sample_config();
        let mut miner = StreamingMiner::new(&config, dseq.registry()).unwrap();
        miner.append_batch(&dseq.sequences()[..3]).unwrap();
        let meta = miner.checkpoint_meta();
        assert_eq!(meta.checkpoint_id, 0);
        assert_eq!(meta.granules_absorbed, 3);
        assert_eq!(meta.pending_granules, 3);
        let _ = snapshot_bytes(&mut miner);
        let meta = miner.checkpoint_meta();
        assert_eq!(meta.checkpoint_id, 1);
        assert_eq!(meta.pending_granules, 0);
        miner.append_batch(&dseq.sequences()[3..5]).unwrap();
        assert_eq!(miner.checkpoint_meta().pending_granules, 2);
    }

    #[test]
    fn a_failed_snapshot_write_leaves_the_checkpoint_accounting_untouched() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut miner = mined_miner();
        let before = miner.checkpoint_meta();
        assert!(before.pending_granules > 0);
        let err = miner.snapshot(&mut FailingWriter).unwrap_err();
        assert!(matches!(err, Error::SnapshotIo { .. }));
        // Nothing was persisted, so nothing may claim to be: a caller gating
        // re-snapshots on `pending_granules` must see the truth and retry.
        assert_eq!(miner.checkpoint_meta(), before);
        // The retry produces exactly what a never-failed first snapshot
        // would have.
        let retried = snapshot_bytes(&mut miner);
        let mut clean = mined_miner();
        assert_eq!(retried, snapshot_bytes(&mut clean));
        assert_eq!(miner.checkpoint_meta().checkpoint_id, 1);
    }

    #[test]
    fn spill_rehydrate_preserves_checkpoint_accounting_and_snapshot_bytes() {
        let dseq = sample_dseq();
        let config = sample_config();
        let mut unconstrained = StreamingMiner::new(&config, dseq.registry()).unwrap();
        unconstrained.append_batch(&dseq.sequences()[..3]).unwrap();
        let _ = snapshot_bytes(&mut unconstrained);
        unconstrained.append_batch(&dseq.sequences()[3..5]).unwrap();
        let meta = unconstrained.checkpoint_meta();
        assert_eq!((meta.checkpoint_id, meta.pending_granules), (1, 2));

        // Spill mid-stream: the cold bytes carry the *current* id, and
        // rehydration restores the pending watermark exactly.
        let spill = unconstrained.encode_spill();
        let mut rehydrated =
            StreamingMiner::rehydrate(&config, &spill, meta.pending_granules).unwrap();
        assert_eq!(rehydrated.checkpoint_meta(), meta);

        // Both sides finish the stream; the next real snapshot must be
        // byte-identical, or a budget-constrained run would diverge.
        unconstrained.append_batch(&dseq.sequences()[5..]).unwrap();
        rehydrated.append_batch(&dseq.sequences()[5..]).unwrap();
        assert_eq!(
            snapshot_bytes(&mut unconstrained),
            snapshot_bytes(&mut rehydrated)
        );

        // A spill claiming more pending granules than it holds is corrupt.
        let err = StreamingMiner::rehydrate(&config, &spill, 1_000).unwrap_err();
        assert!(matches!(err, Error::SnapshotCorrupt { .. }));
    }

    #[test]
    fn empty_miner_round_trips() {
        let dseq = sample_dseq();
        let config = sample_config();
        let mut miner = StreamingMiner::new(&config, dseq.registry()).unwrap();
        let bytes = snapshot_bytes(&mut miner);
        let mut restored = StreamingMiner::restore(&mut &bytes[..]).unwrap();
        assert_eq!(restored.num_granules(), 0);
        restored.append_batch(dseq.sequences()).unwrap();
        let mut direct = StreamingMiner::new(&config, dseq.registry()).unwrap();
        direct.append_batch(dseq.sequences()).unwrap();
        let _ = snapshot_bytes(&mut direct); // align checkpoint ids (1 each)
        assert_eq!(snapshot_bytes(&mut restored), snapshot_bytes(&mut direct));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let mut miner = mined_miner();
        let bytes = snapshot_bytes(&mut miner);
        for len in 0..bytes.len() {
            let result = StreamingMiner::restore(&mut &bytes[..len]);
            assert!(
                matches!(
                    result,
                    Err(Error::SnapshotCorrupt { .. } | Error::SnapshotVersion { .. })
                ),
                "truncation to {len}/{} bytes must fail with a typed error",
                bytes.len()
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let mut miner = mined_miner();
        let bytes = snapshot_bytes(&mut miner);
        for offset in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[offset] ^= 1 << (offset % 8);
            let result = StreamingMiner::restore(&mut &flipped[..]);
            assert!(
                result.is_err(),
                "flipping bit {} of byte {offset} must be detected",
                offset % 8
            );
        }
    }

    #[test]
    fn foreign_headers_are_typed_errors() {
        let mut miner = mined_miner();
        let bytes = snapshot_bytes(&mut miner);

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(matches!(
            StreamingMiner::restore(&mut &wrong_magic[..]),
            Err(Error::SnapshotCorrupt { .. })
        ));

        let mut future_version = bytes.clone();
        future_version[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            StreamingMiner::restore(&mut &future_version[..]),
            Err(Error::SnapshotVersion {
                found: 99,
                supported: SNAPSHOT_VERSION
            })
        ));

        let mut wrong_kind = bytes;
        wrong_kind[12..16].copy_from_slice(&KIND_PIPELINE.to_le_bytes());
        assert!(matches!(
            StreamingMiner::restore(&mut &wrong_kind[..]),
            Err(Error::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut miner = mined_miner();
        let mut bytes = snapshot_bytes(&mut miner);
        bytes.push(0);
        assert!(matches!(
            StreamingMiner::restore(&mut &bytes[..]),
            Err(Error::SnapshotCorrupt { .. })
        ));
    }

    #[test]
    fn restore_with_rejects_shape_changing_config() {
        let mut miner = mined_miner();
        let bytes = snapshot_bytes(&mut miner);

        let mut epsilon = sample_config();
        epsilon.epsilon += 1;
        assert!(matches!(
            StreamingMiner::restore_with(&epsilon, &mut &bytes[..]),
            Err(Error::SnapshotConfigMismatch {
                parameter: "epsilon",
                ..
            })
        ));

        let mut overlap = sample_config();
        overlap.min_overlap = 5;
        assert!(matches!(
            StreamingMiner::restore_with(&overlap, &mut &bytes[..]),
            Err(Error::SnapshotConfigMismatch {
                parameter: "minOverlap",
                ..
            })
        ));

        let mut len = sample_config();
        len.max_pattern_len = 2;
        assert!(matches!(
            StreamingMiner::restore_with(&len, &mut &bytes[..]),
            Err(Error::SnapshotConfigMismatch {
                parameter: "maxPatternLen",
                ..
            })
        ));
    }

    #[test]
    fn restore_with_matching_config_is_identical_to_plain_restore() {
        let mut miner = mined_miner();
        let bytes = snapshot_bytes(&mut miner);
        let mut a = StreamingMiner::restore(&mut &bytes[..]).unwrap();
        let mut b = StreamingMiner::restore_with(&sample_config(), &mut &bytes[..]).unwrap();
        assert_eq!(snapshot_bytes(&mut a), snapshot_bytes(&mut b));
    }

    #[test]
    fn restore_with_replays_trackers_on_seasonal_change() {
        let dseq = sample_dseq();
        let mut miner = StreamingMiner::new(&sample_config(), dseq.registry()).unwrap();
        miner.append_batch(dseq.sequences()).unwrap();
        let bytes = snapshot_bytes(&mut miner);

        let mut relaxed = sample_config();
        relaxed.max_period = Threshold::Absolute(3);
        relaxed.min_density = Threshold::Absolute(3);
        let restored = StreamingMiner::restore_with(&relaxed, &mut &bytes[..]).unwrap();

        // A fresh miner run entirely under the relaxed thresholds must agree.
        let mut direct = StreamingMiner::new(&relaxed, dseq.registry()).unwrap();
        direct.append_batch(dseq.sequences()).unwrap();
        let a = restored.checkpoint().unwrap();
        let b = direct.checkpoint().unwrap();
        assert_eq!(a.total_patterns(), b.total_patterns());
        assert_eq!(
            crate::report::canonical_result_set(a.report().events(), a.report().patterns()),
            crate::report::canonical_result_set(b.report().events(), b.report().patterns())
        );
    }

    #[test]
    fn wal_round_trips_and_recovers_the_durable_prefix() {
        let mut wal: Vec<u8> = wal_header().to_vec();
        let payloads: [&[u8]; 3] = [b"first", b"", b"third record"];
        for p in payloads {
            wal.extend_from_slice(&wal_encode_record(p));
        }
        let contents = wal_read(&wal).unwrap();
        assert!(contents.clean);
        assert_eq!(contents.durable_len, wal.len() as u64);
        assert_eq!(contents.records.len(), 3);
        assert_eq!(contents.records[0], b"first");
        assert_eq!(contents.records[2], b"third record");

        // A torn tail (crash mid-append) keeps the durable prefix.
        let torn = &wal[..wal.len() - 3];
        let contents = wal_read(torn).unwrap();
        assert!(!contents.clean);
        assert_eq!(contents.records.len(), 2);
        let keep = usize::try_from(contents.durable_len).unwrap();
        assert!(wal_read(&torn[..keep]).unwrap().clean);

        // A corrupt byte inside a record drops it and everything after.
        let mut flipped = wal.clone();
        let second_record_payload = 12 + 12 + 5 + 12; // header + rec1 + rec2 frame
        flipped[second_record_payload + 1] ^= 0x40; // inside record 3's frame
        let contents = wal_read(&flipped).unwrap();
        assert!(!contents.clean);
        assert!(contents.records.len() < 3);

        // Empty input is a valid empty log; header-only too.
        assert!(wal_read(&[]).unwrap().clean);
        let header_only = wal_header();
        let contents = wal_read(&header_only).unwrap();
        assert!(contents.clean);
        assert_eq!(contents.durable_len, 12);
    }

    #[test]
    fn wal_header_damage_is_a_typed_error() {
        assert!(matches!(
            wal_read(b"short"),
            Err(Error::SnapshotCorrupt { .. })
        ));
        let mut bad_magic = wal_header();
        bad_magic[0] = b'X';
        assert!(matches!(
            wal_read(&bad_magic),
            Err(Error::SnapshotCorrupt { .. })
        ));
        let mut future = wal_header();
        future[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            wal_read(&future),
            Err(Error::SnapshotVersion {
                found: 7,
                supported: WAL_VERSION
            })
        ));
    }

    #[test]
    fn wal_truncations_and_bit_flips_never_panic() {
        let mut wal: Vec<u8> = wal_header().to_vec();
        wal.extend_from_slice(&wal_encode_record(b"alpha"));
        wal.extend_from_slice(&wal_encode_record(b"beta"));
        for len in 0..wal.len() {
            let _ = wal_read(&wal[..len]); // must not panic
        }
        for offset in 0..wal.len() {
            let mut flipped = wal.clone();
            flipped[offset] ^= 1 << (offset % 8);
            let _ = wal_read(&flipped); // must not panic
        }
    }
}
