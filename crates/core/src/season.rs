//! Near support sets, seasons and the seasonality check
//! (Definitions 3.13–3.15).
//!
//! Given the support set of an event or pattern, the season-extraction
//! procedure is:
//!
//! 1. split the support set into *maximal near support sets* — maximal runs
//!    whose consecutive granules are at most `maxPeriod` apart
//!    (Definition 3.13);
//! 2. walk the near support sets left to right; granules closer than
//!    `distmin` to the end of the previously accepted season are dropped
//!    (this reproduces the paper's worked example where `H_9` is excluded
//!    from the second season of `M:1 ≽ N:1` because of `distmin = 4`);
//! 3. a trimmed near support set whose density reaches `minDensity` becomes a
//!    *season* (Definition 3.14);
//! 4. the pattern's seasonal-occurrence count `seasons(P)` is the longest
//!    chain of consecutive seasons whose pairwise distances lie inside
//!    `distInterval` (Definition 3.15).
//!
//! # Span-based representation
//!
//! Every season is a *contiguous* sub-range of the sorted support set: a near
//! support set is a maximal run, and the `distmin` trimming only ever drops a
//! prefix of it. One shared walker exploits that to run the whole procedure
//! allocation-free over index spans, computing the compliant-chain length
//! incrementally as seasons are accepted. The miner's hot path calls
//! the early-exit [`support_is_frequent`] (or the exact [`seasons_count`]) on
//! every candidate and materialises a [`Seasons`] — a concatenated granule
//! buffer plus one index span per season — only for the patterns that survive
//! `minSeason`.
//!
//! # Tail extension (streaming)
//!
//! The walker is a left-to-right online algorithm: its entire state is the
//! previously accepted season's end, the chain counters, and the still-open
//! tail run. [`SeasonTracker`] reifies exactly that state so an append-only
//! support set can *extend* its seasons instead of rebuilding them: pushing a
//! new tail granule is O(1), and only the seasons touching the tail window
//! can grow or split — everything already finalized (every span whose run was
//! closed by a `maxPeriod` gap) is immutable. The streaming miner keeps one
//! tracker per event and per candidate pattern; a
//! [`snapshot`](SeasonTracker::snapshot) of a tracker is byte-identical to
//! [`find_seasons`] over the full accumulated support, which is the invariant
//! the streaming/batch equivalence tests pin down. Because the whole walker
//! state is those few plain fields, a tracker is also trivially durable: the
//! [`snapshot`](crate::snapshot) persistence subsystem serializes it verbatim
//! and restores it bit-for-bit, and [`SeasonTracker::rebuild`] doubles as the
//! exactness fallback when a restore changes the resolved seasonality
//! thresholds.

use crate::config::ResolvedConfig;
use stpm_timeseries::GranulePos;

/// The seasons of an event or pattern, together with the derived
/// seasonal-occurrence count.
///
/// Seasons are stored span-based: one flat buffer holds the granules of every
/// season back to back, and each season is an index range into it. Accessors
/// hand out `&[GranulePos]` slices; nothing is re-allocated per call.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Seasons {
    /// The granules of every season, concatenated in chronological order.
    granules: Vec<GranulePos>,
    /// Half-open index ranges into `granules`, one per season.
    spans: Vec<(u32, u32)>,
    chain_len: u64,
}

impl Seasons {
    /// Number of seasons.
    #[must_use]
    pub fn num_seasons(&self) -> usize {
        self.spans.len()
    }

    /// The granules of season `idx` (seasons are in chronological order).
    ///
    /// # Panics
    /// Panics when `idx >= num_seasons()`.
    #[must_use]
    pub fn season(&self, idx: usize) -> &[GranulePos] {
        let (start, end) = self.spans[idx];
        &self.granules[start as usize..end as usize]
    }

    /// The seasons, in chronological order, as granule slices.
    pub fn seasons(&self) -> impl ExactSizeIterator<Item = &[GranulePos]> + '_ {
        self.spans
            .iter()
            .map(|&(start, end)| &self.granules[start as usize..end as usize])
    }

    /// The first season, if any.
    #[must_use]
    pub fn first_season(&self) -> Option<&[GranulePos]> {
        self.spans.first().map(|_| self.season(0))
    }

    /// The last season, if any.
    #[must_use]
    pub fn last_season(&self) -> Option<&[GranulePos]> {
        (!self.spans.is_empty()).then(|| self.season(self.spans.len() - 1))
    }

    /// `seasons(P)`: the longest chain of consecutive seasons whose pairwise
    /// distances fall inside `distInterval`.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.chain_len
    }

    /// Whether the pattern is frequent for the given `minSeason` threshold.
    #[must_use]
    pub fn is_frequent(&self, min_season: u64) -> bool {
        self.chain_len >= min_season
    }

    /// Density (granule count) of every season, allocation-free.
    pub fn densities(&self) -> impl ExactSizeIterator<Item = u64> + '_ {
        self.spans
            .iter()
            .map(|&(start, end)| u64::from(end - start))
    }

    /// Distances between consecutive seasons (Definition 3.14's `dist`):
    /// `next_start - prev_end` over chronologically ordered seasons. The
    /// extraction walks the sorted support set left to right, so a later
    /// season always starts after the previous one ends; the checked
    /// subtraction makes that invariant explicit instead of silently
    /// absorbing a violation the way `abs_diff` would.
    ///
    /// # Panics
    /// Panics when two consecutive seasons are not chronologically ordered —
    /// season extraction only ever produces ordered, disjoint seasons, so a
    /// violation is a construction bug, not data to tolerate.
    pub fn distances(&self) -> impl Iterator<Item = u64> + '_ {
        self.spans.windows(2).map(|w| {
            let prev_end = self.granules[w[0].1 as usize - 1];
            let next_start = self.granules[w[1].0 as usize];
            next_start
                .checked_sub(prev_end)
                .expect("seasons are chronologically ordered and disjoint")
        })
    }
}

/// Walks the trimmed, dense-enough seasons of `support` as half-open index
/// spans, reporting each through `on_season(start, end)` and returning the
/// longest compliant chain length — the single allocation-free core behind
/// [`find_seasons`], [`seasons_count`] and [`support_is_frequent`].
///
/// When `early_exit_at` is set, the walk stops as soon as the chain reaches
/// that length (the returned value is then a lower bound, sufficient for the
/// `>= minSeason` comparison of the frequency check).
// lint: hot-path
fn walk_season_spans<F: FnMut(usize, usize)>(
    support: &[GranulePos],
    config: &ResolvedConfig,
    early_exit_at: Option<u64>,
    mut on_season: F,
) -> u64 {
    let mut best = 0u64;
    let mut current = 0u64;
    // End granule of the previously *accepted* season (trimming and chain
    // distances are both measured against it).
    let mut prev_end: Option<GranulePos> = None;
    let mut i = 0usize;
    while i < support.len() {
        if early_exit_at.is_some_and(|target| best >= target) {
            return best;
        }
        // Maximal near support set: the run [i, j), found by the dispatched
        // run-detection kernel (AVX2 compares four consecutive gaps at a
        // time where detected; scalar twin otherwise).
        let j = crate::simd::kernels().run_end(support, i, config.max_period);
        // distmin trimming: drop leading granules closer than distmin to the
        // end of the previously accepted season.
        let mut s = i;
        if let Some(prev) = prev_end {
            while s < j && support[s].saturating_sub(prev) < config.dist_min {
                s += 1;
            }
        }
        if (j - s) as u64 >= config.min_density {
            current = match prev_end {
                Some(prev) => {
                    let dist = support[s] - prev;
                    if dist >= config.dist_min && dist <= config.dist_max {
                        current + 1
                    } else {
                        1
                    }
                }
                None => 1,
            };
            best = best.max(current);
            prev_end = Some(support[j - 1]);
            on_season(s, j);
        }
        i = j;
    }
    best
}

/// The still-open tail run of a [`SeasonTracker`]: the maximal near support
/// set the most recent granules belong to. It cannot be finalized until a
/// `maxPeriod` gap closes it (or a snapshot treats the stream end as one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingRun {
    /// Index (into the tracked support set) of the first granule kept after
    /// the `distmin` trimming — `None` while every granule of the run so far
    /// has been trimmed away.
    pub(crate) kept_from: Option<u32>,
    /// The granule at `kept_from` (the would-be season start).
    pub(crate) first_kept: GranulePos,
    /// The last granule of the run so far.
    pub(crate) last: GranulePos,
}

/// Incremental season-extraction state over an *append-only* support set —
/// the `walk_season_spans` walker with its loop state made persistent.
///
/// Push every support granule (with its index) in order; at any point the
/// tracker can answer the frequency check in O(1) and materialise the exact
/// [`Seasons`] of the accumulated support without re-walking it. Accepted
/// seasons are stored as index spans into the caller's support vector, so the
/// tracker never copies granules.
///
/// The tracker's transitions are pinned against the batch walker by property
/// tests: for every prefix of every support set,
/// `snapshot(support) == find_seasons(support)`.
///
/// The fields are crate-visible so the [`snapshot`](crate::snapshot)
/// persistence subsystem can serialize a tracker's loop state verbatim and
/// reconstruct it bit-for-bit on restore.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SeasonTracker {
    /// Accepted seasons as half-open index spans into the tracked support.
    pub(crate) spans: Vec<(u32, u32)>,
    /// Longest compliant chain over the accepted seasons.
    pub(crate) best: u64,
    /// Chain length ending at the most recently accepted season.
    pub(crate) current: u64,
    /// End granule of the most recently accepted season.
    pub(crate) prev_end: Option<GranulePos>,
    /// The still-open tail run.
    pub(crate) pending: Option<PendingRun>,
}

impl SeasonTracker {
    /// Replays a full support set through a fresh tracker — used when the
    /// resolved seasonality thresholds change (fractional thresholds crossing
    /// a granule-count boundary invalidate the incremental state).
    #[must_use]
    pub fn rebuild(support: &[GranulePos], config: &ResolvedConfig) -> Self {
        let mut tracker = Self::default();
        for (idx, &granule) in support.iter().enumerate() {
            tracker.push(idx, granule, config);
        }
        tracker
    }

    /// Whether `granule` survives the `distmin` trimming against the end of
    /// the previously accepted season.
    // lint: hot-path
    fn keeps(&self, granule: GranulePos, config: &ResolvedConfig) -> bool {
        self.prev_end
            .is_none_or(|prev| granule.saturating_sub(prev) >= config.dist_min)
    }

    /// Closes a run whose last granule is `support[end_idx - 1]`, accepting
    /// it as a season when its trimmed length reaches `minDensity` — the body
    /// of the batch walker's per-run step.
    fn finalize(&mut self, run: PendingRun, end_idx: u32, config: &ResolvedConfig) {
        let Some(kept_from) = run.kept_from else {
            return;
        };
        if u64::from(end_idx - kept_from) < config.min_density {
            return;
        }
        self.current = match self.prev_end {
            Some(prev) => {
                let dist = run.first_kept - prev;
                if dist >= config.dist_min && dist <= config.dist_max {
                    self.current + 1
                } else {
                    1
                }
            }
            None => 1,
        };
        self.best = self.best.max(self.current);
        self.prev_end = Some(run.last);
        self.spans.push((kept_from, end_idx));
    }

    /// Appends the support granule at index `idx` to the tracked set.
    /// Granules must arrive in strictly increasing order, with `idx` equal to
    /// the number of granules pushed so far.
    ///
    /// # Panics
    /// Panics when the support set outgrows `u32` indices.
    // lint: hot-path
    pub fn push(&mut self, idx: usize, granule: GranulePos, config: &ResolvedConfig) {
        let idx = u32::try_from(idx).expect("support length fits u32");
        let extends = self.pending.as_ref().is_some_and(|run| {
            debug_assert!(run.last < granule, "support granules must ascend");
            granule - run.last <= config.max_period
        });
        if extends {
            // The extend path never changes prev_end, so the trimming
            // decision can be made before the mutable borrow.
            let keep = self.keeps(granule, config);
            let run = self.pending.as_mut().expect("extends implies pending");
            run.last = granule;
            if run.kept_from.is_none() && keep {
                run.kept_from = Some(idx);
                run.first_kept = granule;
            }
        } else {
            if let Some(run) = self.pending.take() {
                self.finalize(run, idx, config);
            }
            // Trimming is checked after finalize: accepting the closed run
            // may have moved prev_end.
            let keep = self.keeps(granule, config);
            self.pending = Some(PendingRun {
                kept_from: keep.then_some(idx),
                first_kept: granule,
                last: granule,
            });
        }
    }

    /// The span and would-be chain length of the pending tail run if the
    /// stream ended now, or `None` when the tail is not (yet) a season.
    // lint: hot-path
    fn pending_span(&self, len: u32, config: &ResolvedConfig) -> Option<((u32, u32), u64)> {
        let run = self.pending.as_ref()?;
        let kept_from = run.kept_from?;
        if u64::from(len - kept_from) < config.min_density {
            return None;
        }
        let chain = match self.prev_end {
            Some(prev) => {
                let dist = run.first_kept - prev;
                if dist >= config.dist_min && dist <= config.dist_max {
                    self.current + 1
                } else {
                    1
                }
            }
            None => 1,
        };
        Some(((kept_from, len), chain))
    }

    /// `seasons(P)` of the accumulated support — the exact value
    /// [`seasons_count`] would return, in O(1).
    #[must_use]
    // lint: hot-path
    pub fn count(&self, support_len: usize, config: &ResolvedConfig) -> u64 {
        let len = u32::try_from(support_len).expect("support length fits u32");
        match self.pending_span(len, config) {
            Some((_, chain)) => self.best.max(chain),
            None => self.best,
        }
    }

    /// Whether the accumulated support passes the `minSeason` frequency
    /// check — the O(1) equivalent of [`support_is_frequent`].
    #[must_use]
    // lint: hot-path
    pub fn is_frequent(&self, support_len: usize, config: &ResolvedConfig) -> bool {
        self.count(support_len, config) >= config.min_season
    }

    /// Materialises the exact [`Seasons`] of the accumulated support.
    /// `support` must be the granules pushed so far, in push order.
    #[must_use]
    pub fn snapshot(&self, support: &[GranulePos], config: &ResolvedConfig) -> Seasons {
        let len = u32::try_from(support.len()).expect("support length fits u32");
        let pending = self.pending_span(len, config);
        let chain_len = match pending {
            Some((_, chain)) => self.best.max(chain),
            None => self.best,
        };
        let span_count = self.spans.len() + usize::from(pending.is_some());
        let mut granules = Vec::new();
        let mut spans = Vec::with_capacity(span_count);
        for &(s, e) in self
            .spans
            .iter()
            .chain(pending.iter().map(|(span, _)| span))
        {
            let start = u32::try_from(granules.len()).expect("season granules fit u32");
            granules.extend_from_slice(&support[s as usize..e as usize]);
            let end = u32::try_from(granules.len()).expect("season granules fit u32");
            spans.push((start, end));
        }
        Seasons {
            granules,
            spans,
            chain_len,
        }
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn footprint_bytes(&self) -> usize {
        self.spans.len() * std::mem::size_of::<(u32, u32)>()
    }
}

/// Extracts the seasons of a support set (described in the module docs),
/// materialising the span-based [`Seasons`]. The hot path should gate on
/// [`support_is_frequent`] first and only materialise survivors.
#[must_use]
pub fn find_seasons(support: &[GranulePos], config: &ResolvedConfig) -> Seasons {
    let mut granules: Vec<GranulePos> = Vec::new();
    let mut spans: Vec<(u32, u32)> = Vec::new();
    let chain_len = walk_season_spans(support, config, None, |s, e| {
        let start = u32::try_from(granules.len()).expect("season granules fit u32");
        granules.extend_from_slice(&support[s..e]);
        let end = u32::try_from(granules.len()).expect("season granules fit u32");
        spans.push((start, end));
    });
    let seasons = Seasons {
        granules,
        spans,
        chain_len,
    };
    crate::invariants::debug_validate!(seasons.validate());
    seasons
}

/// `seasons(P)` of a support set without materialising any season: the same
/// walk as [`find_seasons`], granule comparisons and an O(1) chain state
/// only.
#[must_use]
// lint: hot-path
pub fn seasons_count(support: &[GranulePos], config: &ResolvedConfig) -> u64 {
    walk_season_spans(support, config, None, |_, _| {})
}

/// Whether a support set passes the `minSeason` frequency check, with an
/// early exit as soon as the compliant chain reaches `minSeason` — the
/// allocation-free fast path the miner runs on every candidate.
#[must_use]
// lint: hot-path
pub fn support_is_frequent(support: &[GranulePos], config: &ResolvedConfig) -> bool {
    walk_season_spans(support, config, Some(config.min_season), |_, _| {}) >= config.min_season
}

/// Splits a sorted support set into its maximal near support sets: maximal
/// runs whose consecutive granules are at most `max_period` apart
/// (Definition 3.13).
#[must_use]
pub fn near_support_sets(support: &[GranulePos], max_period: u64) -> Vec<Vec<GranulePos>> {
    let mut sets = Vec::new();
    let mut current: Vec<GranulePos> = Vec::new();
    for &granule in support {
        match current.last() {
            Some(&last) if granule - last > max_period => {
                sets.push(std::mem::take(&mut current));
                current.push(granule);
            }
            _ => current.push(granule),
        }
    }
    if !current.is_empty() {
        sets.push(current);
    }
    sets
}

/// Seasonality summary of a support set: season count plus the seasons
/// themselves, kept as a named pair for report ergonomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeasonSet {
    /// The support set the seasons were derived from.
    pub support: Vec<GranulePos>,
    /// The derived seasons.
    pub seasons: Seasons,
}

impl SeasonSet {
    /// Derives the seasons of `support` under `config`.
    #[must_use]
    pub fn derive(support: Vec<GranulePos>, config: &ResolvedConfig) -> Self {
        let seasons = find_seasons(&support, config);
        Self { support, seasons }
    }
}

// ---------------------------------------------------------------------------
// Structural validation (see the `invariants` module).
// ---------------------------------------------------------------------------

use crate::invariants::{invariant, InvariantViolation};

impl Seasons {
    /// Validates the span layout: spans tile the granule buffer contiguously
    /// from 0, every season is non-empty, granules ascend strictly across
    /// the whole buffer (seasons are chronological and disjoint), and the
    /// compliant chain cannot exceed the season count.
    ///
    /// # Errors
    /// The first [`InvariantViolation`] found, if any.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        const S: &str = "Seasons";
        let mut expected_start = 0u32;
        for (idx, &(start, end)) in self.spans.iter().enumerate() {
            invariant!(
                S,
                start == expected_start,
                "season {idx} starts at {start}, expected {expected_start} (spans must tile the buffer)"
            );
            invariant!(S, start < end, "season {idx} is empty");
            expected_start = end;
        }
        invariant!(
            S,
            expected_start as usize == self.granules.len(),
            "spans cover {expected_start} granules, buffer holds {}",
            self.granules.len()
        );
        invariant!(
            S,
            self.granules.windows(2).all(|w| w[0] < w[1]),
            "season granules are not strictly ascending"
        );
        invariant!(
            S,
            self.chain_len <= self.spans.len() as u64,
            "compliant chain {} longer than the {} seasons",
            self.chain_len,
            self.spans.len()
        );
        Ok(())
    }
}

impl SeasonTracker {
    /// Cross-checks the incremental state against a fresh replay of
    /// `support` (the granules pushed so far, in push order): the tracker's
    /// loop state must be bit-identical to what [`SeasonTracker::rebuild`]
    /// derives, and its accepted spans must be monotone and in bounds.
    ///
    /// # Errors
    /// The first [`InvariantViolation`] found, if any.
    pub fn validate(
        &self,
        support: &[GranulePos],
        config: &ResolvedConfig,
    ) -> Result<(), InvariantViolation> {
        const S: &str = "SeasonTracker";
        let len = support.len();
        let mut prev_end = 0u32;
        for (idx, &(start, end)) in self.spans.iter().enumerate() {
            invariant!(
                S,
                start >= prev_end,
                "accepted span {idx} overlaps its predecessor"
            );
            invariant!(S, start < end, "accepted span {idx} is empty");
            invariant!(
                S,
                end as usize <= len,
                "accepted span {idx} ends past the {len}-granule support"
            );
            prev_end = end;
        }
        let replayed = Self::rebuild(support, config);
        invariant!(
            S,
            *self == replayed,
            "incremental state diverges from a fresh replay of the {len}-granule support"
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StpmConfig, Threshold};

    fn config(
        max_period: u64,
        min_density: u64,
        dist: (u64, u64),
        min_season: u64,
    ) -> ResolvedConfig {
        StpmConfig {
            max_period: Threshold::Absolute(max_period),
            min_density: Threshold::Absolute(min_density),
            dist_interval: dist,
            min_season,
            ..StpmConfig::default()
        }
        .resolve(100)
        .unwrap()
    }

    /// Collects the seasons into owned vectors for structural assertions.
    fn season_vecs(seasons: &Seasons) -> Vec<Vec<GranulePos>> {
        seasons.seasons().map(<[GranulePos]>::to_vec).collect()
    }

    /// Asserts that the allocation-free fast paths agree with the
    /// materialising extraction on `support`.
    fn assert_fast_paths_agree(support: &[GranulePos], cfg: &ResolvedConfig) {
        let seasons = find_seasons(support, cfg);
        assert_eq!(seasons_count(support, cfg), seasons.count());
        assert_eq!(
            support_is_frequent(support, cfg),
            seasons.is_frequent(cfg.min_season)
        );
    }

    #[test]
    fn near_support_sets_split_on_large_gaps() {
        // The paper's C:1 ≽ D:1 example: SUP = {1,2,3,7,8,11,12,14}, maxPeriod 2
        // yields {1,2,3}, {7,8}, {11,12,14}.
        let sets = near_support_sets(&[1, 2, 3, 7, 8, 11, 12, 14], 2);
        assert_eq!(sets, vec![vec![1, 2, 3], vec![7, 8], vec![11, 12, 14]]);
    }

    #[test]
    fn near_support_sets_edge_cases() {
        assert!(near_support_sets(&[], 2).is_empty());
        assert_eq!(near_support_sets(&[5], 2), vec![vec![5]]);
        assert_eq!(near_support_sets(&[1, 2, 3], 10), vec![vec![1, 2, 3]]);
        assert_eq!(
            near_support_sets(&[1, 5, 9], 2),
            vec![vec![1], vec![5], vec![9]]
        );
    }

    #[test]
    fn paper_example_c1_contains_d1() {
        // maxPeriod = 2, minDensity = 3: two of the three near support sets
        // are dense enough.
        let cfg = config(2, 3, (1, 20), 2);
        let support = [1, 2, 3, 7, 8, 11, 12, 14];
        let seasons = find_seasons(&support, &cfg);
        assert_eq!(seasons.num_seasons(), 2);
        assert_eq!(seasons.season(0), &[1, 2, 3]);
        assert_eq!(seasons.season(1), &[11, 12, 14]);
        assert_eq!(seasons.densities().collect::<Vec<_>>(), vec![3, 3]);
        // Distance between season 1 (ends at 3) and season 2 (starts at 11).
        assert_eq!(seasons.distances().collect::<Vec<_>>(), vec![8]);
        assert_eq!(seasons.count(), 2);
        assert!(seasons.is_frequent(2));
        assert!(!seasons.is_frequent(3));
        assert_fast_paths_agree(&support, &cfg);
    }

    #[test]
    fn paper_example_m1_contains_n1_with_distmin_trimming() {
        // Section IV-B worked example: SUP(M:1 ≽ N:1) = {1,3,4,5,6,9,10,11,13},
        // maxPeriod = 2, minDensity = 3, distInterval = [4, 10].
        // H9 must be trimmed from the second season because it is only 3
        // granules after the end of the first season.
        let cfg = config(2, 3, (4, 10), 2);
        let support = [1, 3, 4, 5, 6, 9, 10, 11, 13];
        let seasons = find_seasons(&support, &cfg);
        assert_eq!(seasons.num_seasons(), 2);
        assert_eq!(seasons.season(0), &[1, 3, 4, 5, 6]);
        assert_eq!(seasons.season(1), &[10, 11, 13]);
        assert_eq!(seasons.count(), 2);
        assert!(seasons.is_frequent(2));
        assert_fast_paths_agree(&support, &cfg);
    }

    #[test]
    fn paper_example_single_event_m1_is_not_frequent() {
        // SUP(M:1) = {1,2,3,4,5,6,8,9,10,11,13} forms a single season, so the
        // event is not frequent for minSeason = 2 — the anti-monotonicity
        // counter-example of Section IV-B.
        let cfg = config(2, 3, (4, 10), 2);
        let support = [1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 13];
        let seasons = find_seasons(&support, &cfg);
        assert_eq!(seasons.num_seasons(), 1);
        assert_eq!(seasons.count(), 1);
        assert!(!seasons.is_frequent(2));
        assert_fast_paths_agree(&support, &cfg);
    }

    #[test]
    fn sparse_near_sets_are_not_seasons() {
        let cfg = config(2, 3, (1, 20), 2);
        let seasons = find_seasons(&[1, 2, 10, 11], &cfg);
        assert_eq!(seasons.num_seasons(), 0);
        assert_eq!(seasons.count(), 0);
        assert!(!seasons.is_frequent(1));
        assert!(seasons.first_season().is_none());
        assert!(seasons.last_season().is_none());
        assert_fast_paths_agree(&[1, 2, 10, 11], &cfg);
    }

    #[test]
    fn chain_breaks_when_distance_exceeds_distmax() {
        // Three seasons at distances 5 and 50; with distmax = 10 only a chain
        // of two is compliant.
        let cfg = config(1, 2, (2, 10), 2);
        let support = vec![1, 2, 8, 9, 60, 61];
        let seasons = find_seasons(&support, &cfg);
        assert_eq!(seasons.num_seasons(), 3);
        assert_eq!(seasons.count(), 2);
        assert_fast_paths_agree(&support, &cfg);
    }

    #[test]
    fn chain_restarts_after_violation() {
        // Distances: 50 (violation), then 5, 5 (compliant) → chain of 3.
        let cfg = config(1, 2, (2, 10), 2);
        let support = vec![1, 2, 60, 61, 70, 71, 80, 81];
        let seasons = find_seasons(&support, &cfg);
        assert_eq!(seasons.num_seasons(), 4);
        assert_eq!(seasons.count(), 3);
        assert_fast_paths_agree(&support, &cfg);
    }

    #[test]
    fn trimming_can_reject_a_whole_near_set() {
        // The second near set lies entirely within distmin of the first
        // season's end, so it disappears.
        let cfg = config(1, 2, (10, 100), 1);
        let support = vec![1, 2, 5, 6];
        let seasons = find_seasons(&support, &cfg);
        assert_eq!(seasons.num_seasons(), 1);
        assert_eq!(seasons.season(0), &[1, 2]);
        assert_fast_paths_agree(&support, &cfg);
    }

    #[test]
    fn empty_support_yields_no_seasons() {
        let cfg = config(2, 2, (1, 10), 1);
        let seasons = find_seasons(&[], &cfg);
        assert_eq!(seasons.count(), 0);
        assert_eq!(seasons.num_seasons(), 0);
        assert_eq!(seasons.seasons().len(), 0);
        assert_eq!(seasons.distances().count(), 0);
        assert_eq!(seasons.densities().len(), 0);
        assert!(!seasons.is_frequent(1));
        assert_fast_paths_agree(&[], &cfg);
    }

    #[test]
    fn single_granule_support_forms_at_most_one_season() {
        // One granule: a season iff minDensity allows it; no distances either
        // way.
        let cfg = config(2, 1, (1, 10), 1);
        let seasons = find_seasons(&[7], &cfg);
        assert_eq!(season_vecs(&seasons), vec![vec![7]]);
        assert_eq!(seasons.count(), 1);
        assert_eq!(seasons.distances().count(), 0);
        assert_eq!(seasons.first_season(), Some(&[7u64][..]));
        assert_eq!(seasons.last_season(), Some(&[7u64][..]));
        assert_fast_paths_agree(&[7], &cfg);

        let dense = config(2, 2, (1, 10), 1);
        let seasons = find_seasons(&[7], &dense);
        assert_eq!(seasons.num_seasons(), 0);
        assert_eq!(seasons.count(), 0);
        assert_fast_paths_agree(&[7], &dense);
    }

    #[test]
    fn distances_are_chronological_gaps_not_absolute_differences() {
        // Seasons {1,2,3} and {11,12,14}: dist = 11 - 3 = 8, measured from
        // the end of the earlier season to the start of the later one.
        let cfg = config(2, 3, (1, 20), 2);
        let seasons = find_seasons(&[1, 2, 3, 7, 8, 11, 12, 14], &cfg);
        assert_eq!(seasons.distances().collect::<Vec<_>>(), vec![8]);
        // Three seasons → two gaps, each a forward (non-negative) distance.
        let cfg = config(1, 2, (2, 100), 2);
        let seasons = find_seasons(&[1, 2, 8, 9, 60, 61], &cfg);
        assert_eq!(seasons.distances().collect::<Vec<_>>(), vec![6, 51]);
    }

    #[test]
    fn distmin_trimming_that_empties_a_near_set_skips_its_distance() {
        // Near sets {1,2}, {5,6}, {20,21} with distmin = 10: every granule of
        // {5,6} is closer than distmin to the end of season {1,2}, so the
        // trim consumes the whole near set and the next distance is measured
        // from {1,2} to {20,21}.
        let cfg = config(1, 2, (10, 100), 1);
        let support = vec![1, 2, 5, 6, 20, 21];
        let seasons = find_seasons(&support, &cfg);
        assert_eq!(season_vecs(&seasons), vec![vec![1, 2], vec![20, 21]]);
        assert_eq!(seasons.distances().collect::<Vec<_>>(), vec![18]);
        assert_eq!(seasons.count(), 2);
        assert_fast_paths_agree(&support, &cfg);
    }

    #[test]
    fn early_exit_fast_path_agrees_on_long_compliant_chains() {
        // Ten compliant seasons; support_is_frequent may stop after two but
        // must agree with the exact check for every minSeason.
        let mut support = Vec::new();
        for s in 0..10u64 {
            let base = 1 + s * 10;
            support.extend([base, base + 1, base + 2]);
        }
        for min_season in 1..12u64 {
            let cfg = config(2, 3, (3, 20), min_season);
            let seasons = find_seasons(&support, &cfg);
            assert_eq!(seasons.count(), 10);
            assert_eq!(
                support_is_frequent(&support, &cfg),
                seasons.is_frequent(min_season),
                "minSeason {min_season}"
            );
        }
    }

    /// Asserts that a tracker fed `support` granule by granule agrees with
    /// the batch extraction at *every prefix*.
    fn assert_tracker_matches_batch(support: &[GranulePos], cfg: &ResolvedConfig) {
        let mut tracker = SeasonTracker::default();
        for (idx, &granule) in support.iter().enumerate() {
            tracker.push(idx, granule, cfg);
            let prefix = &support[..=idx];
            let batch = find_seasons(prefix, cfg);
            assert_eq!(
                tracker.snapshot(prefix, cfg),
                batch,
                "prefix {prefix:?} diverged"
            );
            assert_eq!(tracker.count(prefix.len(), cfg), batch.count());
            assert_eq!(
                tracker.is_frequent(prefix.len(), cfg),
                batch.is_frequent(cfg.min_season)
            );
        }
        assert_eq!(SeasonTracker::rebuild(support, cfg), tracker);
    }

    #[test]
    fn tracker_matches_batch_on_the_paper_examples() {
        assert_tracker_matches_batch(&[1, 2, 3, 7, 8, 11, 12, 14], &config(2, 3, (1, 20), 2));
        // distmin trimming (H9 dropped from the second season).
        assert_tracker_matches_batch(&[1, 3, 4, 5, 6, 9, 10, 11, 13], &config(2, 3, (4, 10), 2));
        // A whole near set consumed by trimming.
        assert_tracker_matches_batch(&[1, 2, 5, 6, 20, 21], &config(1, 2, (10, 100), 1));
        // Chain break and restart.
        assert_tracker_matches_batch(&[1, 2, 60, 61, 70, 71, 80, 81], &config(1, 2, (2, 10), 2));
        // Empty and single-granule supports.
        assert_tracker_matches_batch(&[], &config(2, 2, (1, 10), 1));
        assert_tracker_matches_batch(&[7], &config(2, 1, (1, 10), 1));
    }

    #[test]
    fn tracker_extends_a_tail_season_across_pushes() {
        // The tail run grows from "not yet a season" to a season to a longer
        // season as granules arrive — no rebuild, every snapshot exact.
        let cfg = config(2, 3, (1, 20), 2);
        let support = [1, 2, 3, 10, 11, 12, 13];
        let mut tracker = SeasonTracker::default();
        for (idx, &g) in support.iter().enumerate() {
            tracker.push(idx, g, &cfg);
        }
        let seasons = tracker.snapshot(&support, &cfg);
        assert_eq!(seasons.num_seasons(), 2);
        assert_eq!(seasons.season(1), &[10, 11, 12, 13]);
        assert_eq!(seasons.count(), 2);
        // A far-away granule closes the tail season and opens a new run.
        let support = [1, 2, 3, 10, 11, 12, 13, 40];
        tracker.push(7, 40, &cfg);
        let seasons = tracker.snapshot(&support, &cfg);
        assert_eq!(seasons.num_seasons(), 2, "the lone tail granule is sparse");
        assert_eq!(tracker.count(support.len(), &cfg), 2);
    }

    #[test]
    fn season_set_derive_keeps_support() {
        let cfg = config(2, 2, (1, 10), 1);
        let set = SeasonSet::derive(vec![1, 2, 3, 8, 9], &cfg);
        assert_eq!(set.support, vec![1, 2, 3, 8, 9]);
        assert_eq!(set.seasons.num_seasons(), 2);
    }
}
