//! Near support sets, seasons and the seasonality check
//! (Definitions 3.13–3.15).
//!
//! Given the support set of an event or pattern, the season-extraction
//! procedure is:
//!
//! 1. split the support set into *maximal near support sets* — maximal runs
//!    whose consecutive granules are at most `maxPeriod` apart
//!    (Definition 3.13);
//! 2. walk the near support sets left to right; granules closer than
//!    `distmin` to the end of the previously accepted season are dropped
//!    (this reproduces the paper's worked example where `H_9` is excluded
//!    from the second season of `M:1 ≽ N:1` because of `distmin = 4`);
//! 3. a trimmed near support set whose density reaches `minDensity` becomes a
//!    *season* (Definition 3.14);
//! 4. the pattern's seasonal-occurrence count `seasons(P)` is the longest
//!    chain of consecutive seasons whose pairwise distances lie inside
//!    `distInterval` (Definition 3.15).

use crate::config::ResolvedConfig;
use stpm_timeseries::GranulePos;

/// One season: the granules of a (trimmed) near support set that is dense
/// enough.
pub type Season = Vec<GranulePos>;

/// The seasons of an event or pattern, together with the derived
/// seasonal-occurrence count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Seasons {
    seasons: Vec<Season>,
    chain_len: u64,
}

impl Seasons {
    /// The seasons, in chronological order.
    #[must_use]
    pub fn seasons(&self) -> &[Season] {
        &self.seasons
    }

    /// `seasons(P)`: the longest chain of consecutive seasons whose pairwise
    /// distances fall inside `distInterval`.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.chain_len
    }

    /// Whether the pattern is frequent for the given `minSeason` threshold.
    #[must_use]
    pub fn is_frequent(&self, min_season: u64) -> bool {
        self.chain_len >= min_season
    }

    /// Density (granule count) of every season.
    #[must_use]
    pub fn densities(&self) -> Vec<u64> {
        self.seasons.iter().map(|s| s.len() as u64).collect()
    }

    /// Distances between consecutive seasons (Definition 3.14's `dist`):
    /// `next_start - prev_end` over chronologically ordered seasons. The
    /// extraction walks the sorted support set left to right, so a later
    /// season always starts after the previous one ends; the checked
    /// subtraction makes that invariant explicit instead of silently
    /// absorbing a violation the way `abs_diff` would.
    #[must_use]
    pub fn distances(&self) -> Vec<u64> {
        self.seasons.windows(2).map(season_distance).collect()
    }
}

/// Extracts the seasons of a support set (described in the module docs).
#[must_use]
pub fn find_seasons(support: &[GranulePos], config: &ResolvedConfig) -> Seasons {
    let near_sets = near_support_sets(support, config.max_period);
    let mut seasons: Vec<Season> = Vec::new();
    for near in near_sets {
        let mut granules = near;
        if let Some(prev) = seasons.last() {
            let prev_end = *prev.last().expect("seasons are non-empty");
            // Drop leading granules that would violate distmin w.r.t. the end
            // of the previously accepted season.
            let keep_from = granules
                .iter()
                .position(|g| g.saturating_sub(prev_end) >= config.dist_min)
                .unwrap_or(granules.len());
            granules.drain(..keep_from);
        }
        if granules.len() as u64 >= config.min_density {
            seasons.push(granules);
        }
    }
    let chain_len = longest_compliant_chain(&seasons, config.dist_min, config.dist_max);
    Seasons { seasons, chain_len }
}

/// Splits a sorted support set into its maximal near support sets: maximal
/// runs whose consecutive granules are at most `max_period` apart
/// (Definition 3.13).
#[must_use]
pub fn near_support_sets(support: &[GranulePos], max_period: u64) -> Vec<Vec<GranulePos>> {
    let mut sets = Vec::new();
    let mut current: Vec<GranulePos> = Vec::new();
    for &granule in support {
        match current.last() {
            Some(&last) if granule - last > max_period => {
                sets.push(std::mem::take(&mut current));
                current.push(granule);
            }
            _ => current.push(granule),
        }
    }
    if !current.is_empty() {
        sets.push(current);
    }
    sets
}

/// `dist` between two consecutive seasons (Definition 3.14): the gap from
/// the end of the earlier season to the start of the later one.
///
/// # Panics
/// Panics when the pair is not chronologically ordered — season extraction
/// only ever produces ordered, non-overlapping seasons, so a violation is a
/// construction bug, not data to tolerate.
fn season_distance(pair: &[Season]) -> u64 {
    let prev_end = *pair[0].last().expect("seasons are non-empty");
    let next_start = *pair[1].first().expect("seasons are non-empty");
    next_start
        .checked_sub(prev_end)
        .expect("seasons are chronologically ordered and disjoint")
}

/// Length of the longest run of consecutive seasons whose pairwise distances
/// are inside `[dist_min, dist_max]`.
fn longest_compliant_chain(seasons: &[Season], dist_min: u64, dist_max: u64) -> u64 {
    if seasons.is_empty() {
        return 0;
    }
    let mut best = 1u64;
    let mut current = 1u64;
    for w in seasons.windows(2) {
        let dist = season_distance(w);
        if dist >= dist_min && dist <= dist_max {
            current += 1;
        } else {
            current = 1;
        }
        best = best.max(current);
    }
    best
}

/// Seasonality summary of a support set: season count plus the seasons
/// themselves, kept as a named pair for report ergonomics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeasonSet {
    /// The support set the seasons were derived from.
    pub support: Vec<GranulePos>,
    /// The derived seasons.
    pub seasons: Seasons,
}

impl SeasonSet {
    /// Derives the seasons of `support` under `config`.
    #[must_use]
    pub fn derive(support: Vec<GranulePos>, config: &ResolvedConfig) -> Self {
        let seasons = find_seasons(&support, config);
        Self { support, seasons }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StpmConfig, Threshold};

    fn config(
        max_period: u64,
        min_density: u64,
        dist: (u64, u64),
        min_season: u64,
    ) -> ResolvedConfig {
        StpmConfig {
            max_period: Threshold::Absolute(max_period),
            min_density: Threshold::Absolute(min_density),
            dist_interval: dist,
            min_season,
            ..StpmConfig::default()
        }
        .resolve(100)
        .unwrap()
    }

    #[test]
    fn near_support_sets_split_on_large_gaps() {
        // The paper's C:1 ≽ D:1 example: SUP = {1,2,3,7,8,11,12,14}, maxPeriod 2
        // yields {1,2,3}, {7,8}, {11,12,14}.
        let sets = near_support_sets(&[1, 2, 3, 7, 8, 11, 12, 14], 2);
        assert_eq!(sets, vec![vec![1, 2, 3], vec![7, 8], vec![11, 12, 14]]);
    }

    #[test]
    fn near_support_sets_edge_cases() {
        assert!(near_support_sets(&[], 2).is_empty());
        assert_eq!(near_support_sets(&[5], 2), vec![vec![5]]);
        assert_eq!(near_support_sets(&[1, 2, 3], 10), vec![vec![1, 2, 3]]);
        assert_eq!(
            near_support_sets(&[1, 5, 9], 2),
            vec![vec![1], vec![5], vec![9]]
        );
    }

    #[test]
    fn paper_example_c1_contains_d1() {
        // maxPeriod = 2, minDensity = 3: two of the three near support sets
        // are dense enough.
        let cfg = config(2, 3, (1, 20), 2);
        let seasons = find_seasons(&[1, 2, 3, 7, 8, 11, 12, 14], &cfg);
        assert_eq!(seasons.seasons().len(), 2);
        assert_eq!(seasons.seasons()[0], vec![1, 2, 3]);
        assert_eq!(seasons.seasons()[1], vec![11, 12, 14]);
        assert_eq!(seasons.densities(), vec![3, 3]);
        // Distance between season 1 (ends at 3) and season 2 (starts at 11).
        assert_eq!(seasons.distances(), vec![8]);
        assert_eq!(seasons.count(), 2);
        assert!(seasons.is_frequent(2));
        assert!(!seasons.is_frequent(3));
    }

    #[test]
    fn paper_example_m1_contains_n1_with_distmin_trimming() {
        // Section IV-B worked example: SUP(M:1 ≽ N:1) = {1,3,4,5,6,9,10,11,13},
        // maxPeriod = 2, minDensity = 3, distInterval = [4, 10].
        // H9 must be trimmed from the second season because it is only 3
        // granules after the end of the first season.
        let cfg = config(2, 3, (4, 10), 2);
        let seasons = find_seasons(&[1, 3, 4, 5, 6, 9, 10, 11, 13], &cfg);
        assert_eq!(seasons.seasons().len(), 2);
        assert_eq!(seasons.seasons()[0], vec![1, 3, 4, 5, 6]);
        assert_eq!(seasons.seasons()[1], vec![10, 11, 13]);
        assert_eq!(seasons.count(), 2);
        assert!(seasons.is_frequent(2));
    }

    #[test]
    fn paper_example_single_event_m1_is_not_frequent() {
        // SUP(M:1) = {1,2,3,4,5,6,8,9,10,11,13} forms a single season, so the
        // event is not frequent for minSeason = 2 — the anti-monotonicity
        // counter-example of Section IV-B.
        let cfg = config(2, 3, (4, 10), 2);
        let seasons = find_seasons(&[1, 2, 3, 4, 5, 6, 8, 9, 10, 11, 13], &cfg);
        assert_eq!(seasons.seasons().len(), 1);
        assert_eq!(seasons.count(), 1);
        assert!(!seasons.is_frequent(2));
    }

    #[test]
    fn sparse_near_sets_are_not_seasons() {
        let cfg = config(2, 3, (1, 20), 2);
        let seasons = find_seasons(&[1, 2, 10, 11], &cfg);
        assert!(seasons.seasons().is_empty());
        assert_eq!(seasons.count(), 0);
        assert!(!seasons.is_frequent(1));
    }

    #[test]
    fn chain_breaks_when_distance_exceeds_distmax() {
        // Three seasons at distances 5 and 50; with distmax = 10 only a chain
        // of two is compliant.
        let cfg = config(1, 2, (2, 10), 2);
        let support = vec![1, 2, 8, 9, 60, 61];
        let seasons = find_seasons(&support, &cfg);
        assert_eq!(seasons.seasons().len(), 3);
        assert_eq!(seasons.count(), 2);
    }

    #[test]
    fn chain_restarts_after_violation() {
        // Distances: 50 (violation), then 5, 5 (compliant) → chain of 3.
        let cfg = config(1, 2, (2, 10), 2);
        let support = vec![1, 2, 60, 61, 70, 71, 80, 81];
        let seasons = find_seasons(&support, &cfg);
        assert_eq!(seasons.seasons().len(), 4);
        assert_eq!(seasons.count(), 3);
    }

    #[test]
    fn trimming_can_reject_a_whole_near_set() {
        // The second near set lies entirely within distmin of the first
        // season's end, so it disappears.
        let cfg = config(1, 2, (10, 100), 1);
        let support = vec![1, 2, 5, 6];
        let seasons = find_seasons(&support, &cfg);
        assert_eq!(seasons.seasons().len(), 1);
        assert_eq!(seasons.seasons()[0], vec![1, 2]);
    }

    #[test]
    fn empty_support_yields_no_seasons() {
        let cfg = config(2, 2, (1, 10), 1);
        let seasons = find_seasons(&[], &cfg);
        assert_eq!(seasons.count(), 0);
        assert!(seasons.seasons().is_empty());
        assert!(seasons.distances().is_empty());
        assert!(seasons.densities().is_empty());
        assert!(!seasons.is_frequent(1));
    }

    #[test]
    fn single_granule_support_forms_at_most_one_season() {
        // One granule: a season iff minDensity allows it; no distances either
        // way.
        let cfg = config(2, 1, (1, 10), 1);
        let seasons = find_seasons(&[7], &cfg);
        assert_eq!(seasons.seasons(), &[vec![7]]);
        assert_eq!(seasons.count(), 1);
        assert!(seasons.distances().is_empty());

        let dense = config(2, 2, (1, 10), 1);
        let seasons = find_seasons(&[7], &dense);
        assert!(seasons.seasons().is_empty());
        assert_eq!(seasons.count(), 0);
    }

    #[test]
    fn distances_are_chronological_gaps_not_absolute_differences() {
        // Seasons {1,2,3} and {11,12,14}: dist = 11 - 3 = 8, measured from
        // the end of the earlier season to the start of the later one.
        let cfg = config(2, 3, (1, 20), 2);
        let seasons = find_seasons(&[1, 2, 3, 7, 8, 11, 12, 14], &cfg);
        assert_eq!(seasons.distances(), vec![8]);
        // Three seasons → two gaps, each a forward (non-negative) distance.
        let cfg = config(1, 2, (2, 100), 2);
        let seasons = find_seasons(&[1, 2, 8, 9, 60, 61], &cfg);
        assert_eq!(seasons.distances(), vec![6, 51]);
    }

    #[test]
    fn distmin_trimming_that_empties_a_near_set_skips_its_distance() {
        // Near sets {1,2}, {5,6}, {20,21} with distmin = 10: every granule of
        // {5,6} is closer than distmin to the end of season {1,2}, so the
        // position() search finds nothing, the unwrap_or(len) branch drains
        // the whole set, and the next distance is measured from {1,2} to
        // {20,21}.
        let cfg = config(1, 2, (10, 100), 1);
        let seasons = find_seasons(&[1, 2, 5, 6, 20, 21], &cfg);
        assert_eq!(seasons.seasons(), &[vec![1, 2], vec![20, 21]]);
        assert_eq!(seasons.distances(), vec![18]);
        assert_eq!(seasons.count(), 2);
    }

    #[test]
    fn season_set_derive_keeps_support() {
        let cfg = config(2, 2, (1, 10), 1);
        let set = SeasonSet::derive(vec![1, 2, 3, 8, 9], &cfg);
        assert_eq!(set.support, vec![1, 2, 3, 8, 9]);
        assert_eq!(set.seasons.seasons().len(), 2);
    }
}
