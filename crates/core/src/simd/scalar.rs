//! Scalar reference twins of every dispatched kernel.
//!
//! These are the mandatory fallbacks on every platform, the semantics the
//! vector paths are property-tested against, and the implementations Miri
//! interprets. They are deliberately written in the plainest possible form:
//! any observable behavior difference between a function here and its
//! vector twin in `x86.rs` is a bug, caught by `tests/property_based.rs`.

use crate::relation::VERDICT_NONE;

/// Linear-merge intersection of two strictly increasing sets, appended to
/// `out`. The galloping regime never reaches this function — `support.rs`
/// keeps it scalar above the skew ratio.
// lint: hot-path
pub(super) fn intersect(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Linear-merge intersection that also records, per match, the element's
/// position in `a` and in `b` (as `u32`, like the CSR side tables the miner
/// indexes with them). Appends to all three buffers.
///
/// # Panics
/// Panics when a matched position does not fit `u32`.
// lint: hot-path
pub(super) fn intersect_positions(
    a: &[u64],
    b: &[u64],
    out: &mut Vec<u64>,
    pos_a: &mut Vec<u32>,
    pos_b: &mut Vec<u32>,
) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                pos_a.push(u32::try_from(i).expect("support position fits u32"));
                pos_b.push(u32::try_from(j).expect("support position fits u32"));
                i += 1;
                j += 1;
            }
        }
    }
}

/// `acc[i] &= row[i]` over the common prefix of the two slices.
// lint: hot-path
pub(super) fn and_words(acc: &mut [u64], row: &[u64]) {
    for (acc_word, &row_word) in acc.iter_mut().zip(row.iter()) {
        *acc_word &= row_word;
    }
}

/// Whether any byte of a verdict block encodes a relation (is not
/// [`VERDICT_NONE`]).
// lint: hot-path
pub(super) fn verdict_any(block: &[u8]) -> bool {
    block.iter().any(|&verdict| verdict != VERDICT_NONE)
}

/// Exclusive end of the maximal dense run of `support` beginning at
/// `start`: the first `j > start` with `j == support.len()` or a gap
/// `support[j] - support[j-1]` above `max_period`. Requires
/// `start < support.len()`; on the strictly increasing inputs the season
/// walk feeds in, the wrapping subtraction is an ordinary subtraction (and
/// on malformed input it still agrees bit-for-bit with the vector twins,
/// which compute the same wrapped difference).
// lint: hot-path
pub(super) fn run_end(support: &[u64], start: usize, max_period: u64) -> usize {
    debug_assert!(start < support.len(), "run start must be in bounds");
    let mut j = start + 1;
    while j < support.len() && support[j].wrapping_sub(support[j - 1]) <= max_period {
        j += 1;
    }
    j
}
