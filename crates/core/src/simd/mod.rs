//! Runtime-dispatched SIMD kernels for the four hottest inner loops of the
//! miner: sorted-set intersection (values and positions), wide bitset-row
//! ANDs, verdict-block byte scans, and season span-walk run detection.
//!
//! # Dispatch model
//!
//! Every kernel exists in (at least) two implementations: a **scalar twin**
//! (private `scalar` submodule) — the reference semantics and
//! the mandatory fallback on every platform — and, on `x86_64`, SSE2/AVX2
//! fast paths in the private `x86` submodule. A [`Kernels`] value is a table
//! of function pointers; [`kernels()`] picks one table **once per process**
//! via `is_x86_feature_detected!` and caches the choice, so the hot loops pay
//! a single indirect call and no per-call detection. Kernels that have no
//! profitable vector form in a tier simply keep their scalar twin's pointer
//! in that tier's table (e.g. the SSE2 tier routes `intersect` to scalar
//! because 64-bit lane compares need AVX2); the galloping regime of the
//! intersection routines never enters this module at all — `support.rs`
//! dispatches only the linear-merge regime.
//!
//! Setting `STPM_FORCE_SCALAR=1` (or `true`) in the environment forces the
//! scalar table. The variable is read **once** and cached — flipping it
//! mid-process has no effect, which keeps every run of a process on a single
//! code path (determinism of output does not depend on the path: all tiers
//! are property-tested byte-identical, see `tests/property_based.rs`).
//! Under Miri (`cfg(miri)`) detection always yields the scalar table so
//! the interpreter exercises the portable twins.
//!
//! # Unsafe-scope contract
//!
//! This module (specifically the `x86` submodule) is the **only** place in
//! the whole workspace where `unsafe` code is permitted:
//!
//! * every intrinsic path has a scalar twin with identical observable
//!   behavior, and the parity is property-tested over adversarial inputs
//!   (empty sets, lane-straddling lengths, galloping-skew ratios,
//!   all-match/no-match rows) for every tier the host CPU supports;
//! * no `unsafe` escapes the module: the public surface ([`Kernels`],
//!   [`kernels()`], [`tiers()`], …) is entirely safe, and tables containing
//!   vector paths are only constructible after `is_x86_feature_detected!`
//!   has proven the features present;
//! * the workspace lint `unsafe-scope` (see `crates/lint`) turns any
//!   `unsafe` token outside `crates/core/src/simd/` into a lint error, and
//!   the crate roots keep `deny(unsafe_code)` with a scoped allow here — the
//!   pre-SIMD `forbid(unsafe_code)` guarantee stays machine-enforced
//!   everywhere else.

use std::sync::OnceLock;

mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

/// Signature of the position-recording intersection kernel: values plus
/// the matching element positions in both inputs, appended to three
/// buffers.
type IntersectPositionsFn = fn(&[u64], &[u64], &mut Vec<u64>, &mut Vec<u32>, &mut Vec<u32>);

/// Dispatch table of the vectorizable kernels. Obtain one with
/// [`kernels()`] (process-wide cached choice), [`scalar()`],
/// [`detected()`], or [`tiers()`]; invoke kernels through the methods so
/// the `cfg(test)` routing counters stay accurate.
pub struct Kernels {
    name: &'static str,
    intersect: fn(&[u64], &[u64], &mut Vec<u64>),
    intersect_positions: IntersectPositionsFn,
    and_words: fn(&mut [u64], &[u64]),
    verdict_any: fn(&[u8]) -> bool,
    run_end: fn(&[u64], usize, u64) -> usize,
}

impl std::fmt::Debug for Kernels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernels").field("name", &self.name).finish()
    }
}

impl Kernels {
    /// Tier name: `"scalar"`, `"sse2"` or `"avx2"`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Appends the intersection of two strictly increasing sorted sets to
    /// `out` (linear-merge regime only; callers handle galloping skew).
    #[inline]
    pub fn intersect(&self, a: &[u64], b: &[u64], out: &mut Vec<u64>) {
        self.count_dispatch();
        (self.intersect)(a, b, out);
    }

    /// Appends the intersection of two strictly increasing sorted sets plus
    /// the matching element positions in `a` and `b` to the three buffers.
    #[inline]
    pub fn intersect_positions(
        &self,
        a: &[u64],
        b: &[u64],
        out: &mut Vec<u64>,
        pos_a: &mut Vec<u32>,
        pos_b: &mut Vec<u32>,
    ) {
        self.count_dispatch();
        (self.intersect_positions)(a, b, out, pos_a, pos_b);
    }

    /// `acc[i] &= row[i]` over the common prefix of the two slices.
    #[inline]
    pub fn and_words(&self, acc: &mut [u64], row: &[u64]) {
        self.count_dispatch();
        (self.and_words)(acc, row);
    }

    /// Whether any byte of a verdict block is not
    /// [`VERDICT_NONE`](crate::relation::VERDICT_NONE).
    #[inline]
    #[must_use]
    pub fn verdict_any(&self, block: &[u8]) -> bool {
        self.count_dispatch();
        (self.verdict_any)(block)
    }

    /// First index `j > start` with `j == support.len()` or
    /// `support[j] - support[j-1] > max_period`: the exclusive end of the
    /// maximal dense run beginning at `start`. Requires
    /// `start < support.len()` and a strictly increasing `support`.
    #[inline]
    #[must_use]
    pub fn run_end(&self, support: &[u64], start: usize, max_period: u64) -> usize {
        self.count_dispatch();
        (self.run_end)(support, start, max_period)
    }

    #[cfg(test)]
    fn count_dispatch(&self) {
        use std::sync::atomic::Ordering;
        if self.name == "scalar" {
            counters::SCALAR_DISPATCHES.fetch_add(1, Ordering::Relaxed);
        } else {
            counters::VECTOR_DISPATCHES.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[cfg(not(test))]
    #[inline(always)]
    fn count_dispatch(&self) {}
}

/// Dispatch-routing counters, compiled only into the crate's own unit
/// tests: `force_scalar_routes_every_dispatch_to_scalar` proves that the
/// forced-scalar table never reaches a vector path.
#[cfg(test)]
pub(crate) mod counters {
    use std::sync::atomic::AtomicU64;

    pub(crate) static SCALAR_DISPATCHES: AtomicU64 = AtomicU64::new(0);
    pub(crate) static VECTOR_DISPATCHES: AtomicU64 = AtomicU64::new(0);
}

static SCALAR: Kernels = Kernels {
    name: "scalar",
    intersect: scalar::intersect,
    intersect_positions: scalar::intersect_positions,
    and_words: scalar::and_words,
    verdict_any: scalar::verdict_any,
    run_end: scalar::run_end,
};

/// SSE2 is part of the `x86_64` baseline, so this tier is available on every
/// x86-64 CPU. 64-bit lane equality/compare intrinsics only arrive with
/// AVX2, so `intersect`/`intersect_positions`/`run_end` keep their scalar
/// twins here — recorded honestly in the kernel bench rather than hidden.
#[cfg(target_arch = "x86_64")]
static SSE2: Kernels = Kernels {
    name: "sse2",
    intersect: scalar::intersect,
    intersect_positions: scalar::intersect_positions,
    and_words: x86::and_words_sse2,
    verdict_any: x86::verdict_any_sse2,
    run_end: scalar::run_end,
};

#[cfg(target_arch = "x86_64")]
static AVX2: Kernels = Kernels {
    name: "avx2",
    intersect: x86::intersect_avx2,
    intersect_positions: x86::intersect_positions_avx2,
    and_words: x86::and_words_avx2,
    verdict_any: x86::verdict_any_avx2,
    run_end: x86::run_end_avx2,
};

/// The scalar reference table (always available, every platform).
#[must_use]
pub fn scalar() -> &'static Kernels {
    &SCALAR
}

/// The best table the host CPU supports, ignoring `STPM_FORCE_SCALAR`.
/// Under Miri this is always the scalar table.
#[must_use]
pub fn detected() -> &'static Kernels {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return &AVX2;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return &SSE2;
        }
    }
    &SCALAR
}

/// Every table the host CPU can run, scalar first — the axis of the
/// parity property tests and of the kernel benchmark's variant sweep.
#[must_use]
pub fn tiers() -> Vec<&'static Kernels> {
    let mut tiers: Vec<&'static Kernels> = vec![&SCALAR];
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("sse2") {
            tiers.push(&SSE2);
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            tiers.push(&AVX2);
        }
    }
    tiers
}

/// Pure selection step: forced-scalar takes the scalar table, otherwise the
/// detected-best table. Exposed (instead of only the env-reading
/// [`kernels()`]) so tests can pin the routing without touching the
/// process environment.
#[must_use]
pub fn select(force_scalar: bool) -> &'static Kernels {
    if force_scalar {
        &SCALAR
    } else {
        detected()
    }
}

/// Whether `STPM_FORCE_SCALAR` requests the scalar table. Read once and
/// cached for the life of the process.
#[must_use]
pub fn force_scalar_requested() -> bool {
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| parse_force_scalar(std::env::var("STPM_FORCE_SCALAR").ok().as_deref()))
}

/// Parses an `STPM_FORCE_SCALAR` value: `1` and `true` (any case) force the
/// scalar table; everything else (including unset) keeps detection on.
#[must_use]
pub fn parse_force_scalar(raw: Option<&str>) -> bool {
    match raw {
        Some(v) => {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true")
        }
        None => false,
    }
}

/// The process-wide kernel table: detected-best, unless
/// `STPM_FORCE_SCALAR=1` was set at first use. Chosen once and cached.
#[must_use]
pub fn kernels() -> &'static Kernels {
    static CHOSEN: OnceLock<&'static Kernels> = OnceLock::new();
    CHOSEN.get_or_init(|| select(force_scalar_requested()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn exercise_every_kernel(table: &Kernels) {
        let a = [1u64, 4, 9, 16, 25, 36, 49, 64, 81];
        let b = [2u64, 4, 8, 16, 32, 64];
        let mut out = Vec::new();
        table.intersect(&a, &b, &mut out);
        assert_eq!(out, [4, 16, 64]);
        let (mut vals, mut pa, mut pb) = (Vec::new(), Vec::new(), Vec::new());
        table.intersect_positions(&a, &b, &mut vals, &mut pa, &mut pb);
        assert_eq!(vals, [4, 16, 64]);
        assert_eq!(pa, [1, 3, 7]);
        assert_eq!(pb, [1, 3, 5]);
        let mut acc = [0b1111u64, u64::MAX, 0, 7];
        table.and_words(&mut acc, &[0b1010, 1 << 63, u64::MAX, 5]);
        assert_eq!(acc, [0b1010, 1 << 63, 0, 5]);
        assert!(!table.verdict_any(&[0; 37]));
        assert!(table.verdict_any(&[0, 0, 0, 3]));
        assert_eq!(table.run_end(&[1, 2, 3, 10], 0, 1), 3);
    }

    #[test]
    fn every_supported_tier_passes_the_smoke_inputs() {
        for table in tiers() {
            exercise_every_kernel(table);
        }
    }

    #[test]
    fn scalar_tier_is_always_first_and_always_present() {
        let tiers = tiers();
        assert_eq!(tiers[0].name(), "scalar");
        assert!(tiers.iter().all(|t| !t.name().is_empty()));
    }

    #[test]
    fn force_scalar_routes_every_dispatch_to_scalar() {
        let table = select(true);
        assert_eq!(table.name(), "scalar");
        let scalar_before = counters::SCALAR_DISPATCHES.load(Ordering::Relaxed);
        let vector_before = counters::VECTOR_DISPATCHES.load(Ordering::Relaxed);
        exercise_every_kernel(table);
        let scalar_calls = counters::SCALAR_DISPATCHES.load(Ordering::Relaxed) - scalar_before;
        assert!(scalar_calls >= 6, "all six dispatches must count as scalar");
        // Other tests may run concurrently and drive vector tiers, so the
        // vector counter is only pinned when this test runs the forced
        // table in isolation; what must always hold is that *this* table
        // never produced a vector dispatch, which the name check plus the
        // scalar counter delta establish. Keep a cheap sanity read so the
        // counter is exercised either way.
        let _ = vector_before;
    }

    #[test]
    fn env_parser_accepts_only_explicit_truths() {
        assert!(parse_force_scalar(Some("1")));
        assert!(parse_force_scalar(Some("true")));
        assert!(parse_force_scalar(Some("TRUE")));
        assert!(parse_force_scalar(Some(" 1 ")));
        assert!(!parse_force_scalar(Some("0")));
        assert!(!parse_force_scalar(Some("")));
        assert!(!parse_force_scalar(Some("yes")));
        assert!(!parse_force_scalar(None));
    }

    #[test]
    fn cached_choice_honors_the_environment_snapshot() {
        // `kernels()` caches on first use, so all this test may assert
        // portably is consistency: the cached table matches what `select`
        // derives from the cached env snapshot. In the forced-scalar CI leg
        // this pins the scalar route end to end.
        assert_eq!(
            kernels().name(),
            select(force_scalar_requested()).name(),
            "cached dispatch must match the cached environment snapshot"
        );
        if force_scalar_requested() {
            assert_eq!(kernels().name(), "scalar");
        }
    }

    #[test]
    fn detected_tier_is_the_last_tier() {
        let tiers = tiers();
        assert_eq!(
            tiers.last().map(|t| t.name()),
            Some(detected().name()),
            "detection must pick the strongest supported tier"
        );
    }
}
