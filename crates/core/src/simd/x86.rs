//! `x86_64` SSE2/AVX2 implementations of the dispatched kernels.
//!
//! This file is the single place in the workspace where `unsafe` code is
//! permitted (see the module doc of [`super`] for the full contract, and the
//! `unsafe-scope` rule in `crates/lint` that enforces it). Every function
//! here is a drop-in twin of a scalar kernel in `scalar.rs`: identical
//! inputs, identical outputs, identical panics — property-tested in
//! `tests/property_based.rs` over adversarial inputs.
//!
//! Safety structure: the raw `#[target_feature]` workers are `unsafe fn`s;
//! the `pub(super)` wrappers exposed to the dispatch tables are safe because
//! (a) SSE2 is an unconditional part of the `x86_64` ABI baseline, and
//! (b) the AVX2 table in `mod.rs` is only ever handed out after
//! `is_x86_feature_detected!("avx2")` has returned true (re-checked here
//! with a debug assertion). All loads/stores use the unaligned variants, so
//! no alignment precondition exists beyond the slices being valid, which
//! the borrow checker supplies.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, __m256i, _mm256_and_si256, _mm256_castsi256_pd, _mm256_cmpeq_epi64, _mm256_cmpeq_epi8,
    _mm256_cmpgt_epi64, _mm256_loadu_si256, _mm256_movemask_epi8, _mm256_movemask_pd,
    _mm256_permute4x64_epi64, _mm256_set1_epi64x, _mm256_setzero_si256, _mm256_storeu_si256,
    _mm256_sub_epi64, _mm256_xor_si256, _mm_and_si128, _mm_cmpeq_epi8, _mm_loadu_si128,
    _mm_movemask_epi8, _mm_setzero_si128, _mm_storeu_si128,
};

use crate::relation::VERDICT_NONE;

// The zero-compare byte scans below test "byte == 0" where the scalar twin
// tests "byte != VERDICT_NONE"; this only coincides while the no-relation
// verdict encodes as zero, so pin it at compile time.
const _: () = assert!(
    VERDICT_NONE == 0,
    "verdict byte scans assume VERDICT_NONE == 0"
);

// ---------------------------------------------------------------------------
// and_words: acc[i] &= row[i] over the common prefix
// ---------------------------------------------------------------------------

/// SSE2 `and_words`: 2 × u64 lanes per iteration.
// lint: hot-path
pub(super) fn and_words_sse2(acc: &mut [u64], row: &[u64]) {
    // SAFETY: SSE2 is part of the x86_64 baseline; every x86_64 CPU this
    // crate compiles for executes these instructions.
    unsafe { and_words_sse2_impl(acc, row) }
}

#[target_feature(enable = "sse2")]
unsafe fn and_words_sse2_impl(acc: &mut [u64], row: &[u64]) {
    let len = acc.len().min(row.len());
    let mut i = 0usize;
    while i + 2 <= len {
        // SAFETY: i + 2 <= len keeps both 16-byte unaligned loads and the
        // store inside the borrowed slices.
        unsafe {
            let dst = acc.as_mut_ptr().add(i).cast::<__m128i>();
            let a = _mm_loadu_si128(dst);
            let b = _mm_loadu_si128(row.as_ptr().add(i).cast::<__m128i>());
            _mm_storeu_si128(dst, _mm_and_si128(a, b));
        }
        i += 2;
    }
    while i < len {
        acc[i] &= row[i];
        i += 1;
    }
}

/// AVX2 `and_words`: 4 × u64 lanes per iteration.
// lint: hot-path
pub(super) fn and_words_avx2(acc: &mut [u64], row: &[u64]) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: only the AVX2 dispatch table references this wrapper, and that
    // table is handed out solely after runtime detection proved AVX2.
    unsafe { and_words_avx2_impl(acc, row) }
}

#[target_feature(enable = "avx2")]
unsafe fn and_words_avx2_impl(acc: &mut [u64], row: &[u64]) {
    let len = acc.len().min(row.len());
    let mut i = 0usize;
    while i + 4 <= len {
        // SAFETY: i + 4 <= len keeps both 32-byte unaligned loads and the
        // store inside the borrowed slices.
        unsafe {
            let dst = acc.as_mut_ptr().add(i).cast::<__m256i>();
            let a = _mm256_loadu_si256(dst);
            let b = _mm256_loadu_si256(row.as_ptr().add(i).cast::<__m256i>());
            _mm256_storeu_si256(dst, _mm256_and_si256(a, b));
        }
        i += 4;
    }
    while i < len {
        acc[i] &= row[i];
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// verdict_any: any byte != VERDICT_NONE
// ---------------------------------------------------------------------------

/// SSE2 `verdict_any`: 16 bytes per compare, early exit per chunk.
// lint: hot-path
pub(super) fn verdict_any_sse2(block: &[u8]) -> bool {
    // SAFETY: SSE2 is part of the x86_64 baseline.
    unsafe { verdict_any_sse2_impl(block) }
}

#[target_feature(enable = "sse2")]
unsafe fn verdict_any_sse2_impl(block: &[u8]) -> bool {
    let zero = _mm_setzero_si128();
    let mut i = 0usize;
    while i + 16 <= block.len() {
        // SAFETY: i + 16 <= len keeps the unaligned load inside the slice.
        let chunk = unsafe { _mm_loadu_si128(block.as_ptr().add(i).cast::<__m128i>()) };
        if _mm_movemask_epi8(_mm_cmpeq_epi8(chunk, zero)) != 0xFFFF {
            return true;
        }
        i += 16;
    }
    block[i..].iter().any(|&verdict| verdict != VERDICT_NONE)
}

/// AVX2 `verdict_any`: 32 bytes per compare, early exit per chunk.
// lint: hot-path
pub(super) fn verdict_any_avx2(block: &[u8]) -> bool {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: referenced only from the detection-gated AVX2 table.
    unsafe { verdict_any_avx2_impl(block) }
}

#[target_feature(enable = "avx2")]
unsafe fn verdict_any_avx2_impl(block: &[u8]) -> bool {
    let zero = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 32 <= block.len() {
        // SAFETY: i + 32 <= len keeps the unaligned load inside the slice.
        let chunk = unsafe { _mm256_loadu_si256(block.as_ptr().add(i).cast::<__m256i>()) };
        // movemask yields one bit per byte; -1 means all 32 bytes were zero.
        if _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk, zero)) != -1 {
            return true;
        }
        i += 32;
    }
    block[i..].iter().any(|&verdict| verdict != VERDICT_NONE)
}

// ---------------------------------------------------------------------------
// run_end: season span-walk run detection
// ---------------------------------------------------------------------------

/// AVX2 `run_end`: four consecutive gaps `support[j+l] - support[j+l-1]`
/// are formed with one subtraction of two overlapping unaligned loads and
/// compared against `max_period` as unsigned 64-bit values (signed compare
/// over sign-bias-XORed lanes); the first over-period gap ends the run.
// lint: hot-path
pub(super) fn run_end_avx2(support: &[u64], start: usize, max_period: u64) -> usize {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: referenced only from the detection-gated AVX2 table.
    unsafe { run_end_avx2_impl(support, start, max_period) }
}

#[target_feature(enable = "avx2")]
unsafe fn run_end_avx2_impl(support: &[u64], start: usize, max_period: u64) -> usize {
    debug_assert!(start < support.len(), "run start must be in bounds");
    let len = support.len();
    let mut j = start + 1;
    // XOR with the sign bit turns an unsigned 64-bit compare into the signed
    // compare AVX2 provides.
    let bias = _mm256_set1_epi64x(i64::MIN);
    #[allow(clippy::cast_possible_wrap)]
    let limit = _mm256_xor_si256(_mm256_set1_epi64x(max_period as i64), bias);
    while j + 4 <= len {
        // SAFETY: 1 <= j and j + 4 <= len keep both unaligned loads
        // (support[j-1..j+3] and support[j..j+4]) inside the slice.
        let (prev, cur) = unsafe {
            (
                _mm256_loadu_si256(support.as_ptr().add(j - 1).cast::<__m256i>()),
                _mm256_loadu_si256(support.as_ptr().add(j).cast::<__m256i>()),
            )
        };
        let gaps = _mm256_sub_epi64(cur, prev);
        let over = _mm256_cmpgt_epi64(_mm256_xor_si256(gaps, bias), limit);
        let mask = _mm256_movemask_pd(_mm256_castsi256_pd(over));
        if mask != 0 {
            return j + mask.trailing_zeros() as usize;
        }
        j += 4;
    }
    while j < len && support[j].wrapping_sub(support[j - 1]) <= max_period {
        j += 1;
    }
    j
}

// ---------------------------------------------------------------------------
// intersect / intersect_positions: 4x4 block compare of sorted u64 sets
// ---------------------------------------------------------------------------

/// Per-iteration state of the 4×4 block compare: `combined` has bit `l` set
/// when `a[i+l]` matched somewhere in the current `b` block, and `b_lane[l]`
/// is the matching `b` lane. Strictly increasing (duplicate-free) inputs
/// guarantee at most one match per lane, which is what makes the per-lane
/// record well-defined.
struct BlockMatches {
    combined: u32,
    b_lane: [u32; 4],
}

/// Compares `a_vec` against all four lane rotations of `b_vec`. Lane `l` of
/// rotation `r` holds `b[j + (l + r) % 4]`, so an equality in that lane
/// records `b` lane `(l + r) % 4`.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn block_matches(a_vec: __m256i, b_vec: __m256i) -> BlockMatches {
    // Rotation r: destination lane l takes source lane (l + r) % 4; the
    // permute immediate packs those source lanes two bits each.
    let rot1 = _mm256_permute4x64_epi64::<0b00_11_10_01>(b_vec);
    let rot2 = _mm256_permute4x64_epi64::<0b01_00_11_10>(b_vec);
    let rot3 = _mm256_permute4x64_epi64::<0b10_01_00_11>(b_vec);
    let masks = [
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a_vec, b_vec))),
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a_vec, rot1))),
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a_vec, rot2))),
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(a_vec, rot3))),
    ];
    let mut out = BlockMatches {
        combined: 0,
        b_lane: [0; 4],
    };
    for (r, &mask) in masks.iter().enumerate() {
        #[allow(clippy::cast_sign_loss)]
        let mut mask = mask as u32;
        out.combined |= mask;
        while mask != 0 {
            let l = mask.trailing_zeros() as usize;
            out.b_lane[l] = ((l + r) & 3) as u32;
            mask &= mask - 1;
        }
    }
    out
}

/// AVX2 linear-merge intersection of two strictly increasing sets: whole
/// 4-lane blocks of `a` and `b` are cross-compared (4 rotations), then the
/// block whose maximum is smaller advances — the classic block merge. The
/// sub-4-element tails fall back to the scalar merge, which cannot
/// double-report because every `b` element already matched pairs with an
/// `a` element before the tail's range.
// lint: hot-path
pub(super) fn intersect_avx2(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: referenced only from the detection-gated AVX2 table.
    unsafe { intersect_avx2_impl(a, b, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn intersect_avx2_impl(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let (mut i, mut j) = (0usize, 0usize);
    if a.len() >= 4 && b.len() >= 4 {
        loop {
            // SAFETY: i + 4 <= a.len() and j + 4 <= b.len() hold on entry
            // and are re-established by the advance checks below.
            let (a_vec, b_vec) = unsafe {
                (
                    _mm256_loadu_si256(a.as_ptr().add(i).cast::<__m256i>()),
                    _mm256_loadu_si256(b.as_ptr().add(j).cast::<__m256i>()),
                )
            };
            let matches = block_matches(a_vec, b_vec);
            let mut mask = matches.combined;
            while mask != 0 {
                let l = mask.trailing_zeros() as usize;
                out.push(a[i + l]);
                mask &= mask - 1;
            }
            let a_max = a[i + 3];
            let b_max = b[j + 3];
            if a_max <= b_max {
                i += 4;
            }
            if b_max <= a_max {
                j += 4;
            }
            if i + 4 > a.len() || j + 4 > b.len() {
                break;
            }
        }
    }
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// AVX2 twin of `scalar::intersect_positions`: the same block merge as
/// [`intersect_avx2`], with the per-rotation masks additionally recording
/// which `b` lane matched so positions in both inputs can be emitted.
///
/// # Panics
/// Panics when a matched position does not fit `u32` (as the scalar twin).
// lint: hot-path
pub(super) fn intersect_positions_avx2(
    a: &[u64],
    b: &[u64],
    out: &mut Vec<u64>,
    pos_a: &mut Vec<u32>,
    pos_b: &mut Vec<u32>,
) {
    debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
    // SAFETY: referenced only from the detection-gated AVX2 table.
    unsafe { intersect_positions_avx2_impl(a, b, out, pos_a, pos_b) }
}

#[target_feature(enable = "avx2")]
unsafe fn intersect_positions_avx2_impl(
    a: &[u64],
    b: &[u64],
    out: &mut Vec<u64>,
    pos_a: &mut Vec<u32>,
    pos_b: &mut Vec<u32>,
) {
    let (mut i, mut j) = (0usize, 0usize);
    if a.len() >= 4 && b.len() >= 4 {
        loop {
            // SAFETY: i + 4 <= a.len() and j + 4 <= b.len() hold on entry
            // and are re-established by the advance checks below.
            let (a_vec, b_vec) = unsafe {
                (
                    _mm256_loadu_si256(a.as_ptr().add(i).cast::<__m256i>()),
                    _mm256_loadu_si256(b.as_ptr().add(j).cast::<__m256i>()),
                )
            };
            let matches = block_matches(a_vec, b_vec);
            let mut mask = matches.combined;
            while mask != 0 {
                let l = mask.trailing_zeros() as usize;
                out.push(a[i + l]);
                pos_a.push(u32::try_from(i + l).expect("support position fits u32"));
                let b_pos = j + matches.b_lane[l] as usize;
                pos_b.push(u32::try_from(b_pos).expect("support position fits u32"));
                mask &= mask - 1;
            }
            let a_max = a[i + 3];
            let b_max = b[j + 3];
            if a_max <= b_max {
                i += 4;
            }
            if b_max <= a_max {
                j += 4;
            }
            if i + 4 > a.len() || j + 4 > b.len() {
                break;
            }
        }
    }
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                pos_a.push(u32::try_from(i).expect("support position fits u32"));
                pos_b.push(u32::try_from(j).expect("support position fits u32"));
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    //! Direct intrinsic-path tests (the dispatch-level parity matrix lives
    //! in `tests/property_based.rs`). Miri does not model the AVX2
    //! intrinsics, so those are `#[cfg_attr(miri, ignore)]`-gated; the SSE2
    //! paths are skipped with them for uniformity — Miri exercises the
    //! scalar twins through the dispatch instead.
    use super::*;

    fn avx2() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn sse2_byte_scan_hits_every_offset() {
        for len in 0..70 {
            let mut block = vec![0u8; len];
            assert!(!verdict_any_sse2(&block), "len {len}");
            for hot in 0..len {
                block[hot] = 1;
                assert!(verdict_any_sse2(&block), "len {len} hot {hot}");
                block[hot] = 0;
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn avx2_byte_scan_hits_every_offset() {
        if !avx2() {
            return;
        }
        for len in 0..70 {
            let mut block = vec![0u8; len];
            assert!(!verdict_any_avx2(&block), "len {len}");
            for hot in 0..len {
                block[hot] = 1;
                assert!(verdict_any_avx2(&block), "len {len} hot {hot}");
                block[hot] = 0;
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn vector_and_words_match_scalar_at_every_length() {
        for len in 0..12 {
            let acc_init: Vec<u64> = (0..len as u64)
                .map(|v| v.wrapping_mul(0x9E37_79B9))
                .collect();
            let row: Vec<u64> = (0..len as u64)
                .map(|v| !v.wrapping_mul(0x85EB_CA6B))
                .collect();
            let mut expect = acc_init.clone();
            for (acc_word, &row_word) in expect.iter_mut().zip(row.iter()) {
                *acc_word &= row_word;
            }
            let mut sse = acc_init.clone();
            and_words_sse2(&mut sse, &row);
            assert_eq!(sse, expect, "sse2 len {len}");
            if avx2() {
                let mut avx = acc_init.clone();
                and_words_avx2(&mut avx, &row);
                assert_eq!(avx, expect, "avx2 len {len}");
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn avx2_run_end_agrees_with_scalar_over_gap_grids() {
        if !avx2() {
            return;
        }
        // Supports built from every 2-bit gap pattern over 9 steps cover
        // boundary positions in every lane of the 4-wide compare.
        for pattern in 0u32..(1 << 18) {
            if pattern % 7 != 0 {
                continue; // thin the grid, keep lane coverage
            }
            let mut support = vec![10u64];
            for step in 0..9 {
                let gap = 1 + ((pattern >> (2 * step)) & 3) as u64;
                support.push(support.last().unwrap() + gap);
            }
            for start in 0..support.len() {
                for max_period in 1..=4 {
                    assert_eq!(
                        run_end_avx2(&support, start, max_period),
                        super::super::scalar::run_end(&support, start, max_period),
                        "pattern {pattern:#x} start {start} period {max_period}"
                    );
                }
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn avx2_intersections_agree_with_scalar_on_dense_overlap() {
        if !avx2() {
            return;
        }
        let a: Vec<u64> = (0..600).map(|v| v * 2).collect();
        let b: Vec<u64> = (0..400).map(|v| v * 3).collect();
        let mut expect = Vec::new();
        super::super::scalar::intersect(&a, &b, &mut expect);
        let mut got = Vec::new();
        intersect_avx2(&a, &b, &mut got);
        assert_eq!(got, expect);
        let (mut vals, mut pa, mut pb) = (Vec::new(), Vec::new(), Vec::new());
        intersect_positions_avx2(&a, &b, &mut vals, &mut pa, &mut pb);
        assert_eq!(vals, expect);
        for (m, &g) in vals.iter().enumerate() {
            assert_eq!(a[pa[m] as usize], g);
            assert_eq!(b[pb[m] as usize], g);
        }
    }
}
