//! Mining configuration: the four seasonality thresholds of the paper
//! (`maxPeriod`, `minDensity`, `distInterval`, `minSeason`), the relation
//! parameters (ε, `d_o`), and the pruning-mode switch used for the ablation
//! study of Figures 15/16/25/26.

use crate::error::{Error, Result};

/// A threshold that can be given either as an absolute number of granules or
/// as a fraction of `|D_SEQ|` (the paper expresses `maxPeriod` and
/// `minDensity` as percentages of the database size, Table VI).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// An absolute number of granules.
    Absolute(u64),
    /// A fraction of the number of granules in `D_SEQ` (e.g. `0.005` for the
    /// paper's `0.5%`).
    Fraction(f64),
}

impl Threshold {
    /// Resolves the threshold against a database of `dseq_len` granules,
    /// clamping the result to at least `minimum`.
    #[must_use]
    pub fn resolve(&self, dseq_len: u64, minimum: u64) -> u64 {
        let value = match self {
            Threshold::Absolute(v) => *v,
            Threshold::Fraction(f) => (f * dseq_len as f64).round() as u64,
        };
        value.max(minimum)
    }

    /// Validates the threshold domain.
    ///
    /// # Errors
    /// [`Error::InvalidThreshold`] for negative or non-finite fractions.
    pub fn validate(&self, parameter: &'static str) -> Result<()> {
        match self {
            Threshold::Absolute(_) => Ok(()),
            Threshold::Fraction(f) => {
                if !f.is_finite() || *f < 0.0 || *f > 1.0 {
                    Err(Error::InvalidThreshold {
                        parameter,
                        reason: format!("fraction {f} must be a finite value in [0, 1]"),
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Which pruning techniques E-STPM applies. `All` is the algorithm of the
/// paper; the other variants exist for the pruning-ablation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PruningMode {
    /// No pruning: every event/group/pattern is expanded and only the final
    /// frequency check filters the output.
    NoPrune,
    /// Only the Apriori-like pruning based on the anti-monotone `maxSeason`
    /// bound (Lemmas 1 and 2).
    Apriori,
    /// Only the transitivity-based pruning (Lemmas 3 and 4).
    Transitivity,
    /// Both prunings (the full E-STPM algorithm).
    #[default]
    All,
}

impl PruningMode {
    /// Whether the Apriori-like `maxSeason` filter is active.
    #[must_use]
    pub fn apriori_enabled(&self) -> bool {
        matches!(self, PruningMode::Apriori | PruningMode::All)
    }

    /// Whether the transitivity filter is active.
    #[must_use]
    pub fn transitivity_enabled(&self) -> bool {
        matches!(self, PruningMode::Transitivity | PruningMode::All)
    }

    /// All four modes, in the order the paper plots them.
    #[must_use]
    pub fn all_modes() -> [PruningMode; 4] {
        [
            PruningMode::NoPrune,
            PruningMode::Apriori,
            PruningMode::Transitivity,
            PruningMode::All,
        ]
    }

    /// Short label used in benchmark output.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            PruningMode::NoPrune => "NoPrune",
            PruningMode::Apriori => "Apriori",
            PruningMode::Transitivity => "Trans",
            PruningMode::All => "All",
        }
    }
}

/// User-facing configuration of the STPM miner.
///
/// Deliberately excludes operational resource limits: a memory budget (see
/// `fault::MemoryBudget`) caps one *deployment* of a miner, not the mining
/// semantics, and the snapshot config section must round-trip exactly the
/// parameters that shape mined output. Budgets and retry policies are set
/// on the streaming pipeline instead.
#[derive(Debug, Clone, PartialEq)]
pub struct StpmConfig {
    /// `maxPeriod`: maximal period between two consecutive granules of a near
    /// support set (Definition 3.13).
    pub max_period: Threshold,
    /// `minDensity`: minimal number of granules a near support set needs to
    /// be a season (Definition 3.14).
    pub min_density: Threshold,
    /// `distInterval = [distmin, distmax]`: allowed distance between two
    /// consecutive seasons (Definition 3.15), in granules of `H`.
    pub dist_interval: (u64, u64),
    /// `minSeason`: minimum number of seasonal occurrences (Definition 3.15).
    pub min_season: u64,
    /// Tolerance buffer ε added to relation endpoints (Table III), in
    /// finest-granularity granules.
    pub epsilon: u64,
    /// Minimal overlapping duration `d_o` of an Overlaps relation, in
    /// finest-granularity granules.
    pub min_overlap: u64,
    /// Upper bound on the number of events per pattern (the paper's `h`).
    pub max_pattern_len: usize,
    /// Which pruning techniques to apply.
    pub pruning: PruningMode,
    /// Number of worker threads used to mine each candidate level. `1` (the
    /// default) mines sequentially; `0` resolves to the machine's available
    /// parallelism. Parallel mining shards the candidate space and merges the
    /// per-shard results deterministically, so the output is identical for
    /// every thread count.
    pub threads: usize,
}

impl Default for StpmConfig {
    fn default() -> Self {
        Self {
            max_period: Threshold::Fraction(0.004),
            min_density: Threshold::Fraction(0.0075),
            dist_interval: (4, 365),
            min_season: 2,
            epsilon: 0,
            min_overlap: 1,
            max_pattern_len: 3,
            pruning: PruningMode::All,
            threads: 1,
        }
    }
}

impl StpmConfig {
    /// Resolves fractional thresholds against a concrete database size and
    /// validates every parameter.
    ///
    /// # Errors
    /// [`Error::InvalidThreshold`] when a parameter is out of its domain.
    pub fn resolve(&self, dseq_len: u64) -> Result<ResolvedConfig> {
        self.max_period.validate("maxPeriod")?;
        self.min_density.validate("minDensity")?;
        if self.min_season == 0 {
            return Err(Error::InvalidThreshold {
                parameter: "minSeason",
                reason: "must be at least 1".into(),
            });
        }
        if self.dist_interval.0 > self.dist_interval.1 {
            return Err(Error::InvalidThreshold {
                parameter: "distInterval",
                reason: format!(
                    "distmin {} exceeds distmax {}",
                    self.dist_interval.0, self.dist_interval.1
                ),
            });
        }
        if self.max_pattern_len < 1 {
            return Err(Error::InvalidThreshold {
                parameter: "maxPatternLen",
                reason: "must allow at least single events".into(),
            });
        }
        if dseq_len == 0 {
            return Err(Error::EmptyDatabase);
        }
        Ok(ResolvedConfig {
            max_period: self.max_period.resolve(dseq_len, 1),
            min_density: self.min_density.resolve(dseq_len, 1),
            dist_min: self.dist_interval.0,
            dist_max: self.dist_interval.1,
            min_season: self.min_season,
            epsilon: self.epsilon,
            min_overlap: self.min_overlap.max(1),
            max_pattern_len: self.max_pattern_len,
            pruning: self.pruning,
            threads: resolve_threads(self.threads),
            dseq_len,
        })
    }

    /// Builder-style helper that switches the pruning mode.
    #[must_use]
    pub fn with_pruning(mut self, pruning: PruningMode) -> Self {
        self.pruning = pruning;
        self
    }

    /// Builder-style helper that switches the tolerance buffer ε.
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: u64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Builder-style helper that sets the level-mining thread count
    /// (`0` = available parallelism).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Resolves the user-facing thread count to an effective worker count:
/// `0` means "all available cores", everything else is taken verbatim.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
}

/// The configuration with every threshold resolved to an absolute number of
/// granules — what the mining kernels actually consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedConfig {
    /// Maximal period between consecutive granules of a near support set.
    pub max_period: u64,
    /// Minimal density (granule count) of a season.
    pub min_density: u64,
    /// Minimal distance between consecutive seasons.
    pub dist_min: u64,
    /// Maximal distance between consecutive seasons.
    pub dist_max: u64,
    /// Minimal number of seasons of a frequent seasonal pattern.
    pub min_season: u64,
    /// Relation tolerance buffer ε.
    pub epsilon: u64,
    /// Minimal overlap duration `d_o`.
    pub min_overlap: u64,
    /// Maximal number of events per pattern.
    pub max_pattern_len: usize,
    /// Active pruning techniques.
    pub pruning: PruningMode,
    /// Effective number of level-mining worker threads (always ≥ 1).
    pub threads: usize,
    /// Number of granules in the database the config was resolved against.
    pub dseq_len: u64,
}

impl ResolvedConfig {
    /// `maxSeason(support)` = `|SUP| / minDensity` (Equation 1).
    #[must_use]
    pub fn max_season(&self, support_len: usize) -> f64 {
        support_len as f64 / self.min_density as f64
    }

    /// Whether a support set of `support_len` granules can still reach
    /// `minSeason` seasons, i.e. `maxSeason >= minSeason` (the candidate
    /// seasonal pattern test of Section IV-B).
    #[must_use]
    pub fn is_candidate(&self, support_len: usize) -> bool {
        self.max_season(support_len) >= self.min_season as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_resolution() {
        assert_eq!(Threshold::Absolute(5).resolve(1000, 1), 5);
        assert_eq!(Threshold::Fraction(0.005).resolve(1000, 1), 5);
        assert_eq!(Threshold::Fraction(0.0001).resolve(1000, 1), 1);
        assert_eq!(Threshold::Fraction(0.0).resolve(1000, 2), 2);
        assert_eq!(Threshold::Absolute(0).resolve(1000, 3), 3);
    }

    #[test]
    fn threshold_validation() {
        assert!(Threshold::Fraction(-0.1).validate("x").is_err());
        assert!(Threshold::Fraction(1.5).validate("x").is_err());
        assert!(Threshold::Fraction(f64::NAN).validate("x").is_err());
        assert!(Threshold::Fraction(0.5).validate("x").is_ok());
        assert!(Threshold::Absolute(10).validate("x").is_ok());
    }

    #[test]
    fn pruning_mode_switches() {
        assert!(PruningMode::All.apriori_enabled());
        assert!(PruningMode::All.transitivity_enabled());
        assert!(PruningMode::Apriori.apriori_enabled());
        assert!(!PruningMode::Apriori.transitivity_enabled());
        assert!(!PruningMode::Transitivity.apriori_enabled());
        assert!(PruningMode::Transitivity.transitivity_enabled());
        assert!(!PruningMode::NoPrune.apriori_enabled());
        assert!(!PruningMode::NoPrune.transitivity_enabled());
        assert_eq!(PruningMode::all_modes().len(), 4);
        assert_eq!(PruningMode::default(), PruningMode::All);
        assert_eq!(PruningMode::Transitivity.label(), "Trans");
    }

    #[test]
    fn config_resolution_happy_path() {
        let config = StpmConfig {
            max_period: Threshold::Fraction(0.002),
            min_density: Threshold::Fraction(0.005),
            dist_interval: (30, 90),
            min_season: 4,
            ..StpmConfig::default()
        };
        let resolved = config.resolve(1460).unwrap();
        assert_eq!(resolved.max_period, 3);
        assert_eq!(resolved.min_density, 7);
        assert_eq!(resolved.dist_min, 30);
        assert_eq!(resolved.dist_max, 90);
        assert_eq!(resolved.min_season, 4);
        assert_eq!(resolved.dseq_len, 1460);
    }

    #[test]
    fn config_resolution_errors() {
        let config = StpmConfig {
            min_season: 0,
            ..StpmConfig::default()
        };
        assert!(config.resolve(100).is_err());

        let config = StpmConfig {
            dist_interval: (10, 5),
            ..StpmConfig::default()
        };
        assert!(config.resolve(100).is_err());

        let config = StpmConfig {
            max_pattern_len: 0,
            ..StpmConfig::default()
        };
        assert!(config.resolve(100).is_err());

        assert!(StpmConfig::default().resolve(0).is_err());
    }

    #[test]
    fn max_season_and_candidate_test() {
        let resolved = StpmConfig {
            min_density: Threshold::Absolute(3),
            min_season: 2,
            ..StpmConfig::default()
        }
        .resolve(100)
        .unwrap();
        assert!((resolved.max_season(9) - 3.0).abs() < 1e-12);
        assert!(resolved.is_candidate(6));
        assert!(resolved.is_candidate(7));
        assert!(!resolved.is_candidate(5));
    }

    #[test]
    fn builder_helpers() {
        let config = StpmConfig::default()
            .with_pruning(PruningMode::NoPrune)
            .with_epsilon(2);
        assert_eq!(config.pruning, PruningMode::NoPrune);
        assert_eq!(config.epsilon, 2);
    }

    #[test]
    fn threads_default_to_sequential_and_zero_means_auto() {
        let config = StpmConfig::default();
        assert_eq!(config.threads, 1);
        assert_eq!(config.resolve(100).unwrap().threads, 1);

        let fixed = StpmConfig::default().with_threads(4);
        assert_eq!(fixed.resolve(100).unwrap().threads, 4);

        // 0 resolves to the machine's available parallelism, never below 1.
        let auto = StpmConfig::default().with_threads(0);
        assert!(auto.resolve(100).unwrap().threads >= 1);
    }

    #[test]
    fn min_overlap_has_floor_of_one() {
        let config = StpmConfig {
            min_overlap: 0,
            ..StpmConfig::default()
        };
        assert_eq!(config.resolve(100).unwrap().min_overlap, 1);
    }
}
