//! # stpm-core
//!
//! Exact Seasonal Temporal Pattern Mining (**E-STPM**) — the primary
//! contribution of "Mining Seasonal Temporal Patterns in Time Series"
//! (ICDE 2023).
//!
//! Given a temporal sequence database `D_SEQ` (built by `stpm-timeseries`),
//! the [`StpmMiner`] finds every *frequent seasonal temporal pattern*: a set
//! of pairwise temporal relations (Follows / Contains / Overlaps) between
//! events whose occurrences concentrate into *seasons* that repeat with a
//! bounded distance, under the four user thresholds `maxPeriod`,
//! `minDensity`, `distInterval` and `minSeason`.
//!
//! The crate provides:
//!
//! * the temporal-relation model with the tolerance buffer ε and minimal
//!   overlap duration `d_o` ([`relation`]),
//! * support sets, near support sets, seasons and the `maxSeason`
//!   anti-monotone bound ([`season`], [`support`]),
//! * the hierarchical lookup hash structures `HLH_1` / `HLH_k` ([`hlh`]),
//! * the mining algorithm itself with the Apriori-like and transitivity
//!   pruning techniques, individually switchable for the ablation studies
//!   ([`miner`], [`config::PruningMode`]),
//! * the engine-agnostic API every miner of the workspace implements:
//!   [`MiningEngine`], [`MiningInput`] and the unified [`EngineReport`]
//!   ([`engine`]).
//!
//! ## Example
//!
//! ```
//! use stpm_timeseries::{SymbolicDatabase, SymbolicSeries, Alphabet};
//! use stpm_core::{StpmConfig, StpmMiner, Threshold};
//!
//! let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
//! let c = SymbolicSeries::from_labels(
//!     "C", &["1","1","0", "1","0","0", "1","1","0", "0","0","0"], alphabet.clone()).unwrap();
//! let d = SymbolicSeries::from_labels(
//!     "D", &["1","0","0", "1","0","0", "1","1","0", "1","1","0"], alphabet).unwrap();
//! let dsyb = SymbolicDatabase::new(vec![c, d]).unwrap();
//! let dseq = dsyb.to_sequence_database(3).unwrap();
//!
//! let config = StpmConfig {
//!     max_period: Threshold::Absolute(2),
//!     min_density: Threshold::Absolute(2),
//!     dist_interval: (1, 10),
//!     min_season: 1,
//!     ..StpmConfig::default()
//! };
//! let result = StpmMiner::mine_sequences(&dseq, &config).unwrap();
//! assert!(result.patterns().iter().any(|p| p.pattern().len() >= 2));
//! ```
//!
//! To run E-STPM next to the other engines of the workspace through one code
//! path, use the [`MiningEngine`] trait instead:
//!
//! ```
//! # use stpm_timeseries::{SymbolicDatabase, SymbolicSeries, Alphabet};
//! # use stpm_core::{StpmConfig, StpmMiner, Threshold};
//! use stpm_core::{MiningEngine, MiningInput};
//! # let alphabet = Alphabet::from_strs(&["0", "1"]).unwrap();
//! # let c = SymbolicSeries::from_labels(
//! #     "C", &["1","1","0", "1","0","0", "1","1","0", "0","0","0"], alphabet.clone()).unwrap();
//! # let d = SymbolicSeries::from_labels(
//! #     "D", &["1","0","0", "1","0","0", "1","1","0", "1","1","0"], alphabet).unwrap();
//! # let dsyb = SymbolicDatabase::new(vec![c, d]).unwrap();
//! # let dseq = dsyb.to_sequence_database(3).unwrap();
//! # let config = StpmConfig {
//! #     max_period: Threshold::Absolute(2),
//! #     min_density: Threshold::Absolute(2),
//! #     dist_interval: (1, 10),
//! #     min_season: 1,
//! #     ..StpmConfig::default()
//! # };
//! let input = MiningInput::new(&dsyb, &dseq, 3);
//! let engine: &dyn MiningEngine = &StpmMiner;
//! let report = engine.mine_with(&input, &config).unwrap();
//! assert!(report.total_patterns() > 0);
//! ```

// Deny rather than forbid: the `simd` module carries the one sanctioned
// scoped `#![allow(unsafe_code)]` (vectorized kernel twins); the stpm-lint
// `unsafe-scope` rule errors on `unsafe` anywhere else in the workspace.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod error;
pub mod fault;
pub mod fxhash;
pub mod hlh;
pub mod invariants;
pub mod miner;
pub mod pattern;
pub mod relation;
pub mod report;
pub mod season;
pub mod simd;
pub mod snapshot;
pub mod streaming;
pub mod support;

pub use config::{PruningMode, ResolvedConfig, StpmConfig, Threshold};
pub use engine::{accuracy, EngineReport, MiningEngine, MiningInput, PhaseTiming, PruningSummary};
pub use error::{Error, Result};
pub use fault::{
    failpoints, Failpoint, FaultyFs, MemoryBudget, RealFs, RetryPolicy, StorageBackend, StorageFile,
};
pub use hlh::{GroupId, Hlh1, HlhK, PatternId, RelationAdjacency, VerdictTable};
pub use invariants::InvariantViolation;
pub use miner::StpmMiner;
pub use pattern::{RelationTriple, TemporalPattern};
pub use relation::{classify_relation, RelationKind};
pub use report::{
    canonical_result_set, LevelStats, MinedEvent, MinedPattern, MiningReport, MiningStats,
};
pub use season::{
    find_seasons, seasons_count, support_is_frequent, SeasonSet, SeasonTracker, Seasons,
};
pub use snapshot::{CheckpointMeta, WalContents, SNAPSHOT_VERSION, WAL_VERSION};
pub use streaming::{StreamingMiner, STREAMING_ENGINE_NAME};
