//! Temporal patterns (Definition 3.8).
//!
//! An *n-event pattern* is a list of `n(n-1)/2` triples `(r_ij, E_i, E_j)`,
//! one per pair of events, where `r_ij` is the temporal relation holding
//! between the instances of `E_i` and `E_j`. The events of a
//! [`TemporalPattern`] are kept in a canonical order (the order in which the
//! mining algorithm assembled the event group); every triple stores the
//! indices of its two events *in chronological orientation* — `first` is the
//! event whose instance starts earlier.

use crate::relation::RelationKind;
use stpm_timeseries::{EventLabel, EventRegistry};

/// One pairwise relation of a pattern: `events[first] r events[second]`,
/// oriented so that `events[first]`'s instance is the chronologically earlier
/// one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationTriple {
    /// The relation kind.
    pub relation: RelationKind,
    /// Index (into the pattern's event list) of the earlier event.
    pub first: u8,
    /// Index (into the pattern's event list) of the later event.
    pub second: u8,
}

impl RelationTriple {
    /// Creates a triple.
    #[must_use]
    pub fn new(relation: RelationKind, first: u8, second: u8) -> Self {
        Self {
            relation,
            first,
            second,
        }
    }

    /// Whether the triple involves the event at `index`.
    #[must_use]
    pub fn involves(&self, index: u8) -> bool {
        self.first == index || self.second == index
    }

    /// The unordered pair of event indices, smaller first.
    #[must_use]
    pub fn pair(&self) -> (u8, u8) {
        if self.first <= self.second {
            (self.first, self.second)
        } else {
            (self.second, self.first)
        }
    }
}

/// Packs an event label into one interning-key word, delegating to
/// [`EventLabel::packed`] (series id in the high bits, symbol id in the low
/// 16). The packing is injective, so two labels collide only if they are
/// equal.
#[inline]
#[must_use]
pub fn encode_label(label: EventLabel) -> u64 {
    label.packed()
}

/// Packs a relation triple into one interning-key word (relation
/// discriminant, earlier index, later index). Injective for patterns of up
/// to 256 events — far beyond `max_pattern_len`.
#[inline]
#[must_use]
pub fn encode_triple(triple: RelationTriple) -> u64 {
    ((triple.relation as u64) << 16) | (u64::from(triple.first) << 8) | u64::from(triple.second)
}

/// Inverse of [`encode_triple`].
///
/// # Panics
/// Panics on a word outside the encoding domain — keys are only ever built
/// through [`encode_triple`], so an undecodable word is a construction bug.
/// For *untrusted* words (snapshot restore), use [`try_decode_triple`].
#[inline]
#[must_use]
pub fn decode_triple(word: u64) -> RelationTriple {
    try_decode_triple(word)
        .unwrap_or_else(|| unreachable!("word {word:#x} is outside the triple encoding domain"))
}

/// Checked inverse of [`encode_triple`]: returns `None` on a word outside the
/// encoding domain (unknown relation discriminant, or an index pair that is
/// not a valid oriented pair) instead of panicking. This is the entry point
/// for words read from untrusted bytes — snapshot and WAL restore validate
/// every key word through it so corrupt data surfaces as a typed error.
#[inline]
#[must_use]
pub fn try_decode_triple(word: u64) -> Option<RelationTriple> {
    let relation = match word >> 16 {
        0 => RelationKind::Follows,
        1 => RelationKind::Contains,
        2 => RelationKind::Overlaps,
        _ => return None,
    };
    let first = ((word >> 8) & 0xFF) as u8;
    let second = (word & 0xFF) as u8;
    if first == second {
        return None;
    }
    Some(RelationTriple {
        relation,
        first,
        second,
    })
}

/// Inverse of [`encode_pattern_key`] for a known event count `k`: rebuilds
/// the pattern from its packed interning key. The streaming miner ships only
/// keys between granule workers and the persistent store, reconstructing the
/// pattern exactly once — when a key is globally new.
#[must_use]
pub fn decode_pattern_key(k: usize, key: &[u64]) -> TemporalPattern {
    debug_assert_eq!(key.len(), k + k * (k - 1) / 2, "key length must match k");
    let events: Vec<EventLabel> = key[..k]
        .iter()
        .map(|&w| EventLabel::from_packed(w))
        .collect();
    let triples: Vec<RelationTriple> = key[k..].iter().map(|&w| decode_triple(w)).collect();
    let pattern = TemporalPattern::from_parts(events, triples);
    debug_assert_eq!(
        encode_pattern_key(&pattern),
        key,
        "interning keys store triples in canonical order"
    );
    pattern
}

/// Encodes a pattern into the compact interning key used by the pattern
/// index of `HLH_k`: the packed events followed by the packed triples, in
/// the pattern's canonical order.
///
/// The key identifies the pattern: the word count `n + n(n-1)/2` is strictly
/// monotone in the event count `n`, so keys of patterns with different event
/// counts differ in length, and keys of same-length patterns differ in some
/// word because both packings are injective. Hashing this flat buffer once
/// replaces hashing the whole `TemporalPattern` (two heap vectors) on every
/// occurrence insert.
#[must_use]
pub fn encode_pattern_key(pattern: &TemporalPattern) -> Vec<u64> {
    let mut key = Vec::with_capacity(pattern.events.len() + pattern.triples.len());
    key.extend(pattern.events.iter().copied().map(encode_label));
    key.extend(pattern.triples.iter().copied().map(encode_triple));
    key
}

/// A temporal pattern: an ordered list of events plus one relation triple per
/// event pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemporalPattern {
    events: Vec<EventLabel>,
    triples: Vec<RelationTriple>,
}

impl TemporalPattern {
    /// A single-event pattern (no relations).
    #[must_use]
    pub fn single(event: EventLabel) -> Self {
        Self {
            events: vec![event],
            triples: Vec::new(),
        }
    }

    /// A 2-event pattern with one relation. `swapped` indicates that the
    /// chronologically earlier instance belongs to the *second* event of the
    /// canonical event list.
    #[must_use]
    pub fn pair(events: [EventLabel; 2], relation: RelationKind, swapped: bool) -> Self {
        let triple = if swapped {
            RelationTriple::new(relation, 1, 0)
        } else {
            RelationTriple::new(relation, 0, 1)
        };
        Self {
            events: events.to_vec(),
            triples: vec![triple],
        }
    }

    /// Builds a pattern from raw parts. The number of triples must be
    /// `events.len() * (events.len() - 1) / 2`; triples are sorted into a
    /// canonical order so that structurally identical patterns compare equal.
    #[must_use]
    pub fn from_parts(events: Vec<EventLabel>, mut triples: Vec<RelationTriple>) -> Self {
        triples.sort_by_key(|t| {
            let (a, b) = t.pair();
            (b, a, t.first, t.second, t.relation)
        });
        Self { events, triples }
    }

    /// The pattern's events, in canonical (mining) order.
    #[must_use]
    pub fn events(&self) -> &[EventLabel] {
        &self.events
    }

    /// The pairwise relation triples.
    #[must_use]
    pub fn triples(&self) -> &[RelationTriple] {
        &self.triples
    }

    /// Number of events (the pattern's `n`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the pattern has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether `event` occurs in the pattern (the paper's `E_i ∈ P`).
    #[must_use]
    pub fn contains_event(&self, event: EventLabel) -> bool {
        self.events.contains(&event)
    }

    /// Extends the pattern with a new event and the relation triples that
    /// connect every existing event to it. `new_triples[i]` is the oriented
    /// relation between event `i` and the new event.
    #[must_use]
    pub fn extended(&self, event: EventLabel, new_triples: Vec<RelationTriple>) -> Self {
        let mut events = self.events.clone();
        events.push(event);
        let mut triples = self.triples.clone();
        triples.extend(new_triples);
        Self::from_parts(events, triples)
    }

    /// The relation triple between the events at indices `i` and `j`, if any.
    #[must_use]
    pub fn relation_between(&self, i: u8, j: u8) -> Option<&RelationTriple> {
        let pair = if i <= j { (i, j) } else { (j, i) };
        self.triples.iter().find(|t| t.pair() == pair)
    }

    /// Whether `other` is a sub-pattern of `self` (`P_1 ⊆ P`): every event of
    /// `other` appears in `self` and every triple of `other` appears (same
    /// relation, same oriented event pair) in `self`.
    #[must_use]
    pub fn is_sub_pattern_of(&self, other: &TemporalPattern) -> bool {
        // `self ⊆ other` : map each of self's events to other's indices.
        let mapping: Option<Vec<u8>> = self
            .events
            .iter()
            .map(|e| {
                other
                    .events
                    .iter()
                    .position(|o| o == e)
                    .map(|i| u8::try_from(i).expect("pattern length fits u8"))
            })
            .collect();
        let Some(mapping) = mapping else {
            return false;
        };
        self.triples.iter().all(|t| {
            let first = mapping[t.first as usize];
            let second = mapping[t.second as usize];
            other
                .triples
                .iter()
                .any(|o| o.relation == t.relation && o.first == first && o.second == second)
        })
    }

    /// Human-readable rendering, e.g. `"C:1 ≽ D:1"` for pairs or the triple
    /// list `"(Contains, C:1, D:1), (Follows, C:1, F:1), …"` for longer
    /// patterns.
    #[must_use]
    pub fn display(&self, registry: &EventRegistry) -> String {
        match self.events.len() {
            0 => String::from("<empty>"),
            1 => registry.display(self.events[0]),
            2 => {
                let t = &self.triples[0];
                format!(
                    "{} {} {}",
                    registry.display(self.events[t.first as usize]),
                    t.relation.symbol(),
                    registry.display(self.events[t.second as usize])
                )
            }
            _ => self
                .triples
                .iter()
                .map(|t| {
                    format!(
                        "({}, {}, {})",
                        t.relation,
                        registry.display(self.events[t.first as usize]),
                        registry.display(self.events[t.second as usize])
                    )
                })
                .collect::<Vec<_>>()
                .join(", "),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stpm_timeseries::{SeriesId, SymbolId};

    fn label(series: u32, symbol: u16) -> EventLabel {
        EventLabel::new(SeriesId(series), SymbolId(symbol))
    }

    fn registry() -> EventRegistry {
        let mut reg = EventRegistry::new();
        reg.register_series("C", &["0".into(), "1".into()]);
        reg.register_series("D", &["0".into(), "1".into()]);
        reg.register_series("F", &["0".into(), "1".into()]);
        reg
    }

    #[test]
    fn single_event_pattern() {
        let p = TemporalPattern::single(label(0, 1));
        assert_eq!(p.len(), 1);
        assert!(p.triples().is_empty());
        assert!(p.contains_event(label(0, 1)));
        assert!(!p.contains_event(label(1, 1)));
        assert_eq!(p.display(&registry()), "C:1");
    }

    #[test]
    fn pair_pattern_orientation() {
        let p = TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false);
        assert_eq!(p.display(&registry()), "C:1 ≽ D:1");
        let swapped =
            TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Follows, true);
        assert_eq!(swapped.display(&registry()), "D:1 → C:1");
        assert_ne!(p, swapped);
    }

    #[test]
    fn extension_builds_triangular_relation_list() {
        let p = TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false);
        let extended = p.extended(
            label(2, 1),
            vec![
                RelationTriple::new(RelationKind::Follows, 0, 2),
                RelationTriple::new(RelationKind::Follows, 1, 2),
            ],
        );
        assert_eq!(extended.len(), 3);
        assert_eq!(extended.triples().len(), 3);
        assert!(extended.relation_between(0, 1).is_some());
        assert!(extended.relation_between(0, 2).is_some());
        assert!(extended.relation_between(2, 1).is_some());
        assert!(extended.relation_between(1, 1).is_none());
        let text = extended.display(&registry());
        assert!(text.contains("Contains"));
        assert!(text.contains("F:1"));
    }

    #[test]
    fn canonical_triple_order_makes_patterns_comparable() {
        let a = TemporalPattern::from_parts(
            vec![label(0, 1), label(1, 1), label(2, 1)],
            vec![
                RelationTriple::new(RelationKind::Follows, 0, 2),
                RelationTriple::new(RelationKind::Contains, 0, 1),
                RelationTriple::new(RelationKind::Follows, 1, 2),
            ],
        );
        let b = TemporalPattern::from_parts(
            vec![label(0, 1), label(1, 1), label(2, 1)],
            vec![
                RelationTriple::new(RelationKind::Contains, 0, 1),
                RelationTriple::new(RelationKind::Follows, 1, 2),
                RelationTriple::new(RelationKind::Follows, 0, 2),
            ],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn sub_pattern_detection() {
        let pair = TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false);
        let triple = pair.extended(
            label(2, 1),
            vec![
                RelationTriple::new(RelationKind::Follows, 0, 2),
                RelationTriple::new(RelationKind::Follows, 1, 2),
            ],
        );
        assert!(pair.is_sub_pattern_of(&triple));
        assert!(!triple.is_sub_pattern_of(&pair));
        assert!(pair.is_sub_pattern_of(&pair));

        let other_pair =
            TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Follows, false);
        assert!(!other_pair.is_sub_pattern_of(&triple));

        let single = TemporalPattern::single(label(1, 1));
        assert!(single.is_sub_pattern_of(&triple));
        assert!(!TemporalPattern::single(label(2, 0)).is_sub_pattern_of(&triple));
    }

    #[test]
    fn pattern_keys_identify_patterns() {
        // Distinct labels and triples pack to distinct words.
        assert_ne!(encode_label(label(0, 1)), encode_label(label(1, 0)));
        assert_ne!(
            encode_triple(RelationTriple::new(RelationKind::Follows, 0, 1)),
            encode_triple(RelationTriple::new(RelationKind::Follows, 1, 0))
        );
        assert_ne!(
            encode_triple(RelationTriple::new(RelationKind::Follows, 0, 1)),
            encode_triple(RelationTriple::new(RelationKind::Contains, 0, 1))
        );
        // Structurally equal patterns share their key; different orientation
        // or relation changes it.
        let a = TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false);
        let b = TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false);
        let swapped =
            TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, true);
        assert_eq!(encode_pattern_key(&a), encode_pattern_key(&b));
        assert_ne!(encode_pattern_key(&a), encode_pattern_key(&swapped));
        assert_eq!(encode_pattern_key(&a).len(), 3);
    }

    #[test]
    fn extension_key_is_the_base_key_plus_new_words() {
        // The miner builds an extended pattern's interning key by appending
        // the packed new event and new triples to the base pattern's packed
        // events/triples. That shortcut is only sound if `from_parts`'s
        // canonical sort keeps base triples first and new triples in
        // generation order — which holds because every new triple involves
        // the largest event index. Verify against the constructed pattern.
        let base = TemporalPattern::pair([label(0, 1), label(1, 1)], RelationKind::Contains, false);
        let new_triples = vec![
            RelationTriple::new(RelationKind::Follows, 0, 2),
            RelationTriple::new(RelationKind::Overlaps, 2, 1),
        ];
        let extended = base.extended(label(2, 1), new_triples.clone());
        let mut incremental: Vec<u64> = base.events().iter().copied().map(encode_label).collect();
        incremental.push(encode_label(label(2, 1)));
        incremental.extend(base.triples().iter().copied().map(encode_triple));
        incremental.extend(new_triples.iter().copied().map(encode_triple));
        assert_eq!(incremental, encode_pattern_key(&extended));
    }

    #[test]
    fn try_decode_triple_round_trips_and_rejects_garbage() {
        for kind in [
            RelationKind::Follows,
            RelationKind::Contains,
            RelationKind::Overlaps,
        ] {
            let t = RelationTriple::new(kind, 1, 2);
            assert_eq!(try_decode_triple(encode_triple(t)), Some(t));
        }
        // Unknown relation discriminant.
        assert_eq!(try_decode_triple(3 << 16), None);
        assert_eq!(try_decode_triple(u64::MAX), None);
        // A self-relating index pair never comes out of encode_triple.
        assert_eq!(try_decode_triple(0x0101), None);
    }

    #[test]
    fn relation_triple_helpers() {
        let t = RelationTriple::new(RelationKind::Overlaps, 2, 1);
        assert!(t.involves(1));
        assert!(t.involves(2));
        assert!(!t.involves(0));
        assert_eq!(t.pair(), (1, 2));
    }

    #[test]
    fn empty_pattern_display() {
        let p = TemporalPattern::from_parts(vec![], vec![]);
        assert!(p.is_empty());
        assert_eq!(p.display(&registry()), "<empty>");
    }
}
